"""The order pipeline: bounded queue, scheduling rounds, defer policy.

One :class:`OrderPipeline` fronts one controller.  ``submit()`` returns
an :class:`OrderTicket` immediately; a kernel process drains the queue
in rounds of up to ``round_size`` orders.  Each round:

1. opens + admits every order (admission failures settle BLOCKED,
   exactly like the serial path);
2. plans all admitted orders' wavelengths in **one**
   :meth:`~repro.core.rwa.RwaEngine.plan_batch` call — routes, liveness,
   regen segmentation, and free-channel scans are shared across the
   round, and each plan is validated against wavelengths claimed by
   earlier orders in the same round;
3. claims and launches each order in round order, feeding the batch's
   plans into the controller's normal claim path.

Contention resolution is deterministic: orders are processed by
``(arrival time, tiebreak, submission sequence)``.  The tiebreak is 0
by default (pure arrival order — required for the round-size-1
equivalence with the serial path); with ``seeded_tiebreak=True`` it is
a per-order uniform draw from a dedicated spawned stream family, giving
same-instant arrivals from many submitters a fair, seed-reproducible
shuffle.

An order that fails *only* because an earlier order in its round won
the wavelengths it wanted is **deferred**: its admission is returned,
its connection record withdrawn, and it re-enters the queue with its
original priority (so it is first in line next round — no starvation).
After ``max_defers`` consecutive contention losses the ticket settles
as terminal DEFERRED.  Failures the serial path would also have
produced settle BLOCKED with the identical reason string.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.connection import ConnectionKind
from repro.core.rwa import PlanRequest
from repro.errors import ConfigurationError, GriphonError
from repro.sim.process import Process

#: Controller lifecycle events re-broadcast to intake listeners, mapped
#: onto the backend-agnostic :class:`repro.api.OrderIntake` event names.
_CONTROLLER_EVENTS = {
    "up": "active",
    "setup-degraded": "degraded",
    "setup-failed": "failed",
    "released": "released",
}


class TicketState(Enum):
    """Lifecycle of a submitted order, as the customer sees it."""

    #: Waiting in the intake queue (or between defer rounds).
    QUEUED = "queued"
    #: Resources claimed; the connection is setting up (or up).
    ACCEPTED = "accepted"
    #: Refused for a reason the serial path would also refuse.
    BLOCKED = "blocked"
    #: Lost wavelength contention ``max_defers`` rounds in a row.
    DEFERRED = "deferred"
    #: Refused at submission because the intake queue was full.
    QUEUE_FULL = "queue-full"


#: Ticket states that will never change again.
_TERMINAL = (
    TicketState.ACCEPTED,
    TicketState.BLOCKED,
    TicketState.DEFERRED,
    TicketState.QUEUE_FULL,
)


class OrderTicket:
    """The customer-visible handle for one submitted order.

    A ``__slots__`` class: load benchmarks allocate one per submitted
    order, and the per-instance ``__dict__`` was the largest single
    allocation on that path.

    Attributes:
        order_id: Pipeline-scoped id (``order-N``).
        customer: Submitting customer.
        premises_a: One end of the requested connection.
        premises_b: The other end.
        rate_bps: Committed rate.
        state: Current :class:`TicketState`.
        connection_id: The connection record, once the order was
            processed (ACCEPTED or BLOCKED); ``None`` while queued and
            for QUEUE_FULL / terminal DEFERRED outcomes.
        reason: Why the order was refused (BLOCKED / DEFERRED /
            QUEUE_FULL); empty for accepted orders.
        submitted_at: Sim time of submission.
        settled_at: Sim time the state became terminal; ``None`` while
            queued.
        rounds_deferred: How many rounds the order lost contention and
            was retried.
    """

    __slots__ = (
        "order_id",
        "customer",
        "premises_a",
        "premises_b",
        "rate_bps",
        "state",
        "connection_id",
        "reason",
        "submitted_at",
        "settled_at",
        "rounds_deferred",
    )

    def __init__(
        self,
        order_id: str,
        customer: str,
        premises_a: str,
        premises_b: str,
        rate_bps: float,
        state: TicketState = TicketState.QUEUED,
        connection_id: Optional[str] = None,
        reason: str = "",
        submitted_at: float = 0.0,
        settled_at: Optional[float] = None,
        rounds_deferred: int = 0,
    ) -> None:
        self.order_id = order_id
        self.customer = customer
        self.premises_a = premises_a
        self.premises_b = premises_b
        self.rate_bps = rate_bps
        self.state = state
        self.connection_id = connection_id
        self.reason = reason
        self.submitted_at = submitted_at
        self.settled_at = settled_at
        self.rounds_deferred = rounds_deferred

    @property
    def settled(self) -> bool:
        """True once the ticket reached a terminal state."""
        return self.state in _TERMINAL

    def __repr__(self) -> str:
        return (
            f"OrderTicket({self.order_id}, {self.premises_a}<->"
            f"{self.premises_b}, {self.state.value})"
        )


@dataclass(order=True)
class _QueuedOrder:
    """Heap entry: priority plus the untouched submission payload."""

    priority: Tuple[float, float, int]
    ticket: OrderTicket = field(compare=False)
    kind: Optional[ConnectionKind] = field(compare=False, default=None)
    defers: int = field(compare=False, default=0)


class OrderPipeline:
    """Batched, deterministic order intake in front of a controller.

    Args:
        controller: The controller orders are executed against.
        capacity: Bounded queue size; submissions beyond it settle
            QUEUE_FULL immediately (backpressure).
        round_size: Maximum orders admitted+planned+claimed per round.
        round_interval: Sim seconds between successive rounds while the
            queue is non-empty (0 = drain within one timestamp).
        max_defers: Contention losses an order may retry before its
            ticket settles as terminal DEFERRED.
        seeded_tiebreak: Draw a uniform tiebreak per order from the
            controller streams' spawned ``"pipeline"`` family, applied
            between arrival time and submission order.  Off by default:
            pure arrival order is what makes ``round_size=1`` match the
            serial path byte for byte.
    """

    def __init__(
        self,
        controller,
        capacity: int = 256,
        round_size: int = 8,
        round_interval: float = 0.0,
        max_defers: int = 3,
        seeded_tiebreak: bool = False,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if round_size < 1:
            raise ConfigurationError(
                f"round_size must be >= 1, got {round_size}"
            )
        if round_interval < 0:
            raise ConfigurationError(
                f"round_interval must be >= 0, got {round_interval}"
            )
        if max_defers < 0:
            raise ConfigurationError(
                f"max_defers must be >= 0, got {max_defers}"
            )
        self._controller = controller
        self._sim = controller.sim
        self._tracer = controller.tracer
        self._metrics = controller.metrics
        self._capacity = capacity
        self._round_size = round_size
        self._round_interval = float(round_interval)
        self._max_defers = max_defers
        self._tiebreak_streams = (
            controller.streams.spawn("pipeline") if seeded_tiebreak else None
        )
        self._heap: List[_QueuedOrder] = []
        self._order_seq = itertools.count(1)
        self._arrival_seq = itertools.count(1)
        self._tickets: Dict[str, OrderTicket] = {}
        self._proc: Optional[Process] = None
        self._rounds = 0
        self._listeners: List[Callable[[OrderTicket, str], None]] = []
        self._by_connection: Dict[str, OrderTicket] = {}
        controller.observers.append(self._on_controller_event)
        self._metrics.register_gauge(
            "pipeline.queue_depth", lambda: len(self._heap)
        )

    # -- intake ----------------------------------------------------------------

    def submit(
        self,
        customer: str,
        premises_a: str,
        premises_b: str,
        rate_bps: float,
        kind: Optional[ConnectionKind] = None,
    ) -> OrderTicket:
        """Queue an order; returns its ticket immediately.

        A full queue settles the ticket as QUEUE_FULL on the spot —
        nothing is recorded against the controller, and the customer is
        expected to resubmit later (backpressure, not buffering).
        """
        ticket = OrderTicket(
            order_id=f"order-{next(self._order_seq)}",
            customer=customer,
            premises_a=premises_a,
            premises_b=premises_b,
            rate_bps=rate_bps,
            submitted_at=self._sim.now,
        )
        self._tickets[ticket.order_id] = ticket
        if len(self._heap) >= self._capacity:
            ticket.state = TicketState.QUEUE_FULL
            ticket.reason = (
                f"order intake queue is full ({self._capacity} waiting)"
            )
            ticket.settled_at = self._sim.now
            self._metrics.inc("pipeline.queue_full")
            self._tracer.event("pipeline.queue_full", order=ticket.order_id)
            self._emit(ticket, "settled")
            return ticket
        tiebreak = 0.0
        if self._tiebreak_streams is not None:
            tiebreak = self._tiebreak_streams.uniform("tiebreak", 0.0, 1.0)
        entry = _QueuedOrder(
            priority=(self._sim.now, tiebreak, next(self._arrival_seq)),
            ticket=ticket,
            kind=kind,
        )
        heapq.heappush(self._heap, entry)
        self._metrics.inc("pipeline.submitted")
        self._ensure_draining()
        return ticket

    # -- introspection ---------------------------------------------------------

    def ticket(self, order_id: str) -> OrderTicket:
        """Look up a ticket.

        Raises:
            ConfigurationError: for an unknown order id.
        """
        try:
            return self._tickets[order_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown order {order_id!r}"
            ) from None

    def tickets(self) -> List[OrderTicket]:
        """Every ticket ever issued, in submission order."""
        return list(self._tickets.values())

    def queue_depth(self) -> int:
        """Orders currently waiting for a round."""
        return len(self._heap)

    def outcome(self, ticket: OrderTicket):
        """The ticket's typed status from :data:`repro.api.OrderStatus`.

        ``None`` while the order is still queued; otherwise exactly the
        classification :meth:`repro.core.service.BodService.order_outcome`
        returns, minus the customer-scoping check — this is the
        backend-level half of the :class:`repro.api.OrderIntake`
        contract.
        """
        from repro import api

        if ticket.state is TicketState.QUEUED:
            return None
        if ticket.state is TicketState.QUEUE_FULL:
            return api.QueueFull(
                order_id=ticket.order_id,
                capacity=self._capacity,
                reason=ticket.reason,
            )
        if ticket.state is TicketState.DEFERRED:
            return api.Deferred(
                order_id=ticket.order_id,
                rounds_deferred=ticket.rounds_deferred,
                reason=ticket.reason,
            )
        connection = self._controller.connection(ticket.connection_id)
        return api.classify_record(connection)

    # -- lifecycle listeners ---------------------------------------------------

    def add_listener(
        self, listener: Callable[[OrderTicket, str], None]
    ) -> None:
        """Subscribe to ticket lifecycle events.

        See :meth:`repro.api.OrderIntake.add_listener` for the event
        vocabulary: ``"settled"`` at every terminal intake state, then
        ``"active"`` / ``"degraded"`` / ``"failed"`` when an accepted
        order's setup concludes, and ``"released"`` after teardown.
        """
        self._listeners.append(listener)

    def teardown(self, ticket: OrderTicket) -> None:
        """Tear down an accepted ticket's connection.

        Raises:
            ConfigurationError: for a ticket that never claimed a
                connection (queued, refused, or deferred).
        """
        if ticket.state is not TicketState.ACCEPTED or (
            ticket.connection_id is None
        ):
            raise ConfigurationError(
                f"order {ticket.order_id!r} holds no connection to tear "
                f"down (state {ticket.state.value})"
            )
        self._controller.teardown_connection(ticket.connection_id)

    def _emit(self, ticket: OrderTicket, event: str) -> None:
        """Broadcast one ticket lifecycle edge to every listener."""
        for listener in list(self._listeners):
            listener(ticket, event)

    def _on_controller_event(self, event: str, payload: dict) -> None:
        """Controller observer: re-broadcast setup/teardown conclusions."""
        if not self._listeners:
            return
        name = _CONTROLLER_EVENTS.get(event)
        if name is None:
            return
        connection = payload.get("connection")
        if connection is None:
            return
        ticket = self._by_connection.get(connection.connection_id)
        if ticket is None:
            return
        self._emit(ticket, name)

    @property
    def rounds(self) -> int:
        """Scheduling rounds run so far."""
        return self._rounds

    @property
    def capacity(self) -> int:
        """The bounded queue size."""
        return self._capacity

    # -- the round loop --------------------------------------------------------

    def _ensure_draining(self) -> None:
        """(Re)start the round-loop process when the queue has work."""
        if self._proc is None or self._proc.done:
            self._proc = Process(
                self._sim, self._drain(), label="pipeline:rounds"
            )

    def _drain(self):
        """Kernel process: one scheduling round per ``round_interval``."""
        while self._heap:
            self._run_round()
            if self._heap:
                yield self._round_interval

    def _run_round(self) -> None:
        """Admit, batch-plan, and claim up to ``round_size`` orders."""
        ctrl = self._controller
        self._rounds += 1
        take = min(self._round_size, len(self._heap))
        batch = [heapq.heappop(self._heap) for _ in range(take)]
        round_span = self._tracer.span(
            "pipeline.round", round=self._rounds, orders=len(batch)
        )
        self._metrics.inc("pipeline.rounds")

        # Phase 1: open + admit in arrival order; collect plan requests.
        admitted = []  # (entry, connection, span, slice of requests)
        requests: List[PlanRequest] = []
        for entry in batch:
            ticket = entry.ticket
            connection, span = ctrl.open_order(
                ticket.customer,
                ticket.premises_a,
                ticket.premises_b,
                ticket.rate_bps,
                entry.kind,
            )
            if not ctrl.admit_order(connection, span):
                self._settle(ticket, TicketState.BLOCKED, connection)
                continue
            try:
                # Same call order as the serial claim path, so a bad
                # premises name or unrealizable rate blocks with the
                # identical reason string.
                pop_a = ctrl.inventory.pop_of(ticket.premises_a)
                pop_b = ctrl.inventory.pop_of(ticket.premises_b)
                decomposition = ctrl.decompose_order(connection, entry.kind)
            except GriphonError as exc:
                ctrl.block_admitted_order(connection, span, exc)
                self._settle(ticket, TicketState.BLOCKED, connection)
                continue
            waves = [] if decomposition is None else decomposition[0]
            start = len(requests)
            for rate in waves:
                requests.append(PlanRequest(pop_a, pop_b, rate))
            admitted.append(
                (entry, connection, span, slice(start, len(requests)))
            )

        # Phase 2: one batched RWA pass for the whole round.
        items = (
            ctrl.rwa.plan_batch(requests, parent_span=round_span)
            if requests
            else []
        )

        # Phase 3: claim + launch in round order.
        claimed_any = False
        for entry, connection, span, request_slice in admitted:
            order_items = items[request_slice]
            failed = next(
                (item for item in order_items if item.error is not None), None
            )
            if failed is not None:
                if failed.contended and entry.defers < self._max_defers:
                    self._defer(entry, connection, span, str(failed.error))
                elif failed.contended:
                    self._settle_deferred(entry, connection, span, failed.error)
                else:
                    ctrl.block_admitted_order(connection, span, failed.error)
                    self._settle(
                        entry.ticket, TicketState.BLOCKED, connection
                    )
                continue
            plans = iter([item.plan for item in order_items])

            def planner(
                source,
                destination,
                rate_bps,
                parent_span=None,
                _plans=plans,
            ):
                # Serves this order's batch plans to the claim path in
                # wave order, standing in for RwaEngine.plan.
                return next(_plans)

            try:
                ctrl.launch_order(connection, entry.kind, span, planner=planner)
            except GriphonError as exc:
                # Wavelengths were validated by the batch, but claims can
                # still lose transponders/regens/ports to an earlier order
                # in this round — worth one replan next round.  Without an
                # earlier claimant the serial path would have failed the
                # same way: settle BLOCKED with the identical reason.
                if claimed_any and entry.defers < self._max_defers:
                    self._defer(entry, connection, span, str(exc))
                else:
                    ctrl.block_admitted_order(connection, span, exc)
                    self._settle(
                        entry.ticket, TicketState.BLOCKED, connection
                    )
                continue
            claimed_any = True
            self._settle(entry.ticket, TicketState.ACCEPTED, connection)

        round_span.set_tag("queued_after", len(self._heap)).finish()

    # -- settlement ------------------------------------------------------------

    def _settle(self, ticket: OrderTicket, state: TicketState, connection) -> None:
        """Finalize a ticket against its connection record."""
        ticket.state = state
        ticket.settled_at = self._sim.now
        ticket.connection_id = connection.connection_id
        if state is TicketState.BLOCKED:
            ticket.reason = connection.blocked_reason
            self._metrics.inc("pipeline.blocked")
        else:
            self._metrics.inc("pipeline.accepted")
            # Accepted orders keep streaming setup/teardown conclusions
            # to listeners; index the ticket by its connection record.
            self._by_connection[connection.connection_id] = ticket
        self._emit(ticket, "settled")

    def _defer(self, entry: _QueuedOrder, connection, span, reason: str) -> None:
        """Return a contention loser to the queue with its old priority."""
        self._controller.abandon_order(connection, span, reason)
        entry.defers += 1
        entry.ticket.rounds_deferred += 1
        self._metrics.inc("pipeline.deferred")
        heapq.heappush(self._heap, entry)

    def _settle_deferred(
        self, entry: _QueuedOrder, connection, span, error: Exception
    ) -> None:
        """Terminal DEFERRED: contention persisted past ``max_defers``."""
        self._controller.abandon_order(connection, span, str(error))
        ticket = entry.ticket
        ticket.state = TicketState.DEFERRED
        ticket.settled_at = self._sim.now
        ticket.reason = (
            f"lost wavelength contention {entry.defers + 1} round(s) in a row: "
            f"{error}"
        )
        self._metrics.inc("pipeline.deferred_terminal")
        self._emit(ticket, "settled")
