"""Concurrent order intake: scheduling rounds over the controller.

The ROADMAP north star is "heavy traffic from millions of users" — many
CSPs ordering simultaneously and contending for the same wavelengths
and transponders.  :class:`~repro.pipeline.engine.OrderPipeline` puts a
bounded intake queue in front of the controller, drains it in
scheduling rounds driven by a sim-kernel process, plans each round's
wavelengths as one :meth:`~repro.core.rwa.RwaEngine.plan_batch` call
(shared route/reach work, round-level contention validation), and
resolves contention deterministically: arrival order within a round,
with an optional seeded tiebreak for same-instant arrivals.

Orders that lose a round's wavelength contention are deferred and
retried in later rounds (bounded by ``max_defers``); orders that cannot
fit at all are BLOCKED exactly as the serial path would block them, and
a full queue refuses new work immediately (backpressure) rather than
growing without bound.  With ``round_size=1`` the pipeline is
byte-identical to calling
:meth:`~repro.core.controller.GriphonController.request_connection`
serially — the differential tests pin that equivalence.
"""

from repro.pipeline.engine import OrderPipeline, OrderTicket, TicketState

__all__ = ["OrderPipeline", "OrderTicket", "TicketState"]
