"""Command-line interface: run the headline scenarios from a shell.

Usage::

    python -m repro quickstart
    python -m repro table2 --iterations 10
    python -m repro restore
    python -m repro operator

Each subcommand builds a fresh simulated network, runs one scenario, and
prints a short report.
"""

from __future__ import annotations

import argparse
import statistics
from typing import List, Optional

from repro.core.gui import render_connections, render_network_view
from repro.facade import build_griphon_testbed
from repro.sim.process import Process
from repro.units import format_duration, gbps

#: Exclusions forcing each Table 2 path on the testbed.
_TABLE2_EXCLUSIONS = {
    1: [],
    2: [("ROADM-I", "ROADM-IV")],
    3: [("ROADM-I", "ROADM-IV"), ("ROADM-I", "ROADM-III")],
}

#: The paper's Table 2 means, for side-by-side display.
_PAPER_TABLE2 = {1: 62.48, 2: 65.67, 3: 70.94}


def cmd_quickstart(args: argparse.Namespace) -> int:
    """Order a 10G connection, watch it come up, tear it down."""
    net = build_griphon_testbed(seed=args.seed)
    service = net.service_for("cli-demo")
    conn = service.request_connection("PREMISES-A", "PREMISES-C", 10)
    net.run()
    print(render_connections(service))
    print(f"\nsetup took {format_duration(conn.setup_duration)}")
    service.teardown_connection(conn.connection_id)
    before = net.sim.now
    net.run()
    print(f"teardown took {format_duration(net.sim.now - before)}")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    """Regenerate Table 2: establishment time vs ROADM path length."""
    print("hops  paper mean (s)  measured mean (s)")
    for hops, exclusions in _TABLE2_EXCLUSIONS.items():
        samples = []
        for i in range(args.iterations):
            net = build_griphon_testbed(seed=args.seed + i)
            plan = net.controller.rwa.plan(
                "ROADM-I", "ROADM-IV", gbps(10), excluded_links=exclusions
            )
            lightpath = net.controller.provisioner.claim(plan)
            start = net.sim.now
            Process(
                net.sim, net.controller.provisioner.setup_workflow(lightpath)
            )
            net.run()
            samples.append(net.sim.now - start)
        measured = statistics.fmean(samples)
        print(f"{hops:>4}  {_PAPER_TABLE2[hops]:>14.2f}  {measured:>17.2f}")
    return 0


def cmd_restore(args: argparse.Namespace) -> int:
    """Cut a fiber under a live connection and watch restoration."""
    net = build_griphon_testbed(seed=args.seed)
    service = net.service_for("cli-demo")
    conn = service.request_connection("PREMISES-A", "PREMISES-C", 10)
    net.run()
    path = net.inventory.lightpaths[conn.lightpath_ids[0]].path
    print(f"connection up on {' - '.join(path)}")
    print(f"cutting {path[0]} = {path[1]} ...")
    net.controller.cut_link(path[0], path[1])
    net.run()
    new_path = net.inventory.lightpaths[conn.lightpath_ids[0]].path
    print(f"restored on {' - '.join(new_path)}")
    print(f"outage: {format_duration(conn.total_outage_s)}")
    print("(manual restoration today: 4-12 hours)")
    return 0


def cmd_operator(args: argparse.Namespace) -> int:
    """Bring up a few connections and print the operator view."""
    net = build_griphon_testbed(seed=args.seed, nte_interfaces=12)
    service = net.service_for("cli-demo", max_connections=32)
    for a, b, rate in (
        ("PREMISES-A", "PREMISES-B", 10),
        ("PREMISES-A", "PREMISES-C", 40),
        ("PREMISES-B", "PREMISES-C", 1),
    ):
        service.request_connection(a, b, rate)
    net.run()
    print(render_connections(service))
    print()
    print(render_network_view(net.controller))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GRIPhoN bandwidth-on-demand reproduction scenarios",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="simulation seed (default 0)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "quickstart", help="order, bring up, and tear down a 10G connection"
    ).set_defaults(func=cmd_quickstart)
    table2 = sub.add_parser(
        "table2", help="regenerate Table 2 (setup time vs hops)"
    )
    table2.add_argument(
        "--iterations", type=int, default=10,
        help="measurements per path length (default 10)",
    )
    table2.set_defaults(func=cmd_table2)
    sub.add_parser(
        "restore", help="fiber cut + automated restoration demo"
    ).set_defaults(func=cmd_restore)
    sub.add_parser(
        "operator", help="print the carrier operator network view"
    ).set_defaults(func=cmd_operator)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
