"""Command-line interface: run the headline scenarios from a shell.

Usage::

    python -m repro quickstart
    python -m repro table2 --iterations 10
    python -m repro trace --json trace.json
    python -m repro restore
    python -m repro operator
    python -m repro sweep x9 --jobs 8 --json sweep.json
    python -m repro serve --tenants 100000 --rate 50

(Installed as the ``griphon`` console script.)  Each subcommand builds a
fresh simulated network, runs one scenario, and prints a short report —
except ``sweep``, which fans a whole experiment grid over worker
processes.
"""

from __future__ import annotations

import argparse
import json
import statistics
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.gui import render_connections, render_network_view
from repro.facade import build_griphon_testbed
from repro.obs.trace import Span, Tracer
from repro.sim.process import Process
from repro.units import format_duration, gbps

#: Exclusions forcing each Table 2 path on the testbed.
_TABLE2_EXCLUSIONS = {
    1: [],
    2: [("ROADM-I", "ROADM-IV")],
    3: [("ROADM-I", "ROADM-IV"), ("ROADM-I", "ROADM-III")],
}

#: The paper's Table 2 means, for side-by-side display.
_PAPER_TABLE2 = {1: 62.48, 2: 65.67, 3: 70.94}


def cmd_quickstart(args: argparse.Namespace) -> int:
    """Order a 10G connection, watch it come up, tear it down."""
    net = build_griphon_testbed(seed=args.seed)
    service = net.service_for("cli-demo")
    conn = service.request_connection("PREMISES-A", "PREMISES-C", 10)
    net.run()
    print(render_connections(service))
    print(f"\nsetup took {format_duration(conn.setup_duration)}")
    service.teardown_connection(conn.connection_id)
    before = net.sim.now
    net.run()
    print(f"teardown took {format_duration(net.sim.now - before)}")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    """Regenerate Table 2: establishment time vs ROADM path length."""
    print("hops  paper mean (s)  measured mean (s)")
    for hops, exclusions in _TABLE2_EXCLUSIONS.items():
        samples = []
        for i in range(args.iterations):
            net = build_griphon_testbed(seed=args.seed + i)
            plan = net.controller.rwa.plan(
                "ROADM-I", "ROADM-IV", gbps(10), excluded_links=exclusions
            )
            lightpath = net.controller.provisioner.claim(plan)
            start = net.sim.now
            Process(
                net.sim, net.controller.provisioner.setup_workflow(lightpath)
            )
            net.run()
            samples.append(net.sim.now - start)
        measured = statistics.fmean(samples)
        print(f"{hops:>4}  {_PAPER_TABLE2[hops]:>14.2f}  {measured:>17.2f}")
    return 0


#: Setup phases in workflow order, for the trace breakdown columns.
_TRACE_PHASES = ("order", "fxc", "tune", "roadm", "equalize", "verify")


def _print_span_tree(tracer: Tracer, span: Span, depth: int = 0) -> None:
    label = span.tags.get("label")
    suffix = f"  [{label}]" if label else ""
    print(f"{'  ' * depth}{span.name:<{28 - 2 * depth}} "
          f"{span.duration:>8.2f}s{suffix}")
    for child in tracer.children_of(span):
        _print_span_tree(tracer, child, depth + 1)


def _setup_phase_durations(tracer: Tracer, setup: Span) -> Dict[str, float]:
    """Per-phase seconds of one ``lightpath.setup`` span."""
    phases: Dict[str, float] = {}
    for child in tracer.children_of(setup):
        phase = child.name.split(".", 1)[1]
        phases[phase] = phases.get(phase, 0.0) + child.duration
    return phases


def cmd_trace(args: argparse.Namespace) -> int:
    """Trace the 12 Gbps example, then break Table 2 down by phase."""
    # Part 1: the paper's 12 Gbps order (one 10G wavelength + two 1G
    # ODU0 circuits) as a span tree.
    net = build_griphon_testbed(seed=args.seed, tracing=True)
    service = net.service_for("cli-demo")
    conn = service.request_connection("PREMISES-A", "PREMISES-B", 12)
    net.run()
    tracer = net.tracer
    root = next(s for s in tracer.roots() if s.name == "connection.request")
    print(f"trace {root.trace_id}: 12 Gbps PREMISES-A <-> PREMISES-B "
          f"({conn.kind.value}) in {format_duration(root.duration)}")
    _print_span_tree(tracer, root)
    if args.json:
        tracer.dump(args.json)
        print(f"\nwrote {len(tracer)} spans to {args.json}")

    # Part 2: Table 2 with the setup time broken down by phase.
    print("\nTable 2 phase breakdown, ROADM-I -> ROADM-IV (mean s over "
          f"{args.iterations} runs):")
    header = "hops  " + "".join(f"{p:>10}" for p in _TRACE_PHASES)
    print(header + f"{'total':>10}{'paper':>10}")
    for hops, exclusions in _TABLE2_EXCLUSIONS.items():
        phase_sums = {phase: 0.0 for phase in _TRACE_PHASES}
        totals = []
        for i in range(args.iterations):
            run_net = build_griphon_testbed(seed=args.seed + i, tracing=True)
            plan = run_net.controller.rwa.plan(
                "ROADM-I", "ROADM-IV", gbps(10), excluded_links=exclusions
            )
            lightpath = run_net.controller.provisioner.claim(plan)
            Process(
                run_net.sim,
                run_net.controller.provisioner.setup_workflow(lightpath),
            )
            run_net.run()
            setup = run_net.tracer.spans("lightpath.setup")[0]
            for phase, secs in _setup_phase_durations(
                run_net.tracer, setup
            ).items():
                phase_sums[phase] = phase_sums.get(phase, 0.0) + secs
            totals.append(setup.duration)
        means = {p: phase_sums[p] / args.iterations for p in phase_sums}
        row = f"{hops:>4}  " + "".join(
            f"{means.get(p, 0.0):>10.2f}" for p in _TRACE_PHASES
        )
        print(row + f"{statistics.fmean(totals):>10.2f}"
              f"{_PAPER_TABLE2[hops]:>10.2f}")
    return 0


def cmd_restore(args: argparse.Namespace) -> int:
    """Cut a fiber under a live connection and watch restoration."""
    net = build_griphon_testbed(seed=args.seed)
    service = net.service_for("cli-demo")
    conn = service.request_connection("PREMISES-A", "PREMISES-C", 10)
    net.run()
    path = net.inventory.lightpaths[conn.lightpath_ids[0]].path
    print(f"connection up on {' - '.join(path)}")
    print(f"cutting {path[0]} = {path[1]} ...")
    net.controller.cut_link(path[0], path[1])
    net.run()
    new_path = net.inventory.lightpaths[conn.lightpath_ids[0]].path
    print(f"restored on {' - '.join(new_path)}")
    print(f"outage: {format_duration(conn.total_outage_s)}")
    print("(manual restoration today: 4-12 hours)")
    return 0


def cmd_operator(args: argparse.Namespace) -> int:
    """Bring up a few connections and print the operator view."""
    net = build_griphon_testbed(seed=args.seed, nte_interfaces=12)
    service = net.service_for("cli-demo", max_connections=32)
    for a, b, rate in (
        ("PREMISES-A", "PREMISES-B", 10),
        ("PREMISES-A", "PREMISES-C", 40),
        ("PREMISES-B", "PREMISES-C", 1),
    ):
        service.request_connection(a, b, rate)
    net.run()
    print(render_connections(service))
    print()
    print(render_network_view(net.controller))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run an experiment sweep, serially or across worker processes."""
    from repro.shard.bench import shard_plan_spec
    from repro.sweep import (
        SweepSpec,
        frontend_load_spec,
        optimize_reclaim_spec,
        pipeline_load_spec,
        run_sweep,
        slo_chaos_spec,
        x10_scaling_spec,
        x9_availability_spec,
    )

    if args.study == "x9":
        spec = x9_availability_spec(repeats=args.repeats)
    elif args.study == "x10":
        spec = x10_scaling_spec(repeats=args.repeats)
    elif args.study == "pipeline":
        spec = pipeline_load_spec(repeats=args.repeats)
    elif args.study == "frontend":
        spec = frontend_load_spec(repeats=args.repeats)
    elif args.study == "shard":
        spec = shard_plan_spec(topology_seed=args.seed)
    elif args.study == "slo":
        spec = slo_chaos_spec(repeats=args.repeats)
    elif args.study == "optimize":
        spec = optimize_reclaim_spec(repeats=args.repeats)
    else:
        spec_data = json.loads(Path(args.study).read_text())
        spec = SweepSpec.from_dict(spec_data)
    pool = None
    if getattr(args, "pool", False):
        if args.study != "shard":
            print("--pool serves shard-plan trials; use it with the "
                  "'shard' study")
            return 2
        from repro.shard.workers import ShardWorkerPool

        pool = ShardWorkerPool(recover=True)
    try:
        result = run_sweep(
            spec, jobs=args.jobs, timeout_s=args.timeout, executor=pool
        )
    finally:
        if pool is not None:
            pool.close()
    width = f"pool={pool.size}" if pool is not None else f"jobs={args.jobs}"
    print(
        f"sweep {spec.name}: {len(result.results)} trial(s), "
        f"{width}, {result.elapsed_s:.2f}s wall-clock, "
        f"{len(result.failed)} failed"
    )
    for label, means in result.grouped_values().items():
        parts = ", ".join(f"{k}={v:.6g}" for k, v in sorted(means.items()))
        print(f"  {label}: {parts}")
    if result.failed:
        first = result.failed[0]
        print(f"  first error: {first.trial_id}: {first.error}")
    for failure in result.failed:
        print(f"  FAILED {failure.trial_id}: {failure.error}")
    if args.json:
        Path(args.json).write_text(result.to_json())
        print(f"wrote aggregate to {args.json}")
    return 1 if result.failed else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a fault-injection scenario and audit for resource leaks."""
    from repro.faults import FaultPlan, FaultSpec, audit_network

    if args.plan:
        plan = FaultPlan.from_dict(json.loads(Path(args.plan).read_text()))
    else:
        plan = FaultPlan()
        for mode in args.modes.split(","):
            plan.add(FaultSpec(mode=mode.strip(), probability=args.rate))
    net = build_griphon_testbed(seed=args.seed, fault_plan=plan)
    service = net.service_for("chaos-demo")
    pairs = [
        ("PREMISES-A", "PREMISES-B"),
        ("PREMISES-A", "PREMISES-C"),
        ("PREMISES-B", "PREMISES-C"),
    ]
    rates = (10, 12, 1)
    connections = []
    for index in range(args.orders):
        a, b = pairs[index % len(pairs)]
        connections.append(
            service.request_connection(a, b, rates[index % len(rates)])
        )
    net.run()
    print(f"chaos: {args.orders} order(s), plan={plan!r}")
    for conn in connections:
        line = f"  {conn.connection_id}: {conn.state.value}"
        outcome = service.setup_outcome(conn.connection_id)
        if outcome is not None:
            line += f"  [{outcome}]"
        print(line)
    net.controller.export_route_cache_counters()
    counters = net.metrics.counters()
    for name in sorted(counters):
        if name.startswith(
            ("ems.retry", "ems.breaker", "faults.", "rwa.route_cache.")
        ):
            print(f"  {name} = {counters[name]}")
    mid_report = audit_network(net.controller)
    print(f"  mid-run {mid_report.summary()}")
    # Tear everything down; a clean network must audit with zero residue.
    teardown_states = {"up", "degraded", "failed", "restoring"}
    for conn in connections:
        if conn.state.value in teardown_states:
            service.teardown_connection(conn.connection_id)
    net.run()
    final_report = audit_network(net.controller)
    print(f"  final {final_report.summary()}")
    for violation in mid_report.violations + final_report.violations:
        print(f"    {violation}")
    if args.json:
        payload = {
            "orders": args.orders,
            "states": {
                c.connection_id: c.state.value for c in connections
            },
            "injected": plan.injected_counts,
            "mid_audit_ok": mid_report.ok,
            "final_audit_ok": final_report.ok,
            "violations": [
                str(v)
                for v in mid_report.violations + final_report.violations
            ],
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote chaos report to {args.json}")
    return 0 if mid_report.ok and final_report.ok else 2


def cmd_slo(args: argparse.Namespace) -> int:
    """Replay a gray-failure plan with the SLA remediation engine armed."""
    from repro.faults import DegradationPlan
    from repro.slo import SloPolicy, default_policies
    from repro.slo.bench import run_slo_trial

    plan = None
    if args.plan:
        plan = DegradationPlan.from_dict(
            json.loads(Path(args.plan).read_text())
        )
    if args.policy:
        policies = tuple(
            SloPolicy.from_dict(entry)
            for entry in json.loads(Path(args.policy).read_text())
        )
    elif args.policy_off:
        policies = ()
    else:
        policies = default_policies()
    if args.policy_off and args.policy:
        print("--policy-off and --policy are mutually exclusive")
        return 1
    # The trial runner owns the workload; reuse it so the CLI, the
    # benchmark, and the chaos CI job all exercise the same loop.
    result = run_slo_trial(
        seed=args.seed,
        policy_on=bool(policies),
        plan=plan,
        horizon_s=args.horizon,
        audit_each_action=True,
    )
    mode = "armed" if policies else "policy-off"
    print(
        f"slo ({mode}): {result['connections']} connection(s), "
        f"{result['violation_minutes']:.1f} SLA-violation minutes"
    )
    for key in (
        "breaches", "recoveries", "rerouted", "reverted",
        "escalated", "deferred", "restored",
    ):
        print(f"  slo.{key} = {result[key]:g}")
    print(f"  max reroute utilization = {result['max_reroute_utilization']:.1%}")
    print(f"  audit: {'CLEAN' if result['audit_ok'] else 'VIOLATIONS'}")
    if args.json:
        Path(args.json).write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote slo report to {args.json}")
    return 0 if result["audit_ok"] else 2


def cmd_optimize(args: argparse.Namespace) -> int:
    """Fragment a backbone, then globally re-optimize it live."""
    from repro.optimize.bench import run_optimize_trial

    result = run_optimize_trial(
        seed=args.seed,
        node_count=args.nodes,
        warm_orders=args.warm_orders,
        load_orders=args.load_orders,
        reoptimize=not args.no_reoptimize,
        k_paths=args.k_paths,
        max_passes=args.max_passes,
    )
    mode = "greedy baseline" if args.no_reoptimize else "re-optimized"
    print(
        f"optimize ({mode}): {result['survivors']} survivor(s) after "
        f"{result['torn_down']} teardown(s) on {args.nodes} PoPs"
    )
    print(
        f"  wavelengths in use: {result['wavelengths_fragmented']} "
        f"fragmented -> {result['wavelengths_optimized']} "
        f"({result['wavelengths_reclaimed']} reclaimed)"
    )
    if not args.no_reoptimize:
        print(
            f"  plan: {result['planned_moves']} move(s), "
            f"{result['rewavelength_moves']} rewavelength-only, "
            f"{result['planner_passes']} pass(es)"
        )
        print(
            f"  executed: {result['moves_completed']} completed, "
            f"{result['moves_stale']} stale, {result['moves_failed']} failed"
        )
        print(
            f"  audit: "
            f"{'CLEAN' if result['audit_violations'] == 0 else 'VIOLATIONS'}, "
            f"dropped survivors: {result['dropped_survivors']}"
        )
    print(
        f"  load ramp: {result['served']}/{result['load_orders']} served, "
        f"blocking probability {result['blocking_probability']:.3f}"
    )
    if args.json:
        Path(args.json).write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote optimize report to {args.json}")
    clean = (
        result.get("audit_violations", 0) == 0
        and result["dropped_survivors"] == 0
    )
    return 0 if clean else 2


def cmd_pipeline(args: argparse.Namespace) -> int:
    """Push a burst of concurrent orders through the intake pipeline."""
    from repro.facade import build_griphon_backbone
    from repro.pipeline import TicketState

    if args.topology == "testbed":
        net = build_griphon_testbed(seed=args.seed)
    else:
        net = build_griphon_backbone(seed=args.seed)
    pipeline = net.enable_pipeline(
        capacity=args.capacity,
        round_size=args.round_size,
        max_defers=args.max_defers,
    )
    service = net.service_for(
        "cli-demo", max_connections=4096, max_total_rate_gbps=1000000
    )
    premises = sorted(net.inventory.ntes)
    rates = (10, 12, 1)
    tickets = []
    for index in range(args.orders):
        a = premises[index % len(premises)]
        b = premises[(index * 7 + 3) % len(premises)]
        if a == b:
            b = premises[(index * 7 + 4) % len(premises)]
        tickets.append(
            service.submit_connection(a, b, rates[index % len(rates)])
        )
    net.run()
    counts = {state: 0 for state in TicketState}
    for ticket in tickets:
        counts[ticket.state] += 1
    print(
        f"pipeline: {args.orders} order(s) on {args.topology}, "
        f"round_size={args.round_size}, {pipeline.rounds} round(s)"
    )
    print(
        f"  accepted={counts[TicketState.ACCEPTED]}"
        f"  blocked={counts[TicketState.BLOCKED]}"
        f"  deferred={counts[TicketState.DEFERRED]}"
        f"  queue-full={counts[TicketState.QUEUE_FULL]}"
    )
    for ticket in tickets:
        line = (f"  {ticket.order_id}: {ticket.premises_a} <-> "
                f"{ticket.premises_b}  {ticket.state.value}")
        if ticket.connection_id:
            line += f"  [{ticket.connection_id}]"
        if ticket.rounds_deferred:
            line += f"  (deferred {ticket.rounds_deferred} round(s))"
        if ticket.reason:
            line += f"  - {ticket.reason}"
        print(line)
    if args.json:
        payload = {
            "orders": args.orders,
            "topology": args.topology,
            "round_size": args.round_size,
            "rounds": pipeline.rounds,
            "counts": {
                state.value: count for state, count in counts.items()
            },
            "tickets": [
                {
                    "order_id": t.order_id,
                    "premises_a": t.premises_a,
                    "premises_b": t.premises_b,
                    "state": t.state.value,
                    "connection_id": t.connection_id,
                    "rounds_deferred": t.rounds_deferred,
                    "reason": t.reason,
                }
                for t in tickets
            ],
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote pipeline report to {args.json}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve an open-loop tenant fleet through the async frontend."""
    from repro.facade import build_griphon_backbone
    from repro.frontend.clients import ClientFleet
    from repro.workload.tenants import TenantPopulation

    if args.topology == "testbed":
        net = build_griphon_testbed(seed=args.seed)
    else:
        net = build_griphon_backbone(seed=args.seed)
    frontend = net.enable_frontend(
        queue_capacity=args.queue_capacity,
        bucket_rate=args.bucket_rate,
        round_interval=0.01,
    )
    population = TenantPopulation(args.tenants)
    fleet = ClientFleet(
        frontend,
        population,
        net.controller.admission,
        premises=sorted(net.inventory.ntes),
        streams=net.streams.spawn("fleet"),
        arrival_rate=args.rate,
        duration=args.duration,
    )
    scheduled = fleet.start()
    net.run()
    counters = net.metrics.counters()
    submitted = counters.get("frontend.submitted", 0.0)
    admitted = counters.get("frontend.admitted", 0.0)
    shed = counters.get("frontend.shed", 0.0)
    throttled = counters.get("frontend.throttled", 0.0)
    print(
        f"serve: {scheduled} arrival(s) from {args.tenants} tenant(s) "
        f"over {args.duration:.0f}s on {args.topology} "
        f"(rate {args.rate}/s, queue {args.queue_capacity})"
    )
    print(
        f"  submitted={submitted:.0f}  admitted={admitted:.0f}  "
        f"shed={shed:.0f}  throttled={throttled:.0f}  "
        f"active={counters.get('frontend.active', 0.0):.0f}"
    )
    latencies = sorted(fleet.stats.order_to_active)
    if latencies:
        p99 = latencies[max(0, int(len(latencies) * 0.99) - 1)]
        print(
            f"  order-to-ACTIVE: p50 {format_duration(statistics.median(latencies))}"
            f"  p99 {format_duration(p99)}  ({len(latencies)} activation(s))"
        )
    print(f"  edge state: {frontend.state}  queue depth: {frontend.queue_depth()}")
    conserved = submitted == admitted + shed + throttled
    print(f"  conservation (submitted == admitted + shed + throttled): {conserved}")
    if args.json:
        payload = {
            "scheduled": scheduled,
            "tenants": args.tenants,
            "registered_tenants": population.registered_count,
            "counters": {
                name: counters[name]
                for name in sorted(counters)
                if name.startswith("frontend.")
            },
            "order_to_active_s": latencies,
            "conserved": conserved,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote serve report to {args.json}")
    return 0 if conserved else 2


def cmd_shard(args: argparse.Namespace) -> int:
    """Place cross-region orders on the sharded continental network."""
    from repro.core.admission import CustomerProfile
    from repro.shard import build_sharded_network, outcome_fingerprint
    from repro.topo.hierarchy import build_hierarchy
    from repro.units import GBPS

    hierarchy = build_hierarchy(
        seed=args.seed,
        regions=args.regions,
        pops_per_region=args.pops,
        with_premises=True,
    )
    region_names = sorted(hierarchy.regions)
    requests = []
    for index in range(args.orders):
        info_a = hierarchy.regions[region_names[index % len(region_names)]]
        info_b = hierarchy.regions[
            region_names[(index + 1) % len(region_names)]
        ]
        a = info_a.premises[index % len(info_a.premises)]
        b = info_b.premises[(index * 3 + 1) % len(info_b.premises)]
        requests.append(("cli-demo", a, b, 10 * GBPS))
    modes = (
        ("sharded", "monolithic") if args.mode == "both" else (args.mode,)
    )
    fingerprints: Dict[str, str] = {}
    payload: Dict[str, dict] = {}
    for mode in modes:
        net = build_sharded_network(seed=args.seed, mode=mode,
                                    hierarchy=hierarchy)
        net.register_customer(
            CustomerProfile(
                "cli-demo",
                max_connections=4096,
                max_total_rate_bps=10000000 * GBPS,
            )
        )
        orders = net.place_orders(requests)
        net.run()
        fingerprints[mode] = outcome_fingerprint(orders)
        audits = net.audit_shards()
        up = sum(1 for o in orders if o.state.value == "up")
        print(
            f"{mode}: {len(orders)} order(s) over {args.regions} region(s) "
            f"x {args.pops} PoP(s), {up} up, "
            f"{len(orders) - up} blocked"
        )
        for order in orders:
            units = " + ".join(r["unit"] for r in order.plan_record) or "-"
            line = (f"  {order.order_id}: {order.premises_a} <-> "
                    f"{order.premises_b}  {order.state.value}  [{units}]")
            if order.blocked_reason:
                line += f"  - {order.blocked_reason}"
            print(line)
        for unit in sorted(audits):
            print(f"  audit {unit}: {audits[unit].summary()}")
        for unit, stats in sorted(net.route_cache_stats().items()):
            print(
                f"  route-cache {unit}: hits={stats['hits']} "
                f"misses={stats['misses']} evictions={stats['evictions']}"
            )
        print(f"  fingerprint {fingerprints[mode]}")
        payload[mode] = {
            "orders": {o.order_id: o.state.value for o in orders},
            "audits_ok": all(audits[u].ok for u in audits),
            "fingerprint": fingerprints[mode],
        }
    matched = len(set(fingerprints.values())) == 1
    if args.mode == "both":
        print(f"fingerprints match: {matched}")
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote shard report to {args.json}")
    return 0 if matched else 2


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GRIPhoN bandwidth-on-demand reproduction scenarios",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="simulation seed (default 0)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "quickstart", help="order, bring up, and tear down a 10G connection"
    ).set_defaults(func=cmd_quickstart)
    table2 = sub.add_parser(
        "table2", help="regenerate Table 2 (setup time vs hops)"
    )
    table2.add_argument(
        "--iterations", type=int, default=10,
        help="measurements per path length (default 10)",
    )
    table2.set_defaults(func=cmd_table2)
    trace = sub.add_parser(
        "trace",
        help="trace the 12G example and break Table 2 down by phase",
    )
    trace.add_argument(
        "--iterations", type=int, default=5,
        help="measurements per path length (default 5)",
    )
    trace.add_argument(
        "--json", metavar="PATH", default=None,
        help="also dump the 12G example's spans as JSON to PATH",
    )
    trace.set_defaults(func=cmd_trace)
    sub.add_parser(
        "restore", help="fiber cut + automated restoration demo"
    ).set_defaults(func=cmd_restore)
    sweep = sub.add_parser(
        "sweep",
        help="run an experiment sweep across worker processes",
    )
    sweep.add_argument(
        "study",
        help="built-in study (x9, x10, pipeline, frontend, shard, slo, "
        "optimize) or path to a JSON sweep spec",
    )
    sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default 1 = serial; same results either way)",
    )
    sweep.add_argument(
        "--repeats", type=int, default=4,
        help="replicate seeds per grid point for built-in studies (default 4)",
    )
    sweep.add_argument(
        "--timeout", type=float, default=900.0,
        help="watchdog: fail if no trial completes for this many seconds",
    )
    sweep.add_argument(
        "--pool", action="store_true",
        help="serve trials from a persistent shard worker pool (shard "
        "study only): units build once and stay warm across trials",
    )
    sweep.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the deterministic aggregate JSON to PATH",
    )
    sweep.set_defaults(func=cmd_sweep)
    chaos = sub.add_parser(
        "chaos",
        help="inject EMS faults into a batch of orders and audit for leaks",
    )
    chaos.add_argument(
        "--orders", type=int, default=9, help="orders to place (default 9)"
    )
    chaos.add_argument(
        "--rate",
        type=float,
        default=0.15,
        help="per-command fault probability (default 0.15)",
    )
    chaos.add_argument(
        "--modes",
        default="transient,timeout",
        help="comma-separated fault modes (default transient,timeout)",
    )
    chaos.add_argument(
        "--plan",
        default=None,
        help="JSON file with a full FaultPlan (overrides --rate/--modes)",
    )
    chaos.add_argument(
        "--json", default=None, help="write the chaos report to this file"
    )
    chaos.set_defaults(func=cmd_chaos)
    slo = sub.add_parser(
        "slo",
        help="replay gray failures with SLA-aware autonomous remediation",
    )
    slo.add_argument(
        "--plan",
        default=None,
        help="JSON file with a DegradationPlan (default: stock scenario)",
    )
    slo.add_argument(
        "--policy",
        default=None,
        help="JSON file with a list of SloPolicy dicts (default: stock set)",
    )
    slo.add_argument(
        "--policy-off",
        action="store_true",
        help="arm no policies: measure violation minutes, remediate nothing",
    )
    slo.add_argument(
        "--horizon", type=float, default=7200.0,
        help="degradation replay horizon in sim seconds (default 7200)",
    )
    slo.add_argument(
        "--json", default=None, help="write the slo report to this file"
    )
    slo.set_defaults(func=cmd_slo)
    opt = sub.add_parser(
        "optimize",
        help="fragment a backbone with churn, then globally re-optimize it",
    )
    opt.add_argument(
        "--nodes", type=int, default=64,
        help="generated backbone PoP count (default 64)",
    )
    opt.add_argument(
        "--warm-orders", type=int, default=160,
        help="orders placed before the churn phase (default 160)",
    )
    opt.add_argument(
        "--load-orders", type=int, default=48,
        help="fresh orders ramped in after optimization (default 48)",
    )
    opt.add_argument(
        "--k-paths", type=int, default=4,
        help="candidate routes per demand per planner pass (default 4)",
    )
    opt.add_argument(
        "--max-passes", type=int, default=4,
        help="planner repack passes (default 4)",
    )
    opt.add_argument(
        "--no-reoptimize", action="store_true",
        help="greedy baseline: skip the re-optimization cycle",
    )
    opt.add_argument(
        "--json", default=None, help="write the optimize report to this file"
    )
    opt.set_defaults(func=cmd_optimize)
    pipe = sub.add_parser(
        "pipeline",
        help="submit a burst of concurrent orders through the intake queue",
    )
    pipe.add_argument(
        "--orders", type=int, default=12, help="orders to submit (default 12)"
    )
    pipe.add_argument(
        "--round-size", type=int, default=8,
        help="orders planned per scheduling round (default 8)",
    )
    pipe.add_argument(
        "--capacity", type=int, default=256,
        help="intake queue bound before QueueFull (default 256)",
    )
    pipe.add_argument(
        "--max-defers", type=int, default=3,
        help="contention retries before a terminal defer (default 3)",
    )
    pipe.add_argument(
        "--topology", choices=("testbed", "backbone"), default="testbed",
        help="network to build (default testbed)",
    )
    pipe.add_argument(
        "--json", default=None, help="write the ticket report to this file"
    )
    pipe.set_defaults(func=cmd_pipeline)
    shard = sub.add_parser(
        "shard",
        help="place cross-region orders on the sharded continental network",
    )
    shard.add_argument(
        "--regions", type=int, default=4, help="region count (default 4)"
    )
    shard.add_argument(
        "--pops", type=int, default=8,
        help="PoPs per region (default 8)",
    )
    shard.add_argument(
        "--orders", type=int, default=6,
        help="cross-region orders to place (default 6)",
    )
    shard.add_argument(
        "--mode", choices=("sharded", "monolithic", "both"),
        default="sharded",
        help="deployment to run; 'both' also compares fingerprints",
    )
    shard.add_argument(
        "--json", default=None, help="write the shard report to this file"
    )
    shard.set_defaults(func=cmd_shard)
    serve = sub.add_parser(
        "serve",
        help="serve an open-loop tenant fleet through the async frontend",
    )
    serve.add_argument(
        "--tenants", type=int, default=1000,
        help="Zipf tenant population size (default 1000)",
    )
    serve.add_argument(
        "--rate", type=float, default=20.0,
        help="mean arrivals per sim-second (default 20)",
    )
    serve.add_argument(
        "--duration", type=float, default=30.0,
        help="sim-seconds of arrivals (default 30)",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=256,
        help="frontend submission-queue bound (default 256)",
    )
    serve.add_argument(
        "--bucket-rate", type=float, default=1.0,
        help="per-tenant token-bucket refill per second (default 1)",
    )
    serve.add_argument(
        "--topology", choices=("testbed", "backbone"), default="testbed",
        help="network to build (default testbed)",
    )
    serve.add_argument(
        "--json", default=None, help="write the serve report to this file"
    )
    serve.set_defaults(func=cmd_serve)
    sub.add_parser(
        "operator", help="print the carrier operator network view"
    ).set_defaults(func=cmd_operator)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
