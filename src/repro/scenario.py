"""Declarative scenarios: describe an experiment, then run it.

Experiments in this repo are sequences of timed actions — orders,
teardowns, fiber cuts, repairs, maintenance windows — against a network.
The scenario runner lets those sequences be *data* (plain dicts, easy to
load from JSON/YAML or build programmatically) instead of bespoke
scripts, which makes sweeps and regression scenarios cheap to define::

    scenario = Scenario.from_dict({
        "name": "friday-night",
        "duration_s": 8 * 3600,
        "events": [
            {"at": 0, "action": "request",
             "params": {"customer": "csp", "a": "PREMISES-A",
                        "b": "PREMISES-C", "rate_gbps": 10}},
            {"at": 3600, "action": "cut",
             "params": {"a": "ROADM-I", "b": "ROADM-IV"}},
            {"at": 7200, "action": "repair",
             "params": {"a": "ROADM-I", "b": "ROADM-IV"}},
        ],
    })
    result = run_scenario(net, scenario)

The result carries the connections (in request order), a per-connection
availability report, and an execution log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.core.connection import Connection
from repro.errors import ConfigurationError, GriphonError
from repro.facade import GriphonNetwork
from repro.metrics import measured_availability

#: Actions the runner understands.
ACTIONS = (
    "request",
    "teardown",
    "cut",
    "cut_srlg",
    "repair",
    "maintenance",
    "regroom",
    "reclaim",
)


@dataclass(frozen=True)
class ScenarioEvent:
    """One timed action.

    Attributes:
        at: Simulation time the action fires.
        action: One of :data:`ACTIONS`.
        params: Action-specific parameters (see the runner methods).
    """

    at: float
    action: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError(f"event time must be >= 0, got {self.at}")
        if self.action not in ACTIONS:
            raise ConfigurationError(
                f"unknown action {self.action!r} (known: {', '.join(ACTIONS)})"
            )


@dataclass
class Scenario:
    """A named, timed sequence of actions."""

    name: str
    duration_s: float
    events: List[ScenarioEvent]

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        for event in self.events:
            if event.at > self.duration_s:
                raise ConfigurationError(
                    f"event at t={event.at} is beyond the scenario "
                    f"duration {self.duration_s}"
                )

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "Scenario":
        """Build a scenario from a plain-dict spec (JSON-friendly)."""
        try:
            events = [
                ScenarioEvent(
                    float(entry["at"]),
                    str(entry["action"]),
                    dict(entry.get("params", {})),
                )
                for entry in spec["events"]
            ]
            return cls(str(spec["name"]), float(spec["duration_s"]), events)
        except KeyError as exc:
            raise ConfigurationError(f"scenario spec missing key {exc}") from exc


@dataclass
class ScenarioResult:
    """What happened when a scenario ran."""

    scenario: Scenario
    connections: List[Connection] = field(default_factory=list)
    log: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    def availability_report(self) -> Dict[str, float]:
        """Per-connection availability over its observed lifetime."""
        report = {}
        for conn in self.connections:
            if conn.up_at is None:
                report[conn.connection_id] = 0.0
                continue
            end = (
                conn.released_at
                if conn.released_at is not None
                else self.scenario.duration_s
            )
            if end <= conn.up_at:
                continue
            report[conn.connection_id] = measured_availability(
                conn, conn.up_at, end
            )
        return report


def run_scenario(net: GriphonNetwork, scenario: Scenario) -> ScenarioResult:
    """Execute a scenario on a freshly built network.

    Actions that fail (e.g. a teardown of an index that never came up)
    are recorded in ``result.errors`` rather than aborting the run —
    scenarios are experiments, and a partial outcome is still data.
    """
    result = ScenarioResult(scenario)
    sim = net.sim
    controller = net.controller

    def log(message: str) -> None:
        result.log.append(f"t={sim.now:>10.1f}  {message}")

    def fire(event: ScenarioEvent) -> None:
        params = event.params
        try:
            if event.action == "request":
                service = net.service_for(params["customer"])
                conn = service.request_connection(
                    params["a"], params["b"], params["rate_gbps"]
                )
                result.connections.append(conn)
                log(f"request #{len(result.connections) - 1}: {conn}")
            elif event.action == "teardown":
                conn = result.connections[params["index"]]
                controller.teardown_connection(conn.connection_id)
                log(f"teardown {conn.connection_id}")
            elif event.action == "cut":
                controller.cut_link(params["a"], params["b"])
                log(f"cut {params['a']}={params['b']}")
            elif event.action == "cut_srlg":
                controller.cut_srlg(params["srlg"])
                log(f"cut srlg {params['srlg']}")
            elif event.action == "repair":
                controller.repair_link(params["a"], params["b"])
                log(f"repair {params['a']}={params['b']}")
            elif event.action == "maintenance":
                net.maintenance.schedule(
                    params["a"],
                    params["b"],
                    start_in=params.get("start_in", 900.0),
                    duration=params["duration"],
                    use_bridge_and_roll=params.get("bridge_and_roll", True),
                )
                log(f"maintenance scheduled on {params['a']}={params['b']}")
            elif event.action == "regroom":
                from repro.core.regrooming import RegroomingEngine

                report = RegroomingEngine(controller).run_pass(
                    max_migrations=params.get("max_migrations")
                )
                log(f"regroom: {len(report.candidates)} candidate(s)")
            elif event.action == "reclaim":
                from repro.core.reclamation import OtnLineReclaimer

                reclaimer = OtnLineReclaimer(
                    controller,
                    holding_time_s=params.get("holding_time_s", 0.0),
                )
                swept = reclaimer.sweep()
                log(f"reclaim: {len(swept.reclaimed)} line(s)")
        except (GriphonError, IndexError, KeyError) as exc:
            result.errors.append(f"t={sim.now:.1f} {event.action}: {exc}")

    # Pre-load the whole timeline in one batch (one O(n) heap merge).
    sim.schedule_many(
        (event.at, fire, (event,), f"scenario:{event.action}")
        for event in sorted(scenario.events, key=lambda e: e.at)
    )
    net.run(until=scenario.duration_s)
    net.run()
    # Close any outage windows still open at the horizon so the
    # availability report is well defined.
    for conn in result.connections:
        if conn.outage_started_at is not None:
            conn.end_outage(scenario.duration_s)
    return result
