"""Observability: sim-time tracing and metrics for the connection lifecycle.

* :mod:`repro.obs.trace` — :class:`~repro.obs.trace.Tracer` producing
  nested :class:`~repro.obs.trace.Span` records (sim-time start/end,
  tags, parent links) over every order → RWA plan → EMS step → verify
  phase, plus restoration and bridge-and-roll; JSON trace export.
* :mod:`repro.obs.registry` — :class:`~repro.obs.registry.MetricsRegistry`
  aggregating counters, duration histograms (via
  :class:`~repro.metrics.collector.Summary`), and pull-style gauges
  such as the route cache hit rate.

Tracing is **off by default**; a disabled tracer costs one flag check
per instrumentation point.  Enable it per network::

    net = build_griphon_testbed(tracing=True)
    ...
    net.tracer.dump("trace.json")
    print(net.metrics.snapshot())
"""

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_SPAN, Span, Tracer
from repro.obs.windows import WindowedSeries

__all__ = ["MetricsRegistry", "NULL_SPAN", "Span", "Tracer", "WindowedSeries"]
