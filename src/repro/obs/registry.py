"""The metrics registry: counters, histograms, and polled gauges.

Aggregates what the tracer sees span by span into durable numbers: how
many orders blocked, the distribution of every EMS step's duration, the
route cache's hit rate.  Histograms reuse the experiment machinery's
:class:`~repro.metrics.collector.Summary` so benchmark tables and the
registry speak the same statistics.

Gauges are *pull*-style: a zero-argument callable registered once and
sampled only when a snapshot is taken.  That keeps hot paths (e.g. the
route cache consulted on every RWA plan) free of per-operation metric
writes — the cache keeps its own counters and the registry reads them
on demand.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Union

from repro.metrics.collector import Summary, summarize


class MetricsRegistry:
    """Named counters + histograms + gauges for one network's lifetime."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}
        self._gauges: Dict[str, Callable[[], Any]] = {}

    # -- counters ----------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount`` (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        """Current value of a counter (0.0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def counters(self) -> Dict[str, float]:
        """A copy of every counter."""
        return dict(self._counters)

    # -- histograms --------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Append one sample to histogram ``name``."""
        self._histograms.setdefault(name, []).append(value)

    def samples(self, name: str) -> List[float]:
        """A copy of a histogram's raw samples (empty if none)."""
        return list(self._histograms.get(name, []))

    def summary(self, name: str) -> Summary:
        """Summary statistics of histogram ``name``.

        Raises:
            ValueError: if the histogram is empty or unknown.
        """
        return summarize(self._histograms.get(name, []))

    def histograms(self) -> List[str]:
        """Names of all histograms with at least one sample."""
        return sorted(self._histograms)

    # -- gauges ------------------------------------------------------------

    def register_gauge(self, name: str, fn: Callable[[], Any]) -> None:
        """Register a pull-style gauge sampled at snapshot time."""
        self._gauges[name] = fn

    def set_gauge(self, name: str, value: Any) -> None:
        """Set a constant-valued gauge (push style).

        For run-scoped results computed once — e.g. the wavelength count
        a re-optimization cycle reclaimed — where a pull callable would
        just close over a number anyway.  Setting the same name again
        replaces the value.
        """
        self._gauges[name] = lambda: value

    def gauge(self, name: str) -> Any:
        """Sample one gauge now.

        Raises:
            KeyError: for an unregistered gauge.
        """
        return self._gauges[name]()

    # -- merging -----------------------------------------------------------

    def state(self) -> Dict[str, Any]:
        """Counters and raw histogram samples, losslessly.

        The mergeable (and picklable, JSON-able) form of the registry:
        everything :meth:`merge` needs to reconstruct this registry's
        contribution inside another registry.  Gauges are excluded —
        they are live callables bound to per-process objects and cannot
        cross a process boundary.
        """
        return {
            "counters": dict(self._counters),
            "samples": {name: list(s) for name, s in self._histograms.items()},
        }

    def merge(self, other: Union["MetricsRegistry", Mapping[str, Any]]) -> None:
        """Fold another registry (or a :meth:`state` dict) into this one.

        Counters add; histogram samples concatenate, so summaries of the
        merged registry are exactly the summaries of the pooled samples
        — no precision is lost to pre-aggregation.  This is how the
        sweep engine combines per-worker metrics in the parent process.
        """
        state = other.state() if isinstance(other, MetricsRegistry) else other
        for name, value in state.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0.0) + value
        for name, samples in state.get("samples", {}).items():
            self._histograms.setdefault(name, []).extend(samples)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Everything, as one JSON-serializable dict.

        Counters verbatim; histograms as summary dicts (count / mean /
        min / p50 / p95 / max); gauges sampled now.  A gauge whose
        callable raises is reported as ``None`` rather than poisoning
        the snapshot.
        """
        histograms: Dict[str, Any] = {}
        for name, samples in self._histograms.items():
            summary = summarize(samples)
            histograms[name] = {
                "count": summary.count,
                "mean": summary.mean,
                "min": summary.minimum,
                "p50": summary.p50,
                "p95": summary.p95,
                "p99": summary.p99,
                "max": summary.maximum,
            }
        gauges: Dict[str, Any] = {}
        for name, fn in self._gauges.items():
            try:
                gauges[name] = fn()
            except Exception:
                gauges[name] = None
        return {
            "counters": dict(self._counters),
            "histograms": histograms,
            "gauges": gauges,
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"histograms={len(self._histograms)}, gauges={len(self._gauges)})"
        )
