"""Sim-time-aware tracing: nested spans over the connection lifecycle.

The paper's headline evidence is *timing* — 60–70 s wavelength setup,
~10 s teardown, Table 2's per-phase dependence on path length — so the
reproduction needs to see where the seconds go *inside* a workflow, not
just end to end.  A :class:`Tracer` produces :class:`Span` records
(name, tags, sim-time start/end, parent id) for every order → RWA plan
→ EMS step → verify phase, plus restoration and bridge-and-roll.

Design constraints, in order:

* **Off by default, near-zero cost when off.**  A disabled tracer's
  :meth:`Tracer.span` returns the shared :data:`NULL_SPAN` after a
  single flag check; nothing is allocated or recorded.
* **Sim-time, not wall-clock.**  The tracer reads time from a clock
  callable (normally :meth:`repro.sim.kernel.Simulator.time_source`),
  so span durations are the simulated seconds the paper measures.
* **Explicit parenting.**  Workflows are generators interleaved by the
  event kernel, so there is deliberately *no* implicit "current span"
  stack — a suspended workflow must never adopt another process's
  spans.  Children are created via ``parent=`` (or ``Span.child``),
  which is unambiguous under any interleaving.

Spans work as context managers, including across generator ``yield``
statements: the ``with`` block opens when the workflow reaches it and
closes (stamping the end time) when the workflow resumes past it, which
is exactly the simulated interval the enclosed steps took.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional


class Span:
    """One traced interval: name, tags, sim start/end, tree links."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "tags",
                 "start", "end", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start: float,
        tags: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.tags = tags

    # -- lifecycle ---------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has stamped the end time."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Simulated seconds covered; 0.0 while still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_tag(self, key: str, value: Any) -> "Span":
        """Attach (or overwrite) one tag; returns self for chaining."""
        self.tags[key] = value
        return self

    def child(self, name: str, **tags: Any) -> "Span":
        """Start a child span (same trace) at the current sim time."""
        return self._tracer.span(name, parent=self, **tags)

    def finish(self, end: Optional[float] = None) -> "Span":
        """Stamp the end time (now, unless given); idempotent."""
        if self.end is None:
            self.end = self._tracer.now() if end is None else end
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and "error" not in self.tags:
            self.tags["error"] = exc_type.__name__
        self.finish()

    # -- export ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable record of this span."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:
        state = f"{self.duration:.3f}s" if self.finished else "open"
        return f"Span({self.name!r}, {state}, id={self.span_id})"


class _NullSpan:
    """The do-nothing span a disabled tracer hands out.

    It satisfies the whole :class:`Span` surface so instrumented code
    never branches on whether tracing is on.
    """

    __slots__ = ()
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    name = ""
    start = 0.0
    end: Optional[float] = 0.0
    tags: Dict[str, Any] = {}
    finished = True
    duration = 0.0

    def set_tag(self, key: str, value: Any) -> "_NullSpan":
        """No-op; returns self."""
        return self

    def child(self, name: str, **tags: Any) -> "_NullSpan":
        """No-op; returns self."""
        return self

    def finish(self, end: Optional[float] = None) -> "_NullSpan":
        """No-op; returns self."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def to_dict(self) -> Dict[str, Any]:
        """An empty record (never exported)."""
        return {}

    def __repr__(self) -> str:
        return "NULL_SPAN"


#: The shared inert span returned whenever tracing is disabled.
NULL_SPAN = _NullSpan()


class Tracer:
    """Produces and collects :class:`Span` records against a sim clock.

    Args:
        clock: Zero-argument callable returning the current simulation
            time; defaults to a constant 0.0 (fine for a disabled or
            clock-less tracer).
        enabled: Start enabled?  Default False — tracing is opt-in and
            the disabled fast path is a single flag check.
    """

    __slots__ = ("_clock", "_enabled", "_spans", "_span_seq", "_trace_seq")

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = False,
    ) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._enabled = bool(enabled)
        self._spans: List[Span] = []
        self._span_seq = 0
        self._trace_seq = 0

    # -- switches ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether spans are being recorded."""
        return self._enabled

    def enable(self) -> None:
        """Start recording spans."""
        self._enabled = True

    def disable(self) -> None:
        """Stop recording; already-collected spans are kept."""
        self._enabled = False

    def now(self) -> float:
        """The clock's current (simulation) time."""
        return self._clock()

    # -- span creation -----------------------------------------------------

    def span(self, name: str, parent: Optional[Span] = None,
             trace_id: Optional[str] = None, **tags: Any) -> Span:
        """Open a span starting now; returns :data:`NULL_SPAN` when off.

        Args:
            name: Phase name, dotted by convention (``ems.tune``).
            parent: Span to nest under; ``None`` starts a new trace root.
            trace_id: Adopt an existing trace id (used to correlate
                restoration/bridge-and-roll activity with the original
                connection's trace); ignored when ``parent`` is given.
            tags: Arbitrary JSON-serializable annotations.
        """
        if not self._enabled:
            return NULL_SPAN  # type: ignore[return-value]
        if parent is not None and parent.span_id is not None:
            tid: str = parent.trace_id
            parent_id: Optional[str] = parent.span_id
        else:
            parent_id = None
            if trace_id is not None:
                tid = trace_id
            else:
                tid = f"t{self._trace_seq}"
                self._trace_seq += 1
        span = Span(
            self, tid, f"s{self._span_seq}", parent_id, name,
            self._clock(), tags,
        )
        self._span_seq += 1
        self._spans.append(span)
        return span

    def event(self, name: str, parent: Optional[Span] = None,
              trace_id: Optional[str] = None, **tags: Any) -> Span:
        """Record an instantaneous point event (zero-duration span)."""
        return self.span(name, parent=parent, trace_id=trace_id,
                         **tags).finish()

    def record(self, name: str, start: float, end: float,
               parent: Optional[Span] = None, trace_id: Optional[str] = None,
               **tags: Any) -> Span:
        """Record a completed interval with explicit timestamps.

        Used for activities whose duration is computed up front and
        scheduled (e.g. OTN shared-mesh switch time) rather than driven
        step by step through a workflow.
        """
        span = self.span(name, parent=parent, trace_id=trace_id, **tags)
        if span.span_id is not None:
            span.start = start
            span.finish(end)
        return span

    # -- queries -----------------------------------------------------------

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """All recorded spans, optionally filtered by exact name."""
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def roots(self) -> List[Span]:
        """Spans with no parent (one per trace start)."""
        return [s for s in self._spans if s.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of ``span``, in start order."""
        return [s for s in self._spans if s.parent_id == span.span_id]

    def by_trace(self, trace_id: str) -> List[Span]:
        """Every span belonging to one trace, in start order."""
        return [s for s in self._spans if s.trace_id == trace_id]

    def clear(self) -> None:
        """Forget all recorded spans (id counters keep advancing)."""
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    # -- export ------------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All spans as JSON-serializable dicts, in start order."""
        return [span.to_dict() for span in self._spans]

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The whole trace as a JSON array string."""
        return json.dumps(self.to_dicts(), indent=indent)

    def dump(self, path: str, indent: Optional[int] = 2) -> None:
        """Write the JSON trace to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(indent=indent))

    def __repr__(self) -> str:
        state = "enabled" if self._enabled else "disabled"
        return f"Tracer({state}, spans={len(self._spans)})"
