"""Sliding sim-time windows over metric samples, for burn-rate alerts.

A :class:`WindowedSeries` keeps timestamped observations in a bounded
deque and answers window questions: "what fraction of the last 120
sim-seconds of margin samples were below 2 dB?"  SLO policies use two
windows (a short one for fast reaction, a long one to reject blips),
the multi-window burn-rate structure from SRE alerting practice.

Everything is driven by the sim clock passed in by the caller; the
series never reads wall-clock time, so detection is deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Tuple

from repro.errors import ConfigurationError


class WindowedSeries:
    """Timestamped samples with sliding-window fraction queries."""

    def __init__(self, max_samples: int = 4096) -> None:
        if max_samples < 1:
            raise ConfigurationError(
                f"max_samples must be >= 1, got {max_samples}"
            )
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=max_samples)

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, now: float, value: float) -> None:
        """Append one observation at sim time ``now``.

        Timestamps must be non-decreasing (the sim clock only moves
        forward); out-of-order samples raise.
        """
        if self._samples and now < self._samples[-1][0]:
            raise ConfigurationError(
                f"samples must be time-ordered: {now} < {self._samples[-1][0]}"
            )
        self._samples.append((now, value))

    def window(self, now: float, width_s: float) -> List[float]:
        """Values observed in the half-open window ``(now - width_s, now]``."""
        if width_s <= 0:
            raise ConfigurationError(
                f"window width must be positive, got {width_s}"
            )
        cutoff = now - width_s
        result: List[float] = []
        for when, value in reversed(self._samples):
            if when <= cutoff:
                break
            result.append(value)
        result.reverse()
        return result

    def fraction(
        self, now: float, width_s: float, predicate: Callable[[float], bool]
    ) -> float:
        """Fraction of window samples satisfying ``predicate``.

        Returns 0.0 for an empty window — no evidence is treated as
        healthy, so a policy can never fire before its first sample.
        """
        values = self.window(now, width_s)
        if not values:
            return 0.0
        return sum(1 for value in values if predicate(value)) / len(values)

    def latest(self) -> Tuple[float, float]:
        """The most recent (time, value) pair.

        Raises:
            ConfigurationError: if the series is empty.
        """
        if not self._samples:
            raise ConfigurationError("series has no samples")
        return self._samples[-1]

    def __repr__(self) -> str:
        return f"WindowedSeries({len(self._samples)} sample(s))"
