"""Inventory/hardware invariant auditing: the chaos-test oracle.

:func:`audit_inventory` cross-checks the controller's claims (registered
lightpaths, circuits, connections) against the hardware state every
element keeps for itself — wavelength occupancy bitmasks, ROADM port and
express ownership, transponder/regen allocation, FXC cross-connects, NTE
interfaces, OTN line slots — and reports every inconsistency as a typed
:class:`AuditViolation`.  A clean report after any scenario (including
saga-rolled-back setups and injected element failures) means no resource
leaked and nothing was double-allocated.

Run it any time: the audit only reads state, never mutates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.connection import Connection, ConnectionState
from repro.core.inventory import InventoryDatabase


@dataclass(frozen=True)
class AuditViolation:
    """One invariant violation found by the audit.

    Attributes:
        kind: Violation class (e.g. ``channel-leak``, ``double-alloc``).
        resource: The hardware resource involved.
        owner: The owner string recorded on the resource ('' if none).
        detail: Human-readable explanation.
    """

    kind: str
    resource: str
    owner: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.resource} (owner={self.owner!r}): {self.detail}"


@dataclass
class AuditReport:
    """The outcome of one audit pass."""

    violations: List[AuditViolation] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.violations

    def summary(self) -> str:
        """One line for logs and the ``griphon chaos`` output."""
        status = "clean" if self.ok else f"{len(self.violations)} violation(s)"
        return f"audit: {self.checked} resource(s) checked, {status}"

    def __str__(self) -> str:
        lines = [self.summary()]
        lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)


#: Connection states that may legitimately hold carrier resources.
_RESOURCE_HOLDING_STATES = frozenset(
    state
    for state in ConnectionState
    if state not in (ConnectionState.RELEASED, ConnectionState.BLOCKED)
)


def audit_network(controller) -> AuditReport:
    """Audit a controller's inventory against its connection table."""
    return audit_inventory(
        controller.inventory,
        controller.connections,
        amplifier_chains=controller.roadm_ems.amplifier_chains(),
    )


def audit_inventory(
    inventory: InventoryDatabase,
    connections: Optional[Mapping[str, Connection]] = None,
    amplifier_chains: Optional[Mapping[tuple, object]] = None,
) -> AuditReport:
    """Cross-check inventory claims against hardware state.

    Args:
        inventory: The database to audit.
        connections: The controller's connection table; when given, FXC
            cross-connects, NTE interfaces, and OTN client ports must be
            owned by live (resource-holding) connections.
        amplifier_chains: The EMS's live amplifier chains per link key;
            when given, each chain's gain setting must match the
            inventory-recorded target unless an *active* amp-flap
            degradation on the link explains the deviation.

    Returns:
        An :class:`AuditReport`; ``report.ok`` is the chaos-test oracle.
    """
    report = AuditReport()
    _audit_dwdm_links(inventory, report)
    _audit_roadms(inventory, report)
    _audit_transponders_and_regens(inventory, report)
    _audit_otn_lines(inventory, report)
    if connections is not None:
        _audit_connection_resources(inventory, connections, report)
    if amplifier_chains is not None:
        _audit_amplifier_gains(inventory, amplifier_chains, report)
    return report


# -- wavelength layer ---------------------------------------------------------


def _expected_channel_owners(
    inventory: InventoryDatabase, report: AuditReport
) -> Dict[Tuple[Tuple[str, str], int], str]:
    """(link key, channel) -> lightpath id, from the registered records.

    Detects double-allocation — two registered lightpaths claiming the
    same channel on the same link — while building the map.
    """
    expected: Dict[Tuple[Tuple[str, str], int], str] = {}
    for lightpath in inventory.lightpaths.values():
        for segment in lightpath.segments:
            for key in segment.links:
                slot = (key, segment.channel)
                holder = expected.get(slot)
                if holder is not None and holder != lightpath.lightpath_id:
                    report.violations.append(
                        AuditViolation(
                            kind="double-alloc",
                            resource=f"channel {segment.channel} on {key[0]}={key[1]}",
                            owner=holder,
                            detail=(
                                f"also claimed by {lightpath.lightpath_id}"
                            ),
                        )
                    )
                expected[slot] = lightpath.lightpath_id
    return expected


def _audit_dwdm_links(inventory: InventoryDatabase, report: AuditReport) -> None:
    expected = _expected_channel_owners(inventory, report)
    all_channels = set(inventory.grid.channels())
    for link in inventory.plant.graph.links:
        dwdm = inventory.plant.dwdm_link(*link.key)
        report.checked += 1
        occupied = dwdm.occupied_channels
        free = dwdm.free_channels()
        # The occupancy bitmask and the owner table must partition the grid.
        if occupied & free or (occupied | free) != all_channels:
            report.violations.append(
                AuditViolation(
                    kind="bitmask-inconsistent",
                    resource=f"link {link.key[0]}={link.key[1]}",
                    owner="",
                    detail=(
                        f"occupied/free sets do not partition the grid "
                        f"({len(occupied)} occupied, {len(free)} free, "
                        f"grid {len(all_channels)})"
                    ),
                )
            )
        for channel in sorted(occupied):
            owner = dwdm.owner_of(channel) or ""
            slot = (link.key, channel)
            claimant = expected.get(slot)
            if claimant is None:
                report.violations.append(
                    AuditViolation(
                        kind="channel-leak",
                        resource=f"channel {channel} on {link.key[0]}={link.key[1]}",
                        owner=owner,
                        detail="occupied but no registered lightpath claims it",
                    )
                )
            elif claimant != owner:
                report.violations.append(
                    AuditViolation(
                        kind="channel-owner-mismatch",
                        resource=f"channel {channel} on {link.key[0]}={link.key[1]}",
                        owner=owner,
                        detail=f"registered lightpath {claimant} claims it",
                    )
                )
    # Converse: every registered claim must actually be occupied.
    for slot, claimant in expected.items():
        key, channel = slot
        dwdm = inventory.plant.dwdm_link(*key)
        if dwdm.owner_of(channel) != claimant:
            report.violations.append(
                AuditViolation(
                    kind="channel-missing",
                    resource=f"channel {channel} on {key[0]}={key[1]}",
                    owner=claimant,
                    detail=(
                        "registered lightpath claims the channel but the "
                        "link does not record it"
                    ),
                )
            )


def _audit_roadms(inventory: InventoryDatabase, report: AuditReport) -> None:
    live_lightpaths = set(inventory.lightpaths)
    for node, roadm in inventory.roadms.items():
        report.checked += 1
        for port in roadm.ports:
            if port.owner is None:
                continue
            if port.owner not in live_lightpaths:
                report.violations.append(
                    AuditViolation(
                        kind="roadm-port-leak",
                        resource=f"{node} add/drop port {port.port_id}",
                        owner=port.owner or "",
                        detail="owned by an unregistered lightpath",
                    )
                )
        for degree_in, degree_out, channel, owner in roadm.express_connections():
            if owner not in live_lightpaths:
                report.violations.append(
                    AuditViolation(
                        kind="roadm-express-leak",
                        resource=(
                            f"{node} express {degree_in}->{degree_out} ch{channel}"
                        ),
                        owner=owner,
                        detail="owned by an unregistered lightpath",
                    )
                )


def _audit_transponders_and_regens(
    inventory: InventoryDatabase, report: AuditReport
) -> None:
    lightpaths = inventory.lightpaths
    claimed_ots = {
        ot_id: lp.lightpath_id
        for lp in lightpaths.values()
        for ot_id in lp.ot_ids
    }
    claimed_regens = {
        regen_id: lp.lightpath_id
        for lp in lightpaths.values()
        for regen_id in lp.regen_ids
    }
    for node, pool in inventory.transponders.items():
        report.checked += 1
        for ot in pool.transponders:
            if ot.owner is None:
                if ot.ot_id in claimed_ots:
                    report.violations.append(
                        AuditViolation(
                            kind="ot-missing",
                            resource=ot.ot_id,
                            owner=claimed_ots[ot.ot_id],
                            detail=(
                                "registered lightpath lists the OT but the "
                                "hardware is idle"
                            ),
                        )
                    )
                continue
            claimant = claimed_ots.get(ot.ot_id)
            if claimant is None:
                report.violations.append(
                    AuditViolation(
                        kind="ot-leak",
                        resource=ot.ot_id,
                        owner=ot.owner,
                        detail="allocated but no registered lightpath lists it",
                    )
                )
            elif claimant != ot.owner:
                report.violations.append(
                    AuditViolation(
                        kind="ot-owner-mismatch",
                        resource=ot.ot_id,
                        owner=ot.owner,
                        detail=f"registered lightpath {claimant} lists it",
                    )
                )
    for node, pool in inventory.regens.items():
        report.checked += 1
        for regen in pool.regenerators:
            if regen.owner is None:
                continue
            claimant = claimed_regens.get(regen.regen_id)
            if claimant is None:
                report.violations.append(
                    AuditViolation(
                        kind="regen-leak",
                        resource=regen.regen_id,
                        owner=regen.owner,
                        detail="allocated but no registered lightpath lists it",
                    )
                )
            elif claimant != regen.owner:
                report.violations.append(
                    AuditViolation(
                        kind="regen-owner-mismatch",
                        resource=regen.regen_id,
                        owner=regen.owner,
                        detail=f"registered lightpath {claimant} lists it",
                    )
                )


# -- OTN layer ---------------------------------------------------------------


def _audit_otn_lines(inventory: InventoryDatabase, report: AuditReport) -> None:
    live_circuits = set(inventory.circuits)
    for line_id, line in inventory.otn_lines.items():
        report.checked += 1
        for owner in sorted(line.owners()):
            if owner not in live_circuits:
                report.violations.append(
                    AuditViolation(
                        kind="otn-slot-leak",
                        resource=f"line {line_id}",
                        owner=owner,
                        detail="slots held by an unregistered circuit",
                    )
                )
    # Converse: a registered circuit must hold slots on its working or
    # backup lines (mesh restoration may have moved it to the backup).
    for circuit_id, circuit in inventory.circuits.items():
        lines = [
            inventory.otn_lines[line_id]
            for line_id in list(circuit.line_ids) + list(circuit.backup_line_ids)
            if line_id in inventory.otn_lines
        ]
        if lines and not any(circuit_id in line.owners() for line in lines):
            report.violations.append(
                AuditViolation(
                    kind="otn-slot-missing",
                    resource=f"circuit {circuit_id}",
                    owner=circuit_id,
                    detail="registered circuit holds no slots on its lines",
                )
            )


# -- amplifier gain settings --------------------------------------------------


def _audit_amplifier_gains(
    inventory: InventoryDatabase,
    amplifier_chains: Mapping[tuple, object],
    report: AuditReport,
) -> None:
    """Live EMS gain settings must match the inventory-recorded targets.

    A deviation is legitimate only while an ``amp-flap:*`` degradation
    is actively registered on the same link — that is the injector
    telling the world the amp is flapping.  Any other mismatch means a
    remediation or restore path forgot to reset the gain: exactly the
    bug class that used to pass the audit silently.
    """
    for key in sorted(amplifier_chains):
        chain = amplifier_chains[key]
        report.checked += 1
        recorded = inventory.recorded_amplifier_gain(key)
        if recorded is None:
            # Pre-SLO networks never recorded targets; nothing to check.
            continue
        live = chain.gain_db
        if live == recorded:
            continue
        try:
            dwdm = inventory.plant.dwdm_link(*key)
            causes = dwdm.degradation_causes()
        except Exception:
            causes = []
        if any(cause.startswith("amp-flap") for cause in causes):
            continue
        report.violations.append(
            AuditViolation(
                kind="amp-gain-mismatch",
                resource=f"amplifier chain {key[0]}={key[1]}",
                owner="",
                detail=(
                    f"live gain {live:.2f} dB != recorded "
                    f"{recorded:.2f} dB with no active amp-flap"
                ),
            )
        )


# -- connection-scoped resources ---------------------------------------------


def _audit_connection_resources(
    inventory: InventoryDatabase,
    connections: Mapping[str, Connection],
    report: AuditReport,
) -> None:
    live = {
        conn_id
        for conn_id, conn in connections.items()
        if conn.state in _RESOURCE_HOLDING_STATES
    }
    for site, fxc in inventory.fxcs.items():
        report.checked += 1
        for port_a, port_b, owner in fxc.connections():
            if owner not in live:
                report.violations.append(
                    AuditViolation(
                        kind="fxc-leak",
                        resource=f"FXC {site} ports {port_a}<->{port_b}",
                        owner=owner,
                        detail="cross-connect owned by a non-live connection",
                    )
                )
    for node, switch in inventory.otn_switches.items():
        report.checked += 1
        for port, owner in sorted(switch.client_port_owners().items()):
            if owner not in live:
                report.violations.append(
                    AuditViolation(
                        kind="otn-client-port-leak",
                        resource=f"OTN {node} client port {port}",
                        owner=owner,
                        detail="client port owned by a non-live connection",
                    )
                )
    for premises, nte in inventory.ntes.items():
        report.checked += 1
        for index in range(nte.interface_count):
            owner = nte.owner_of(index)
            if owner is None:
                continue
            # Channelized muxes are owned by the shared carrier pool;
            # their sub-channels carry the per-connection ownership.
            if owner != "shared" and owner not in live:
                report.violations.append(
                    AuditViolation(
                        kind="nte-interface-leak",
                        resource=f"NTE {premises} interface {index}",
                        owner=owner,
                        detail="interface owned by a non-live connection",
                    )
                )
            for sub in range(nte.subchannels_per_interface):
                sub_owner = nte.subchannel_owner(index, sub)
                if sub_owner is not None and sub_owner not in live:
                    report.violations.append(
                        AuditViolation(
                            kind="nte-subchannel-leak",
                            resource=f"NTE {premises} if{index}/sub{sub}",
                            owner=sub_owner,
                            detail="sub-channel owned by a non-live connection",
                        )
                    )
    # Live connections must reference only registered components.
    for conn_id in sorted(live):
        connection = connections[conn_id]
        if connection.state is ConnectionState.REQUESTED:
            continue  # claim not finished yet
        for lightpath_id in connection.lightpath_ids:
            if lightpath_id not in inventory.lightpaths:
                report.violations.append(
                    AuditViolation(
                        kind="dangling-lightpath",
                        resource=f"connection {conn_id}",
                        owner=conn_id,
                        detail=f"references unregistered lightpath {lightpath_id}",
                    )
                )
        for circuit_id in connection.circuit_ids:
            if circuit_id not in inventory.circuits:
                report.violations.append(
                    AuditViolation(
                        kind="dangling-circuit",
                        resource=f"connection {conn_id}",
                        owner=conn_id,
                        detail=f"references unregistered circuit {circuit_id}",
                    )
                )
