"""Deterministic fault injection, resilient EMS commands, and auditing.

Three pieces, composable but independently usable:

* :mod:`repro.faults.plan` — a declarative, seeded :class:`FaultPlan`
  that decides which EMS commands fail, how, and when;
* :mod:`repro.faults.resilient` — the :class:`ResilientExecutor` every
  EMS command runs through: sim-time timeouts, bounded retries with
  exponential backoff and deterministic jitter, per-EMS circuit
  breakers;
* :mod:`repro.faults.audit` — an invariant auditor cross-checking
  inventory claims against hardware state, used as the oracle of the
  chaos property tests and the ``griphon chaos`` CLI.
"""

from repro.faults.audit import (
    AuditReport,
    AuditViolation,
    audit_inventory,
    audit_network,
)
from repro.faults.plan import (
    DEGRADATION_MODES,
    DegradationPlan,
    DegradationSpec,
    FAULT_MODES,
    FaultPlan,
    FaultSpec,
)
from repro.faults.resilient import CircuitBreaker, ResilientExecutor, RetryPolicy

__all__ = [
    "AuditReport",
    "AuditViolation",
    "audit_inventory",
    "audit_network",
    "DEGRADATION_MODES",
    "DegradationPlan",
    "DegradationSpec",
    "FAULT_MODES",
    "FaultPlan",
    "FaultSpec",
    "CircuitBreaker",
    "ResilientExecutor",
    "RetryPolicy",
]
