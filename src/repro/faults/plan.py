"""Declarative, seeded fault plans for EMS command injection.

A :class:`FaultPlan` is a list of :class:`FaultSpec` rules matched
against every EMS command the resilient executor runs.  Matching uses
``fnmatch`` wildcards over the EMS name (``roadm_ems``, ``otn_ems``,
``fxc_ctl``, ``nte_ctl``), the element label, and the command stage, so
one spec can express "every ROADM command", "the FXC at ROADM-II is
stuck between t=100 and t=400", or "the third equalize fails once".

Determinism: the plan draws its probability gates from a substream
spawned off the network's :class:`~repro.sim.randomness.RandomStreams`
(``streams.spawn("faults")``), the same domain-separation mechanism the
sweep engine uses for trials — two runs with the same master seed see
byte-identical fault sequences, and an empty plan draws nothing at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.randomness import RandomStreams

#: The injectable failure modes, from most to least benign.
FAULT_MODES = ("transient", "timeout", "stuck", "fail")


@dataclass(frozen=True)
class FaultSpec:
    """One fault-injection rule.

    Attributes:
        ems: EMS name pattern (``roadm_ems``, ``otn_ems``, ``fxc_ctl``,
            ``nte_ctl``, or ``*``).
        element: Element label pattern (e.g. ``ROADM-II``, ``OT:*``).
        command: Command stage pattern (``tune``, ``roadm``, ``fxc``,
            ``equalize``, ``verify``, ``otn``, ``nte``, or ``*``).
        mode: ``transient`` (quick error, retry usually wins),
            ``timeout``/``stuck`` (the command burns its full sim-time
            timeout before failing), or ``fail`` (hard element failure;
            retrying is pointless and the executor fails fast).
        probability: Chance a matching command is hit (1.0 = always).
        count: Total injections this spec may perform (None = unlimited).
        after_s: Rule active only at sim times >= this.
        until_s: Rule inactive at sim times >= this (None = forever).
        error_after_s: Sim-seconds a transient/fail fault consumes
            before the error surfaces.
    """

    ems: str = "*"
    element: str = "*"
    command: str = "*"
    mode: str = "transient"
    probability: float = 1.0
    count: Optional[int] = None
    after_s: float = 0.0
    until_s: Optional[float] = None
    error_after_s: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise ConfigurationError(
                f"unknown fault mode {self.mode!r} (known: {', '.join(FAULT_MODES)})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.count is not None and self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")
        if self.error_after_s < 0:
            raise ConfigurationError(
                f"error_after_s must be >= 0, got {self.error_after_s}"
            )
        if self.until_s is not None and self.until_s <= self.after_s:
            raise ConfigurationError(
                f"until_s ({self.until_s}) must be after after_s ({self.after_s})"
            )

    def matches(self, ems: str, element: str, command: str, now: float) -> bool:
        """True when this rule applies to the command at sim time ``now``."""
        if now < self.after_s:
            return False
        if self.until_s is not None and now >= self.until_s:
            return False
        return (
            fnmatchcase(ems, self.ems)
            and fnmatchcase(element, self.element)
            and fnmatchcase(command, self.command)
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON plans (``griphon chaos --plan``)."""
        return {
            "ems": self.ems,
            "element": self.element,
            "command": self.command,
            "mode": self.mode,
            "probability": self.probability,
            "count": self.count,
            "after_s": self.after_s,
            "until_s": self.until_s,
            "error_after_s": self.error_after_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        """Build a spec from its plain-dict form; unknown keys raise."""
        known = {
            "ems", "element", "command", "mode", "probability",
            "count", "after_s", "until_s", "error_after_s",
        }
        extra = set(data) - known
        if extra:
            raise ConfigurationError(
                f"unknown FaultSpec keys: {', '.join(sorted(extra))}"
            )
        return cls(**data)


class FaultPlan:
    """An ordered set of fault rules plus their deterministic dice.

    The first matching rule with injections remaining decides a
    command's fate; rules never compose.  An empty plan is the default
    everywhere and guarantees a zero-overhead happy path: the executor
    checks :attr:`empty` and falls through without drawing randomness,
    counting metrics, or opening spans.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self._specs: List[FaultSpec] = list(specs)
        self._remaining: List[Optional[int]] = [s.count for s in self._specs]
        self._injected: List[int] = [0 for _ in self._specs]
        self._streams: Optional[RandomStreams] = None

    @property
    def specs(self) -> List[FaultSpec]:
        """The plan's rules, in match order."""
        return list(self._specs)

    @property
    def empty(self) -> bool:
        """True when no rule can ever fire again."""
        return not any(
            remaining is None or remaining > 0 for remaining in self._remaining
        )

    @property
    def injected_counts(self) -> List[int]:
        """Per-rule count of faults actually injected so far."""
        return list(self._injected)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        """Append a rule mid-run (chaos scripting); returns self."""
        self._specs.append(spec)
        self._remaining.append(spec.count)
        self._injected.append(0)
        return self

    def bind(self, streams: RandomStreams) -> "FaultPlan":
        """Attach the seeded dice; the controller calls this at build."""
        self._streams = streams.spawn("faults")
        return self

    def decide(
        self, ems: str, element: str, command: str, now: float
    ) -> Optional[FaultSpec]:
        """The fault (if any) to inject into this command attempt.

        Consumes one injection from the first matching rule that passes
        its probability gate.  Probability draws come from a per-rule
        named substream, so adding a rule never perturbs another rule's
        dice sequence.
        """
        for index, spec in enumerate(self._specs):
            remaining = self._remaining[index]
            if remaining is not None and remaining <= 0:
                continue
            if not spec.matches(ems, element, command, now):
                continue
            if spec.probability < 1.0:
                if self._streams is None:
                    raise ConfigurationError(
                        "FaultPlan with probabilistic rules must be bound to "
                        "RandomStreams (plan.bind(streams)) before use"
                    )
                roll = self._streams.uniform(f"fault:{index}", 0.0, 1.0)
                if roll >= spec.probability:
                    continue
            if remaining is not None:
                self._remaining[index] = remaining - 1
            self._injected[index] += 1
            return spec
        return None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON plans."""
        return {"specs": [spec.to_dict() for spec in self._specs]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Build a plan from its plain-dict form."""
        specs = [FaultSpec.from_dict(item) for item in data.get("specs", [])]
        return cls(specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __repr__(self) -> str:
        return f"FaultPlan({len(self._specs)} spec(s))"


#: Gray-failure modes: signal degradation rather than outright failure.
DEGRADATION_MODES = ("osnr-drift", "amp-flap", "attenuation-creep")


@dataclass(frozen=True)
class DegradationSpec:
    """One gray-failure rule against a fiber link.

    Unlike a :class:`FaultSpec`, which trips EMS commands, a degradation
    erodes the optical signal itself: the link stays up and keeps
    carrying traffic while its OSNR margin shrinks.

    Attributes:
        link: ``"A=B"`` link name (node order is normalized).
        mode: ``osnr-drift`` (linear ramp to ``magnitude_db``, then
            hold), ``amp-flap`` (square-wave amplifier gain error of
            ``magnitude_db`` with period ``period_s``), or
            ``attenuation-creep`` (monotonic ``rate_db_per_hour`` climb
            capped at ``magnitude_db``).
        start_s: Sim time the degradation begins.
        duration_s: How long it lasts; state is restored at the end.
        magnitude_db: Peak OSNR penalty in dB.
        period_s: Flap period for ``amp-flap`` (ignored otherwise).
        rate_db_per_hour: Climb rate for ``attenuation-creep``.
        jitter_db: Peak-to-peak deterministic noise added per tick, drawn
            from the plan's seeded substream.
    """

    link: str
    mode: str = "osnr-drift"
    start_s: float = 0.0
    duration_s: float = 3600.0
    magnitude_db: float = 6.0
    period_s: float = 120.0
    rate_db_per_hour: float = 2.0
    jitter_db: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in DEGRADATION_MODES:
            raise ConfigurationError(
                f"unknown degradation mode {self.mode!r} "
                f"(known: {', '.join(DEGRADATION_MODES)})"
            )
        if "=" not in self.link:
            raise ConfigurationError(
                f"link must be 'A=B', got {self.link!r}"
            )
        if self.start_s < 0:
            raise ConfigurationError(
                f"start_s must be >= 0, got {self.start_s}"
            )
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be positive, got {self.duration_s}"
            )
        if self.magnitude_db <= 0:
            raise ConfigurationError(
                f"magnitude_db must be positive, got {self.magnitude_db}"
            )
        if self.period_s <= 0:
            raise ConfigurationError(
                f"period_s must be positive, got {self.period_s}"
            )
        if self.rate_db_per_hour <= 0:
            raise ConfigurationError(
                f"rate_db_per_hour must be positive, got {self.rate_db_per_hour}"
            )
        if self.jitter_db < 0:
            raise ConfigurationError(
                f"jitter_db must be >= 0, got {self.jitter_db}"
            )

    @property
    def endpoints(self) -> "tuple[str, str]":
        """The link's node pair in canonical (sorted) order."""
        a, b = self.link.split("=", 1)
        return (a, b) if a <= b else (b, a)

    @property
    def end_s(self) -> float:
        """Sim time the degradation clears."""
        return self.start_s + self.duration_s

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON plans (``griphon slo --plan``)."""
        return {
            "link": self.link,
            "mode": self.mode,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "magnitude_db": self.magnitude_db,
            "period_s": self.period_s,
            "rate_db_per_hour": self.rate_db_per_hour,
            "jitter_db": self.jitter_db,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DegradationSpec":
        """Build a spec from its plain-dict form; unknown keys raise."""
        known = {
            "link", "mode", "start_s", "duration_s", "magnitude_db",
            "period_s", "rate_db_per_hour", "jitter_db",
        }
        extra = set(data) - known
        if extra:
            raise ConfigurationError(
                f"unknown DegradationSpec keys: {', '.join(sorted(extra))}"
            )
        return cls(**data)


class DegradationPlan:
    """An ordered set of gray-failure rules plus their seeded dice.

    Bound to a ``streams.spawn("degradations")`` substream so per-tick
    jitter is byte-identical across runs with the same master seed.  An
    empty plan schedules nothing: attaching it to a network leaves the
    event stream untouched.
    """

    def __init__(self, specs: Sequence[DegradationSpec] = ()) -> None:
        self._specs: List[DegradationSpec] = list(specs)
        self._streams: Optional[RandomStreams] = None

    @property
    def specs(self) -> List[DegradationSpec]:
        """The plan's rules, in declaration order."""
        return list(self._specs)

    @property
    def empty(self) -> bool:
        """True when the plan has no rules at all."""
        return not self._specs

    @property
    def horizon_s(self) -> float:
        """Sim time by which every degradation has cleared (0 if empty)."""
        return max((spec.end_s for spec in self._specs), default=0.0)

    def add(self, spec: DegradationSpec) -> "DegradationPlan":
        """Append a rule (chaos scripting); returns self."""
        self._specs.append(spec)
        return self

    def bind(self, streams: RandomStreams) -> "DegradationPlan":
        """Attach the seeded dice; the injector calls this at start."""
        self._streams = streams.spawn("degradations")
        return self

    def jitter(self, index: int, tick: int) -> float:
        """Deterministic jitter for spec ``index`` at tick ``tick``.

        Each (spec, tick) pair draws exactly once from the spec's named
        substream, so replaying the plan reproduces the same noise and
        adding a rule never perturbs another rule's sequence.
        """
        spec = self._specs[index]
        if spec.jitter_db == 0.0:
            return 0.0
        if self._streams is None:
            raise ConfigurationError(
                "DegradationPlan with jitter must be bound to RandomStreams "
                "(plan.bind(streams)) before use"
            )
        half = spec.jitter_db / 2.0
        return self._streams.uniform(f"degradation:{index}", -half, half)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON plans."""
        return {"degradations": [spec.to_dict() for spec in self._specs]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DegradationPlan":
        """Build a plan from its plain-dict form."""
        specs = [
            DegradationSpec.from_dict(item)
            for item in data.get("degradations", [])
        ]
        return cls(specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __repr__(self) -> str:
        return f"DegradationPlan({len(self._specs)} spec(s))"

