"""Resilient EMS command execution: timeouts, retries, circuit breakers.

Every timed EMS step in a provisioning workflow runs through
:meth:`ResilientExecutor.execute`, a generator the workflow delegates to
with ``yield from``.  On the happy path (empty fault plan) it yields the
step's duration once and returns — no random draws, no metrics, no
spans — so the resilience layer is invisible in Table 2 and the
benchmark JSONs.  When the bound :class:`~repro.faults.plan.FaultPlan`
injects a fault, the executor:

* charges the fault's sim-time cost (``error_after_s`` for transient
  errors, the policy timeout for timeouts/stuck elements);
* retries up to ``max_attempts`` with exponential backoff and
  deterministic jitter (drawn from a named substream, so two runs with
  one seed back off identically);
* trips a per-EMS circuit breaker (closed -> open -> half-open) after
  consecutive failures, failing subsequent commands fast during the
  cooldown;
* records ``ems.retry`` / ``ems.breaker.*`` counters and ``ems.retry``
  child spans under the step's trace span.

Exhausted retries raise :class:`~repro.errors.CommandFailedError` —
the saga in :mod:`repro.core.provisioning` catches it and compensates.
Teardown paths pass ``best_effort=True``: failures are swallowed (and
counted) so resource release always completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional

from repro.errors import (
    CircuitBreakerOpenError,
    CommandFailedError,
    CommandTimeoutError,
    ConfigurationError,
    EquipmentError,
)
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_SPAN, Span
from repro.sim.randomness import RandomStreams


@dataclass(frozen=True)
class RetryPolicy:
    """Per-command resilience parameters.

    Attributes:
        timeout_s: Sim-time budget per attempt; timeout/stuck faults
            consume exactly this long before failing.
        max_attempts: Total attempts (first try + retries).
        backoff_base_s: Backoff before the first retry.
        backoff_factor: Multiplier per subsequent retry.
        backoff_max_s: Backoff ceiling.
        jitter: Fractional jitter added to each backoff (0.1 = up to
            +10%, drawn deterministically from a named substream).
        breaker_threshold: Consecutive failures that open an EMS's
            circuit breaker.
        breaker_cooldown_s: Open time before a half-open probe is let
            through.
    """

    timeout_s: float = 30.0
    max_attempts: int = 3
    backoff_base_s: float = 1.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    jitter: float = 0.1
    breaker_threshold: int = 4
    breaker_cooldown_s: float = 120.0

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ConfigurationError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.breaker_threshold < 1:
            raise ConfigurationError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown_s <= 0:
            raise ConfigurationError(
                f"breaker_cooldown_s must be > 0, got {self.breaker_cooldown_s}"
            )

    def backoff_delay(self, retry_index: int, jitter_roll: float = 0.0) -> float:
        """The backoff before retry ``retry_index`` (1-based).

        Pure math, unit-testable: ``base * factor**(i-1)`` capped at
        ``backoff_max_s``, then stretched by ``1 + jitter * roll`` with
        ``roll`` in ``[0, 1)``.
        """
        raw = self.backoff_base_s * self.backoff_factor ** (retry_index - 1)
        return min(raw, self.backoff_max_s) * (1.0 + self.jitter * jitter_roll)


class CircuitBreaker:
    """A closed/open/half-open breaker guarding one EMS.

    Closed: commands flow, consecutive failures are counted.  At
    ``threshold`` failures the breaker opens; commands are rejected fast
    until ``cooldown_s`` has passed, then one half-open probe is let
    through.  A successful probe closes the breaker; a failed one
    re-opens it for another cooldown.
    """

    def __init__(self, threshold: int = 4, cooldown_s: float = 120.0) -> None:
        if threshold < 1:
            raise ConfigurationError(f"threshold must be >= 1, got {threshold}")
        if cooldown_s <= 0:
            raise ConfigurationError(f"cooldown_s must be > 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None

    def allow(self, now: float) -> bool:
        """May a command proceed at sim time ``now``?

        An open breaker past its cooldown moves to half-open and lets
        the probe through.
        """
        if self.state == "open":
            if self.opened_at is not None and now >= self.opened_at + self.cooldown_s:
                self.state = "half_open"
                return True
            return False
        return True

    def record_success(self) -> None:
        """A command completed; close the breaker and reset the count."""
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self, now: float) -> bool:
        """A command failed; returns True when this opens the breaker."""
        self.consecutive_failures += 1
        if self.state == "half_open" or self.consecutive_failures >= self.threshold:
            was_open = self.state == "open"
            self.state = "open"
            self.opened_at = now
            return not was_open
        return False

    def retry_after(self, now: float) -> float:
        """Sim-seconds until an open breaker will probe (0 if not open)."""
        if self.state != "open" or self.opened_at is None:
            return 0.0
        return max(0.0, self.opened_at + self.cooldown_s - now)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state}, "
            f"failures={self.consecutive_failures}/{self.threshold})"
        )


class ResilientExecutor:
    """Runs EMS commands under a retry policy against a fault plan."""

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        policy: Optional[RetryPolicy] = None,
        streams: Optional[RandomStreams] = None,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.policy = policy if policy is not None else RetryPolicy()
        self._streams = streams
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._metrics = metrics
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, ems: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding ``ems``."""
        breaker = self._breakers.get(ems)
        if breaker is None:
            breaker = CircuitBreaker(
                self.policy.breaker_threshold, self.policy.breaker_cooldown_s
            )
            self._breakers[ems] = breaker
        return breaker

    def breaker_state(self, ems: str) -> str:
        """``closed`` / ``open`` / ``half_open`` without creating one."""
        breaker = self._breakers.get(ems)
        return breaker.state if breaker is not None else "closed"

    def _inc(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.inc(name)

    def _jitter_roll(self, ems: str) -> float:
        if self._streams is None or self.policy.jitter == 0.0:
            return 0.0
        return self._streams.uniform(f"jitter:{ems}", 0.0, 1.0)

    def execute(
        self,
        ems: str,
        element: str,
        command: str,
        duration: float,
        parent_span: Span = NULL_SPAN,
        best_effort: bool = False,
    ) -> Generator[float, None, float]:
        """Run one EMS command; yields sim-time costs, returns the total.

        Args:
            ems: The EMS executing the command (breaker + fault scope).
            element: The element label the command addresses.
            command: The command stage name (``tune``, ``roadm``, ...).
            duration: The command's nominal sim-time duration.
            parent_span: Trace span the retry children nest under.
            best_effort: Swallow final failure (teardown paths) — the
                command is forced through after exhausting retries so
                resource release always completes.

        Raises:
            CommandFailedError: retries exhausted or hard element fault
                (never when ``best_effort``).
        """
        if self.plan.empty:
            yield duration
            return duration

        elapsed = 0.0
        last_error: Optional[EquipmentError] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            now = self._clock()
            breaker = self.breaker(ems)
            if not breaker.allow(now):
                last_error = CircuitBreakerOpenError(
                    f"{ems} circuit breaker open "
                    f"({breaker.retry_after(now):.0f}s until probe); "
                    f"rejected {command} at {element}",
                    site=element,
                    element=element,
                    command=command,
                )
                self._inc("ems.breaker.rejected")
                self._inc(f"ems.breaker.rejected.{ems}")
            else:
                if breaker.state == "half_open":
                    self._inc("ems.breaker.half_open")
                fault = self.plan.decide(ems, element, command, now)
                if fault is None:
                    yield duration
                    elapsed += duration
                    breaker.record_success()
                    return elapsed
                last_error = self._apply_fault(fault, ems, element, command)
                cost = (
                    self.policy.timeout_s
                    if fault.mode in ("timeout", "stuck")
                    else fault.error_after_s
                )
                if cost > 0:
                    yield cost
                    elapsed += cost
                if breaker.record_failure(self._clock()):
                    self._inc("ems.breaker.open")
                    self._inc(f"ems.breaker.open.{ems}")
                if isinstance(last_error, CommandFailedError) and not last_error.retryable:
                    break
            if attempt < self.policy.max_attempts:
                self._inc("ems.retry")
                self._inc(f"ems.retry.{ems}")
                backoff = self.policy.backoff_delay(attempt, self._jitter_roll(ems))
                with parent_span.child(
                    "ems.retry",
                    attempt=attempt,
                    error=type(last_error).__name__,
                ):
                    if backoff > 0:
                        yield backoff
                        elapsed += backoff

        self._inc("ems.command.failed")
        self._inc(f"ems.command.failed.{ems}")
        if best_effort:
            self._inc("ems.command.forced")
            return elapsed
        if isinstance(last_error, CommandFailedError):
            raise last_error
        raise CommandFailedError(
            f"{command} at {element} failed after "
            f"{self.policy.max_attempts} attempt(s): {last_error}",
            site=element,
            element=element,
            command=command,
            attempts=self.policy.max_attempts,
        ) from last_error

    def _apply_fault(
        self, fault: FaultSpec, ems: str, element: str, command: str
    ) -> EquipmentError:
        """The error a decided fault manifests as."""
        self._inc("faults.injected")
        self._inc(f"faults.injected.{fault.mode}")
        if fault.mode in ("timeout", "stuck"):
            return CommandTimeoutError(
                f"{command} at {element} timed out after "
                f"{self.policy.timeout_s:.0f}s ({ems} {fault.mode})",
                site=element,
                element=element,
                command=command,
            )
        if fault.mode == "fail":
            return CommandFailedError(
                f"{command} at {element} failed hard ({ems} element failure)",
                site=element,
                element=element,
                command=command,
                attempts=1,
                retryable=False,
            )
        return EquipmentError(
            f"{command} at {element} rejected (transient {ems} error)",
            site=element,
            element=element,
            command=command,
        )
