"""A NetStitcher-style store-and-forward bulk scheduler.

NetStitcher (Laoutaris et al., SIGCOMM 2011) moves bulk data over the
*leftover* capacity of existing links, buffering at intermediate data
centers so each hop progresses independently whenever it has spare
bandwidth.  It needs no new capacity — the trade-off against BoD is
completion time: leftover bandwidth is scarce exactly when links are
busy.  This model schedules one transfer over piecewise-constant hourly
leftover profiles.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.units import HOUR


class StoreForwardScheduler:
    """Completion-time computation for store-and-forward bulk transfers.

    Args:
        leftover_profiles: hop key -> hourly leftover bandwidth (bps),
            repeating daily.  Hop keys are arbitrary labels; a path is a
            sequence of hop keys.
    """

    def __init__(self, leftover_profiles: Dict[str, Sequence[float]]) -> None:
        if not leftover_profiles:
            raise ConfigurationError("need at least one hop profile")
        for hop, profile in leftover_profiles.items():
            if not profile:
                raise ConfigurationError(f"hop {hop!r} has an empty profile")
            if any(b < 0 for b in profile):
                raise ConfigurationError(f"hop {hop!r} has negative bandwidth")
        self._profiles = {
            hop: list(profile) for hop, profile in leftover_profiles.items()
        }

    def hop_completion_time(
        self, hop: str, volume_bits: float, start_s: float = 0.0
    ) -> float:
        """Seconds (from ``start_s``) for one hop to move ``volume_bits``.

        Walks the hop's hourly leftover profile, draining the volume.

        Raises:
            ConfigurationError: for an unknown hop or negative volume.
            ValueError: if the profile is all-zero (never completes).
        """
        if volume_bits < 0:
            raise ConfigurationError("volume must be >= 0")
        profile = self._profiles.get(hop)
        if profile is None:
            raise ConfigurationError(f"unknown hop {hop!r}")
        if volume_bits == 0:
            return 0.0
        if not any(profile):
            raise ValueError(f"hop {hop!r} has no leftover bandwidth at all")
        remaining = volume_bits
        elapsed = 0.0
        hour_index = int(start_s // HOUR)
        # First, the partial hour we start in.
        offset = start_s - hour_index * HOUR
        while remaining > 0:
            bandwidth = profile[hour_index % len(profile)]
            available_s = HOUR - offset
            capacity = bandwidth * available_s
            if capacity >= remaining and bandwidth > 0:
                elapsed += remaining / bandwidth
                return elapsed
            remaining -= capacity
            elapsed += available_s
            hour_index += 1
            offset = 0.0
        return elapsed

    def path_completion_time(
        self, path: List[str], volume_bits: float, start_s: float = 0.0
    ) -> float:
        """Store-and-forward completion over a multi-hop path.

        With unlimited intermediate buffering, each hop can run whenever
        it has leftover bandwidth, but hop ``i+1`` can finish no earlier
        than hop ``i`` (the last byte must traverse hops in order).  We
        model that as sequential last-byte propagation: hop ``i+1``'s
        clock starts when hop ``i`` finishes its last byte is a safe
        upper bound; the classic store-and-forward bound instead lets
        hops overlap fully except for the last byte, so we use
        ``max`` of per-hop times plus a small per-hop serialization and
        report the tighter of the two bounds.
        """
        if not path:
            raise ConfigurationError("path must not be empty")
        # Fully-overlapped bound: every hop works in parallel on the
        # stream; completion is set by the slowest hop.
        overlapped = max(
            self.hop_completion_time(hop, volume_bits, start_s) for hop in path
        )
        # Sequential bound: each hop starts after the previous finishes.
        clock = start_s
        for hop in path:
            clock += self.hop_completion_time(hop, volume_bits, clock)
        sequential = clock - start_s
        # True store-and-forward lies between; return the overlapped
        # bound (NetStitcher's buffering realizes it to first order).
        return min(overlapped + 0.0, sequential) if len(path) == 1 else overlapped

    def best_path_completion(
        self,
        paths: List[List[str]],
        volume_bits: float,
        start_s: float = 0.0,
    ) -> Tuple[List[str], float]:
        """The fastest of several candidate paths and its completion time.

        Raises:
            ConfigurationError: for an empty candidate list.
        """
        if not paths:
            raise ConfigurationError("need at least one candidate path")
        best_path = None
        best_time = float("inf")
        for path in paths:
            t = self.path_completion_time(path, volume_bits, start_s)
            if t < best_time:
                best_time = t
                best_path = path
        return best_path, best_time
