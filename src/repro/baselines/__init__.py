"""Comparison systems: how things work *without* GRIPhoN.

Table 1 compares GRIPhoN against today's reality on four dimensions;
these baselines make that column executable:

* :mod:`repro.baselines.manual_ops` — weeks-long manual provisioning and
  4–12 hour manual restoration;
* :mod:`repro.baselines.protection` — 1+1 protection: millisecond
  switchover at double the resource cost;
* :mod:`repro.baselines.static_provisioning` — peak-provisioned leased
  lines (the economics comparator for BoD);
* :mod:`repro.baselines.store_forward` — a NetStitcher-style store-and-
  forward bulk scheduler over *existing* leftover capacity.
"""

from repro.baselines.manual_ops import ManualOperations
from repro.baselines.protection import OnePlusOneProtection
from repro.baselines.static_provisioning import StaticProvisioningPlan
from repro.baselines.store_forward import StoreForwardScheduler

__all__ = [
    "ManualOperations",
    "OnePlusOneProtection",
    "StaticProvisioningPlan",
    "StoreForwardScheduler",
]
