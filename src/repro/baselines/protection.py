"""1+1 protection: fast but expensive.

The alternative to GRIPhoN restoration is to "buy expensive 1+1
protection where if a primary connection fails, traffic is re-routed to
a backup" (paper §1).  1+1 bridges traffic onto two disjoint paths
permanently: switchover is tens of milliseconds, but every connection
consumes double the transponders and wavelengths for its whole life.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.inventory import InventoryDatabase
from repro.core.provisioning import LightpathProvisioner
from repro.core.rwa import RwaEngine
from repro.errors import ResourceError
from repro.optical.lightpath import Lightpath

#: Tail-end switch time for 1+1 (detection + selector), in seconds.
SWITCHOVER_TIME_S = 0.050


@dataclass
class ProtectedPair:
    """A working/protection lightpath pair carrying one service."""

    working: Lightpath
    protection: Lightpath
    active: str = "working"  # or "protection"

    @property
    def resource_cost_factor(self) -> float:
        """Resource multiplier versus an unprotected connection."""
        return 2.0


class OnePlusOneProtection:
    """Claims and operates 1+1 protected wavelength services."""

    def __init__(
        self,
        inventory: InventoryDatabase,
        rwa: RwaEngine,
        provisioner: LightpathProvisioner,
    ) -> None:
        self._inventory = inventory
        self._rwa = rwa
        self._provisioner = provisioner
        self.pairs: List[ProtectedPair] = []

    def claim_pair(self, source: str, destination: str, rate_bps: float) -> ProtectedPair:
        """Claim SRLG-disjoint working and protection lightpaths.

        Raises:
            NoPathError / WavelengthBlockedError /
            TransponderUnavailableError: if either leg cannot be claimed
            (the working leg is rolled back when the protection leg
            fails, so no resources leak).
        """
        working_plan = self._rwa.plan(source, destination, rate_bps)
        working = self._provisioner.claim(working_plan)
        try:
            protection_plan = self._rwa.plan(
                source, destination, rate_bps, avoid_srlgs_of=working.path
            )
            protection = self._provisioner.claim(protection_plan)
        except Exception:
            self._provisioner.release(working)
            raise
        pair = ProtectedPair(working, protection)
        self.pairs.append(pair)
        return pair

    def on_failure(self, pair: ProtectedPair) -> Optional[float]:
        """Handle a failure of the active leg; returns the outage seconds.

        Returns ``None`` when the standby leg is also down (the rare
        double-failure case 1+1 cannot cover).
        """
        standby = (
            pair.protection if pair.active == "working" else pair.working
        )
        standby_path_up = self._inventory.plant.path_is_up(standby.path)
        if not standby_path_up:
            return None
        pair.active = "protection" if pair.active == "working" else "working"
        return SWITCHOVER_TIME_S

    def release_pair(self, pair: ProtectedPair) -> None:
        """Release both legs of a protected service.

        Raises:
            ResourceError: if the pair is not managed here.
        """
        if pair not in self.pairs:
            raise ResourceError("unknown protected pair")
        self.pairs.remove(pair)
        for lightpath in (pair.working, pair.protection):
            if lightpath.lightpath_id in self._inventory.lightpaths:
                self._provisioner.release(lightpath)

    def total_resource_cost(self) -> int:
        """Transponders consumed by all protected pairs (2x per pair end)."""
        return sum(
            len(pair.working.ot_ids) + len(pair.protection.ot_ids)
            for pair in self.pairs
        )
