"""Manual carrier operations: the "today's reality" column of Table 1.

"Today's backbone optical networks can take several weeks to provision
a customer's private line connection" and unprotected wavelength
restoration means "wait for the carrier to manually restore connections
which means long outage times (4 to 12 hours typically)" (paper §1).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.randomness import RandomStreams
from repro.units import HOUR, WEEK


class ManualOperations:
    """Samples the human-speed timelines of the pre-GRIPhoN world."""

    def __init__(
        self,
        streams: RandomStreams,
        provisioning_weeks_min: float = 2.0,
        provisioning_weeks_max: float = 8.0,
        restoration_hours_min: float = 4.0,
        restoration_hours_max: float = 12.0,
    ) -> None:
        if not 0 < provisioning_weeks_min <= provisioning_weeks_max:
            raise ConfigurationError("bad provisioning-week bounds")
        if not 0 < restoration_hours_min <= restoration_hours_max:
            raise ConfigurationError("bad restoration-hour bounds")
        self._streams = streams
        self._prov_bounds = (provisioning_weeks_min, provisioning_weeks_max)
        self._rest_bounds = (restoration_hours_min, restoration_hours_max)

    def provisioning_time(self) -> float:
        """Seconds to manually provision a private line (weeks)."""
        weeks = self._streams.uniform("manual:provision", *self._prov_bounds)
        return weeks * WEEK

    def restoration_time(self) -> float:
        """Seconds to manually restore an unprotected wavelength (hours)."""
        hours = self._streams.uniform("manual:restore", *self._rest_bounds)
        return hours * HOUR

    def maintenance_impact(self, window_s: float) -> float:
        """Customer-visible outage when maintenance hits a manually-run
        connection: the whole window (nobody moves the traffic first).

        Raises:
            ConfigurationError: for a negative window.
        """
        if window_s < 0:
            raise ConfigurationError(f"window must be >= 0, got {window_s}")
        return window_s
