"""Static peak provisioning: the economics baseline for BoD.

Without BoD a CSP leases a fixed line sized to its *peak* demand, then
pays for that capacity around the clock.  The plan computes the leased
capacity, the capacity-hours billed, and the utilization achieved, so
experiment X4 can put static and BoD provisioning side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.units import GBPS


@dataclass
class StaticProvisioningPlan:
    """A fixed leased line sized against an hourly demand series.

    Attributes:
        demand_series_bps: Hourly demand samples (bps).
        granularity_bps: Leasable capacity increment (whole circuits).
        headroom: Extra fractional margin above peak (carriers rarely
            run leased lines at 100 percent).
    """

    demand_series_bps: List[float]
    granularity_bps: float = 10 * GBPS
    headroom: float = 0.0

    def __post_init__(self) -> None:
        if not self.demand_series_bps:
            raise ConfigurationError("demand series must not be empty")
        if any(d < 0 for d in self.demand_series_bps):
            raise ConfigurationError("demand samples must be >= 0")
        if self.granularity_bps <= 0:
            raise ConfigurationError("granularity must be positive")
        if self.headroom < 0:
            raise ConfigurationError("headroom must be >= 0")

    @property
    def peak_demand_bps(self) -> float:
        """The highest demand sample."""
        return max(self.demand_series_bps)

    @property
    def leased_capacity_bps(self) -> float:
        """Peak demand plus headroom, rounded up to whole circuits."""
        target = self.peak_demand_bps * (1 + self.headroom)
        circuits = math.ceil(target / self.granularity_bps - 1e-9)
        return max(1, circuits) * self.granularity_bps

    def capacity_hours(self) -> float:
        """Capacity-hours billed over the series horizon (bps * hours)."""
        return self.leased_capacity_bps * len(self.demand_series_bps)

    def used_capacity_hours(self) -> float:
        """Demand actually carried (bps * hours)."""
        return sum(self.demand_series_bps)

    def utilization(self) -> float:
        """Carried / billed, in [0, 1]."""
        return self.used_capacity_hours() / self.capacity_hours()

    def stranded_capacity_hours(self) -> float:
        """Paid-for but idle capacity-hours."""
        return self.capacity_hours() - self.used_capacity_hours()
