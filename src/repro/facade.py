"""High-level assembly: ready-to-run GRIPhoN networks.

:class:`GriphonNetwork` wires a topology, equipment inventory, EMS stack,
and controller together.  Two builders cover the paper's scenarios:

* :func:`build_griphon_testbed` — the Fig. 4 laboratory testbed (four
  ROADMs, three customer premises, OTN layer installed);
* :func:`build_griphon_backbone` — the synthetic 12-city backbone with
  five data-center premises, for scaling and planning experiments.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.admission import CustomerProfile
from repro.core.controller import GriphonController
from repro.core.inventory import InventoryDatabase
from repro.core.maintenance import MaintenanceScheduler
from repro.core.service import BodService
from repro.ems.latency import LatencyModel
from repro.errors import ConfigurationError
from repro.faults.plan import DegradationPlan, FaultPlan
from repro.faults.resilient import RetryPolicy
from repro.iplayer.network import IpLayer
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer
from repro.pipeline import OrderPipeline
from repro.optical.osnr import OsnrModel
from repro.optical.wavelength import WavelengthGrid
from repro.sim.kernel import Simulator
from repro.sim.randomness import RandomStreams
from repro.topo.backbone import BACKBONE_DATA_CENTERS, build_backbone_graph
from repro.topo.graph import NetworkGraph
from repro.topo.testbed import TESTBED_PREMISES, TESTBED_ROADMS, build_testbed_graph
from repro.units import GBPS


class SloRuntime:
    """The attached SLO stack: injector, monitor, remediation engine."""

    __slots__ = ("injector", "monitor", "engine")

    def __init__(self, injector, monitor, engine) -> None:
        self.injector = injector
        self.monitor = monitor
        self.engine = engine

    def __repr__(self) -> str:
        return (
            f"SloRuntime(policies={len(self.monitor.policies)}, "
            f"plan={len(self.injector.plan)} specs)"
        )


class GriphonNetwork:
    """A fully assembled GRIPhoN network ready for BoD requests."""

    def __init__(
        self,
        graph: NetworkGraph,
        seed: int = 0,
        grid_size: int = 80,
        latency_cv: Optional[float] = None,
        parallel_ems: bool = False,
        assignment: str = "first-fit",
        auto_restore: bool = True,
        tracing: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        osnr_model: Optional[OsnrModel] = None,
    ) -> None:
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.inventory = InventoryDatabase(graph, WavelengthGrid(grid_size))
        latency_kwargs = {} if latency_cv is None else {"cv": latency_cv}
        self.latency = LatencyModel(self.streams, **latency_kwargs)
        #: Lifecycle tracing and metrics; the tracer reads the sim clock
        #: and is shared with the controller (and every EMS under it).
        self.tracer = Tracer(self.sim.time_source(), enabled=tracing)
        self.metrics = MetricsRegistry()
        self.sim.attach_tracer(self.tracer)
        self._controller_kwargs = dict(
            parallel_ems=parallel_ems,
            assignment=assignment,
            auto_restore=auto_restore,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            osnr_model=osnr_model,
        )
        self.controller: Optional[GriphonController] = None
        self.maintenance: Optional[MaintenanceScheduler] = None
        self.pipeline: Optional[OrderPipeline] = None
        self.frontend = None
        self.slo = None
        self.optimizer = None
        self._services: Dict[str, BodService] = {}

    def finish_build(self) -> "GriphonNetwork":
        """Create the controller once all equipment is installed."""
        self.controller = GriphonController(
            self.sim,
            self.inventory,
            self.streams,
            latency=self.latency,
            tracer=self.tracer,
            metrics=self.metrics,
            **self._controller_kwargs,
        )
        self.maintenance = MaintenanceScheduler(self.controller)
        return self

    def enable_pipeline(
        self,
        capacity: int = 256,
        round_size: int = 8,
        round_interval: float = 0.0,
        max_defers: int = 3,
        seeded_tiebreak: bool = False,
    ) -> OrderPipeline:
        """Attach a concurrent order-intake pipeline to the controller.

        After this, every service handle from :meth:`service_for` can
        ``submit_connection()`` as well as ``request_connection()``.
        See :class:`~repro.pipeline.OrderPipeline` for the parameters.

        Raises:
            ConfigurationError: before :meth:`finish_build`.
        """
        if self.controller is None:
            raise ConfigurationError(
                "finish_build() must run before enable_pipeline()"
            )
        self.pipeline = OrderPipeline(
            self.controller,
            capacity=capacity,
            round_size=round_size,
            round_interval=round_interval,
            max_defers=max_defers,
            seeded_tiebreak=seeded_tiebreak,
        )
        self.controller.pipeline = self.pipeline
        return self.pipeline

    def enable_frontend(
        self,
        queue_capacity: int = 512,
        shed_high: Optional[int] = None,
        shed_low: Optional[int] = None,
        bucket_rate: float = 1.0,
        bucket_burst: float = 8.0,
        pump_interval: float = 0.05,
        premium_tenants: Iterable[str] = (),
        **pipeline_kwargs,
    ):
        """Attach the async service frontend over the order pipeline.

        Enables the pipeline first when it is not already attached
        (``pipeline_kwargs`` are forwarded to :meth:`enable_pipeline`
        in that case).  Returns the :class:`~repro.frontend.BodFrontend`,
        also available as ``net.frontend``.  See
        :class:`~repro.frontend.BodFrontend` for the edge parameters.

        Raises:
            ConfigurationError: before :meth:`finish_build`.
        """
        from repro.frontend.service import BodFrontend

        if self.controller is None:
            raise ConfigurationError(
                "finish_build() must run before enable_frontend()"
            )
        if self.pipeline is None:
            self.enable_pipeline(**pipeline_kwargs)
        elif pipeline_kwargs:
            raise ConfigurationError(
                "pipeline already enabled; pipeline kwargs "
                f"{sorted(pipeline_kwargs)} cannot be applied"
            )
        self.frontend = BodFrontend(
            self.pipeline,
            self.controller.admission,
            self.sim,
            metrics=self.metrics,
            tracer=self.tracer,
            queue_capacity=queue_capacity,
            shed_high=shed_high,
            shed_low=shed_low,
            bucket_rate=bucket_rate,
            bucket_burst=bucket_burst,
            pump_interval=pump_interval,
            premium_tenants=premium_tenants,
        )
        return self.frontend

    def enable_slo(
        self,
        plan: Optional[DegradationPlan] = None,
        policies: Iterable = (),
        sample_interval_s: float = 15.0,
        tick_s: float = 30.0,
        horizon_s: Optional[float] = None,
        violation_threshold_db: float = 0.0,
        audit_each_action: bool = False,
        defer_horizon_s: float = 4 * 3600.0,
        utilization_gate: float = 0.80,
    ):
        """Attach gray-failure injection and SLA-aware remediation.

        Wires a :class:`~repro.slo.inject.DegradationInjector` for
        ``plan``, a :class:`~repro.slo.monitor.SlaMonitor` over
        ``policies``, and a :class:`~repro.slo.engine.RemediationEngine`
        driving the detect → remediate → restore runbook.  Returns the
        :class:`SloRuntime` holder, also available as ``net.slo``.

        An empty plan with no policies schedules **nothing** and returns
        ``None`` — the event stream stays byte-identical to a network
        without the subsystem.

        Args:
            plan: Seeded degradation plan to replay (default empty).
            policies: Declarative :class:`~repro.slo.monitor.SloPolicy`
                objects; see :func:`~repro.slo.monitor.default_policies`.
            sample_interval_s: Monitor sampling cadence, sim seconds.
            tick_s: Injector tick, sim seconds.
            horizon_s: When the monitor stops; defaults to the plan
                horizon plus a 900 s settle tail.
            violation_threshold_db: Margin below which SLA-violation
                minutes accrue.
            audit_each_action: Run the invariant auditor after every
                engine action (the chaos-test oracle).
            defer_horizon_s: Look-ahead for maintenance-window deferral.
            utilization_gate: Reroute only onto paths whose post-claim
                per-link utilization stays below this fraction.

        Raises:
            ConfigurationError: before :meth:`finish_build`.
        """
        from repro.slo import (
            DegradationInjector,
            RemediationEngine,
            SlaMonitor,
        )

        if self.controller is None:
            raise ConfigurationError(
                "finish_build() must run before enable_slo()"
            )
        plan = plan if plan is not None else DegradationPlan()
        policies = tuple(policies)
        if plan.empty and not policies:
            return None
        stop_at = (
            horizon_s if horizon_s is not None else plan.horizon_s + 900.0
        )
        injector = DegradationInjector(self.controller, plan, tick_s=tick_s)
        monitor = SlaMonitor(
            self.controller,
            policies=policies,
            sample_interval_s=sample_interval_s,
            stop_at=stop_at,
            violation_threshold_db=violation_threshold_db,
        )
        engine = RemediationEngine(
            self.controller,
            monitor,
            maintenance=self.maintenance,
            utilization_gate=utilization_gate,
            defer_horizon_s=defer_horizon_s,
            audit_each_action=audit_each_action,
        )
        injector.start()
        monitor.start()
        self.slo = SloRuntime(injector, monitor, engine)
        return self.slo

    def enable_optimize(
        self,
        k_paths: int = 4,
        max_passes: int = 4,
        min_gain: float = 1e-6,
        channel_weight: float = 0.005,
        max_moves: Optional[int] = None,
        audit_each_move: bool = True,
        interval_s: Optional[float] = None,
        slo_coupled: bool = True,
    ):
        """Attach the global re-optimization driver.

        Returns a :class:`~repro.optimize.Reoptimizer` (also available
        as ``net.optimizer``) whose cycles snapshot the network, plan a
        global migration, and execute it via bridge-and-roll.  When the
        SLO subsystem is enabled (and ``slo_coupled``), breached and
        gray-degraded links feed cost penalties into the planner.

        Args:
            k_paths / max_passes / min_gain / channel_weight / max_moves:
                Planner knobs; see
                :func:`~repro.optimize.plan_migrations`.
            audit_each_move: Run the invariant auditor after every
                executed move (the migration-safety oracle).
            interval_s: When set, run a cycle every this many
                sim-seconds (``Reoptimizer.start``); by default cycles
                run only on demand.
            slo_coupled: Feed the SLO breach stream into link costs.

        Raises:
            ConfigurationError: before :meth:`finish_build`.
        """
        from repro.optimize import Reoptimizer

        if self.controller is None:
            raise ConfigurationError(
                "finish_build() must run before enable_optimize()"
            )
        engine = None
        if slo_coupled and self.slo is not None:
            engine = self.slo.engine
        self.optimizer = Reoptimizer(
            self.controller,
            slo_engine=engine,
            k_paths=k_paths,
            max_passes=max_passes,
            min_gain=min_gain,
            channel_weight=channel_weight,
            max_moves=max_moves,
            audit_each_move=audit_each_move,
        )
        if interval_s is not None:
            self.optimizer.start(interval_s)
        return self.optimizer

    def service_for(
        self,
        customer: str,
        premises: Iterable[str] = (),
        max_connections: int = 16,
        max_total_rate_gbps: float = 400.0,
    ) -> BodService:
        """The BoD service handle for ``customer``, registering if new."""
        if customer not in self._services:
            self.controller.register_customer(
                CustomerProfile(
                    customer,
                    max_connections=max_connections,
                    max_total_rate_bps=max_total_rate_gbps * GBPS,
                    premises=list(premises),
                )
            )
            self._services[customer] = BodService(self.controller, customer)
        return self._services[customer]

    def run(self, until: Optional[float] = None) -> int:
        """Advance the simulation; returns the number of events fired."""
        return self.sim.run(until=until)


def _attach_ip_layer(net: GriphonNetwork) -> None:
    """Overlay an IP layer: a router per core node, one adjacency per
    core fiber span (conceptually riding statically provisioned
    wavelengths), 10G capacity with 2x committed-rate oversubscription.
    """
    ip = IpLayer()
    graph = net.inventory.graph
    core_nodes = [node.name for node in graph.nodes if node.kind == "roadm"]
    for node in core_nodes:
        ip.add_router(node)
    for link in graph.links:
        if link.a in core_nodes and link.b in core_nodes:
            ip.add_adjacency(link.a, link.b, capacity_bps=10 * GBPS)
    net.controller.ip_layer = ip


def build_griphon_testbed(
    seed: int = 0,
    with_otn: bool = True,
    with_ip: bool = True,
    latency_cv: Optional[float] = None,
    parallel_ems: bool = False,
    assignment: str = "first-fit",
    auto_restore: bool = True,
    tracing: bool = False,
    ots_per_node_10g: int = 8,
    ots_per_node_40g: int = 2,
    nte_interfaces: int = 4,
    grid_size: int = 80,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    osnr_model: Optional[OsnrModel] = None,
) -> GriphonNetwork:
    """Build the paper's Fig. 4 laboratory testbed.

    Four ROADMs (two 3-degree, two 2-degree), wavelength-tunable OTs at
    the add/drop ports, client-side FXCs for dynamic OT/regen sharing,
    three customer premises with NTEs (four 10G interfaces each, like
    the 10G/40G muxponders), and — unless ``with_otn`` is False — OTN
    switches at every core PoP.
    """
    net = GriphonNetwork(
        build_testbed_graph(),
        seed=seed,
        grid_size=grid_size,
        latency_cv=latency_cv,
        parallel_ems=parallel_ems,
        assignment=assignment,
        auto_restore=auto_restore,
        tracing=tracing,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        osnr_model=osnr_model,
    )
    inv = net.inventory
    for node in TESTBED_ROADMS:
        inv.install_roadm(node, add_drop_ports=16)
        inv.install_transponders(node, 10 * GBPS, ots_per_node_10g)
        inv.install_transponders(node, 40 * GBPS, ots_per_node_40g)
        inv.install_regens(node, 10 * GBPS, 2)
        inv.install_fxc(node, port_count=32)
        if with_otn:
            inv.install_otn_switch(node, client_ports=32)
    for premises, pop in TESTBED_PREMISES.items():
        inv.install_nte(premises, pop, interface_rate_bps=10 * GBPS,
                        interface_count=nte_interfaces)
        inv.install_fxc(premises, port_count=16)
    net.finish_build()
    if with_ip:
        _attach_ip_layer(net)
    return net


def build_griphon_backbone(
    seed: int = 0,
    with_otn: bool = True,
    with_ip: bool = True,
    latency_cv: Optional[float] = None,
    parallel_ems: bool = False,
    assignment: str = "first-fit",
    auto_restore: bool = True,
    tracing: bool = False,
    ots_per_node_10g: int = 12,
    ots_per_node_40g: int = 6,
    regens_per_hub: int = 6,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    osnr_model: Optional[OsnrModel] = None,
) -> GriphonNetwork:
    """Build the synthetic 12-city backbone with five data centers."""
    net = GriphonNetwork(
        build_backbone_graph(),
        seed=seed,
        grid_size=80,
        latency_cv=latency_cv,
        parallel_ems=parallel_ems,
        assignment=assignment,
        auto_restore=auto_restore,
        tracing=tracing,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        osnr_model=osnr_model,
    )
    inv = net.inventory
    hubs = {"CHI", "STL", "DEN", "DFW", "ATL"}
    from repro.topo.backbone import BACKBONE_CITIES

    for city in BACKBONE_CITIES:
        inv.install_roadm(city, add_drop_ports=24)
        inv.install_transponders(city, 10 * GBPS, ots_per_node_10g)
        inv.install_transponders(city, 40 * GBPS, ots_per_node_40g)
        regen_count = regens_per_hub if city in hubs else 2
        inv.install_regens(city, 10 * GBPS, regen_count)
        inv.install_regens(city, 40 * GBPS, regen_count)
        inv.install_fxc(city, port_count=64)
        if with_otn:
            inv.install_otn_switch(city, client_ports=64)
    for dc, pop in BACKBONE_DATA_CENTERS.items():
        inv.install_nte(dc, pop, interface_rate_bps=10 * GBPS, interface_count=8)
        inv.install_fxc(dc, port_count=16)
    net.finish_build()
    if with_ip:
        _attach_ip_layer(net)
    return net
