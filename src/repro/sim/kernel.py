"""The discrete-event simulator: a virtual clock plus an event heap.

The kernel is the hot path of every experiment — a month-long
availability study fires hundreds of thousands of events — so
:meth:`Simulator.run` keeps its inner loop tight: the heap and
``heappop`` are bound to locals, fired events bypass the defensive
re-checks of :meth:`Event.fire`, and canceled events are compacted out
of the heap wholesale once they dominate it instead of being popped one
at a time.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.events import Event

#: Canceled events are compacted out of the heap only past this size, so
#: small simulations never pay the (cheap) rebuild.
_COMPACT_MIN_CANCELED = 64


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(5.0, do_something, "arg")
        sim.run(until=100.0)

    Events with equal timestamps fire in the order they were scheduled.
    Time never moves backwards; scheduling into the past raises
    :class:`~repro.errors.SimulationError`.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._seq = 0
        self._heap: List[Event] = []
        self._pending = 0
        self._canceled_in_heap = 0
        self._running = False
        self._trace: List[Tuple[float, str]] = []
        self._trace_enabled = False
        self._tracer: Optional[Any] = None
        self._time_source: Optional[Callable[[], float]] = None

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def time_source(self) -> Callable[[], float]:
        """A zero-argument callable reading this simulator's clock.

        The canonical way to hand the clock to components — like the
        :class:`~repro.obs.trace.Tracer` — that need the current sim
        time without holding the whole simulator.  One closure is
        created per simulator and returned on every call, so handing
        the clock to N components costs one allocation, not N.
        """
        source = self._time_source
        if source is None:

            def source() -> float:
                return self._now

            self._time_source = source
        return source

    # -- observability -------------------------------------------------------

    @property
    def tracer(self) -> Optional[Any]:
        """The attached span tracer, or ``None``."""
        return self._tracer

    def attach_tracer(self, tracer: Any) -> None:
        """Attach a :class:`~repro.obs.trace.Tracer` to this simulator.

        The kernel itself never writes spans; the attachment gives
        processes and components driven by this simulator one shared
        place to discover the tracer.
        """
        self._tracer = tracer

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-canceled events in the queue.

        Maintained as a live counter (decremented on cancel and fire)
        rather than an O(n) scan of the heap.
        """
        return self._pending

    def _event_canceled(self) -> None:
        self._pending -= 1
        canceled = self._canceled_in_heap + 1
        self._canceled_in_heap = canceled
        if canceled >= _COMPACT_MIN_CANCELED and canceled * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop canceled events from the heap and restore heap order.

        Rebuilds *in place* (slice assignment) so that a ``run`` loop
        holding a local reference to the heap keeps seeing the live
        structure even when a callback's cancellations trigger
        compaction mid-run.
        """
        heap = self._heap
        heap[:] = [event for event in heap if not event._canceled]
        heapq.heapify(heap)
        self._canceled_in_heap = 0

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, which the caller may cancel.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``.

        Raises:
            SimulationError: if ``time`` is before the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time, self._seq, callback, args, label, self._event_canceled)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._pending += 1
        return event

    def schedule_many(
        self,
        entries: Iterable[Sequence[Any]],
    ) -> List[Event]:
        """Batch-schedule events at absolute times.

        Each entry is ``(time, callback)``, ``(time, callback, args)``,
        or ``(time, callback, args, label)`` with ``args`` a tuple.
        Sequence numbers are assigned in iteration order, so the FIFO
        tiebreak among equal timestamps matches an equivalent series of
        :meth:`schedule_at` calls exactly.

        Large batches are merged with one O(n) ``heapify`` instead of
        n ``heappush`` calls — this is the API the workload generators
        and the scenario runner use to pre-load entire timelines.

        Raises:
            SimulationError: if any entry's time is before the clock
                (no events from the batch are scheduled in that case).
        """
        now = self._now
        seq = self._seq
        on_cancel = self._event_canceled
        events: List[Event] = []
        for entry in entries:
            time = entry[0]
            if time < now:
                raise SimulationError(
                    f"cannot schedule at t={time} before current time t={now}"
                )
            args = entry[2] if len(entry) > 2 else ()
            label = entry[3] if len(entry) > 3 else ""
            events.append(Event(time, seq, entry[1], args, label, on_cancel))
            seq += 1
        if not events:
            return events
        self._seq = seq
        heap = self._heap
        if len(events) < 8 or len(events) * 4 < len(heap):
            for event in events:
                heapq.heappush(heap, event)
        else:
            heap.extend(events)
            heapq.heapify(heap)
        self._pending += len(events)
        return events

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event._canceled:
                self._canceled_in_heap -= 1
                continue
            self._now = event.time
            if self._trace_enabled and event.label:
                self._trace.append((self._now, event.label))
            self._pending -= 1
            event.fire()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Run events until the queue drains or the clock passes ``until``.

        Args:
            until: Stop once the next event is later than this time; the
                clock is then advanced to exactly ``until``.  ``None`` means
                run to exhaustion.
            max_events: Safety valve against runaway event loops.

        Returns:
            The number of events fired.

        Raises:
            SimulationError: on re-entrant ``run`` or if ``max_events`` is hit.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        # The inner loop is the hottest code in the repository: bind the
        # heap and heappop to locals and fire events inline (the
        # canceled re-check of Event.fire is redundant here — nothing
        # can cancel the head between the pop and the call below).
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        try:
            while heap:
                head = heap[0]
                if head._canceled:
                    pop(heap)
                    self._canceled_in_heap -= 1
                    continue
                if until is not None and head.time > until:
                    break
                if fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event loop?"
                    )
                pop(heap)
                self._now = head.time
                self._pending -= 1
                if self._trace_enabled and head.label:
                    self._trace.append((head.time, head.label))
                head._fired = True
                head.callback(*head.args)
                fired += 1
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until
        return fired

    # -- tracing ------------------------------------------------------------

    def enable_trace(self) -> None:
        """Record ``(time, label)`` for every labeled event that fires."""
        self._trace_enabled = True

    @property
    def trace(self) -> List[Tuple[float, str]]:
        """The recorded trace (empty unless :meth:`enable_trace` was called)."""
        return list(self._trace)
