"""The discrete-event simulator: a virtual clock plus an event heap."""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import Event


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(5.0, do_something, "arg")
        sim.run(until=100.0)

    Events with equal timestamps fire in the order they were scheduled.
    Time never moves backwards; scheduling into the past raises
    :class:`~repro.errors.SimulationError`.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._seq = 0
        self._heap: List[Event] = []
        self._pending = 0
        self._running = False
        self._trace: List[Tuple[float, str]] = []
        self._trace_enabled = False
        self._tracer: Optional[Any] = None

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def time_source(self) -> Callable[[], float]:
        """A zero-argument callable reading this simulator's clock.

        The canonical way to hand the clock to components — like the
        :class:`~repro.obs.trace.Tracer` — that need the current sim
        time without holding the whole simulator.
        """
        return lambda: self._now

    # -- observability -------------------------------------------------------

    @property
    def tracer(self) -> Optional[Any]:
        """The attached span tracer, or ``None``."""
        return self._tracer

    def attach_tracer(self, tracer: Any) -> None:
        """Attach a :class:`~repro.obs.trace.Tracer` to this simulator.

        The kernel itself never writes spans; the attachment gives
        processes and components driven by this simulator one shared
        place to discover the tracer.
        """
        self._tracer = tracer

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-canceled events in the queue.

        Maintained as a live counter (decremented on cancel and fire)
        rather than an O(n) scan of the heap.
        """
        return self._pending

    def _event_canceled(self) -> None:
        self._pending -= 1

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, which the caller may cancel.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``.

        Raises:
            SimulationError: if ``time`` is before the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time, self._seq, callback, args, label, self._event_canceled)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._pending += 1
        return event

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.canceled:
                continue
            self._now = event.time
            if self._trace_enabled and event.label:
                self._trace.append((self._now, event.label))
            self._pending -= 1
            event.fire()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Run events until the queue drains or the clock passes ``until``.

        Args:
            until: Stop once the next event is later than this time; the
                clock is then advanced to exactly ``until``.  ``None`` means
                run to exhaustion.
            max_events: Safety valve against runaway event loops.

        Returns:
            The number of events fired.

        Raises:
            SimulationError: on re-entrant ``run`` or if ``max_events`` is hit.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                head = self._heap[0]
                if head.canceled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                if fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event loop?"
                    )
                self.step()
                fired += 1
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until
        return fired

    # -- tracing ------------------------------------------------------------

    def enable_trace(self) -> None:
        """Record ``(time, label)`` for every labeled event that fires."""
        self._trace_enabled = True

    @property
    def trace(self) -> List[Tuple[float, str]]:
        """The recorded trace (empty unless :meth:`enable_trace` was called)."""
        return list(self._trace)
