"""Generator-based processes on top of the event kernel.

A :class:`Process` wraps a Python generator that models a multi-step
activity.  The generator yields the number of simulated seconds to wait
before its next step::

    def setup_workflow(sim):
        yield 2.0          # EMS accepts the order
        yield 30.0         # laser tuning
        yield 25.0         # power balancing
        print("up at", sim.now)

    Process(sim, setup_workflow(sim))

This style keeps multi-step element configuration sequences readable while
remaining fully deterministic under the kernel's FIFO tiebreak.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class Process:
    """Drives a generator of delays on a :class:`Simulator`.

    The process starts automatically: its first step is scheduled at the
    current simulation time.  When the generator returns, the process is
    marked done and the optional ``on_complete`` callback fires with the
    generator's return value (``None`` unless it used ``return value``).

    A process may carry a tracing ``span`` (see
    :class:`~repro.obs.trace.Span`): the process finishes the span when
    the generator completes, and tags it ``interrupted`` if the process
    is stopped early — so a span handed to a process always closes,
    whatever the workflow's fate.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[float, None, Any],
        on_complete: Optional[Callable[[Any], None]] = None,
        label: str = "",
        span: Optional[Any] = None,
    ) -> None:
        self._sim = sim
        self._generator = generator
        self._on_complete = on_complete
        self._label = label or getattr(generator, "__name__", "process")
        self._done = False
        self._interrupted = False
        self._result: Any = None
        self._span = span
        self._pending_event = sim.schedule(0.0, self._advance, label=self._label)

    @property
    def done(self) -> bool:
        """True once the generator has finished (or was interrupted)."""
        return self._done

    @property
    def interrupted(self) -> bool:
        """True if :meth:`interrupt` stopped the process early."""
        return self._interrupted

    @property
    def result(self) -> Any:
        """The generator's return value; ``None`` until done."""
        return self._result

    def interrupt(self) -> None:
        """Stop the process before its next step.

        The generator is closed, so its ``finally`` blocks run.  A finished
        process cannot be interrupted.
        """
        if self._done:
            raise SimulationError(f"process {self._label!r} already finished")
        self._pending_event.cancel()
        self._generator.close()
        self._done = True
        self._interrupted = True
        if self._span is not None:
            self._span.set_tag("interrupted", True)
            self._span.finish()

    def _advance(self) -> None:
        try:
            delay = next(self._generator)
        except StopIteration as stop:
            self._done = True
            self._result = stop.value
            if self._span is not None:
                self._span.finish()
            if self._on_complete is not None:
                self._on_complete(stop.value)
            return
        if not isinstance(delay, (int, float)) or delay < 0:
            self._generator.close()
            self._done = True
            if self._span is not None:
                self._span.set_tag("error", "invalid-delay")
                self._span.finish()
            raise SimulationError(
                f"process {self._label!r} yielded invalid delay {delay!r}"
            )
        self._pending_event = self._sim.schedule(
            float(delay), self._advance, label=self._label
        )
