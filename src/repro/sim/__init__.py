"""Deterministic discrete-event simulation kernel.

The whole GRIPhoN reproduction runs on this kernel: network elements,
EMS latency models, controllers, workloads, and failure injectors all
schedule callbacks on a shared :class:`~repro.sim.kernel.Simulator`.

The kernel is deliberately small and deterministic:

* events at equal timestamps fire in scheduling order (a strict FIFO
  tiebreak), so runs are reproducible;
* randomness is confined to :class:`~repro.sim.randomness.RandomStreams`,
  which derives independent named substreams from one master seed;
* generator-based :class:`~repro.sim.process.Process` objects provide a
  convenient coroutine style for multi-step activities (yield a delay,
  resume later).
"""

from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.randomness import RandomStreams

__all__ = ["Event", "Simulator", "Process", "RandomStreams"]
