"""Event objects managed by the simulation kernel."""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
    increasing counter assigned at scheduling time, giving deterministic
    FIFO ordering among simultaneous events.

    Attributes:
        time: Simulation time at which the event fires.
        seq: Scheduling sequence number (tiebreak for equal times).
        callback: Callable invoked when the event fires.
        args: Positional arguments passed to the callback.
        label: Optional human-readable tag used in traces.
    """

    __slots__ = (
        "time",
        "seq",
        "callback",
        "args",
        "label",
        "_canceled",
        "_fired",
        "_on_cancel",
    )

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        label: str = "",
        on_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self._canceled = False
        self._fired = False
        self._on_cancel = on_cancel

    @property
    def canceled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._canceled

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once.

        The first cancellation of a not-yet-fired event notifies the
        owning kernel (via ``on_cancel``) so it can keep its live
        pending count without scanning the heap.
        """
        if self._canceled:
            return
        self._canceled = True
        if not self._fired and self._on_cancel is not None:
            self._on_cancel()

    def fire(self) -> None:
        """Invoke the callback unless the event was canceled."""
        if not self._canceled:
            self._fired = True
            self.callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "canceled" if self._canceled else "pending"
        name = self.label or getattr(self.callback, "__name__", "callback")
        return f"Event(t={self.time:.6g}, seq={self.seq}, {name}, {state})"
