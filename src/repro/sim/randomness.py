"""Seeded, named random substreams for reproducible experiments.

Every stochastic component in the reproduction (EMS step latencies,
workload arrivals, failure injection) draws from its own named substream,
so adding randomness to one component never perturbs another — a property
the calibration experiments rely on.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, Sequence, TypeVar

T = TypeVar("T")


class RandomStreams:
    """A family of independent :class:`random.Random` streams.

    Each stream is identified by a string name and seeded from the master
    seed combined with a stable hash of the name, so the mapping from
    ``(master_seed, name)`` to a stream is deterministic across runs and
    Python processes (``hash()`` randomization does not affect it).
    """

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        """The seed from which every substream is derived."""
        return self._master_seed

    def spawn(self, key: str) -> "RandomStreams":
        """Derive an independent child family of streams.

        The child's master seed is a stable hash of ``(master_seed,
        key)`` — deterministic across processes, like the substream
        derivation — so a sweep can hand every trial its own
        ``RandomStreams`` universe: trials with distinct keys never
        share a stream with each other or with the parent.

        Note the domain separation (``"spawn:"`` prefix): a spawned
        child's master seed can never collide with a sibling substream
        seed for the same key.
        """
        digest = hashlib.sha256(
            f"spawn:{self._master_seed}:{key}".encode("utf-8")
        ).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the substream for ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(
            f"{self._master_seed}:{name}".encode("utf-8")
        ).digest()
        seed = int.from_bytes(digest[:8], "big")
        created = random.Random(seed)
        self._streams[name] = created
        return created

    # -- distribution helpers ------------------------------------------------

    def lognormal(self, name: str, mean: float, cv: float) -> float:
        """Draw a lognormal sample with the given *arithmetic* mean.

        Args:
            name: Substream name.
            mean: Desired arithmetic mean of the distribution (must be > 0).
            cv: Coefficient of variation (stddev / mean, must be >= 0).

        A ``cv`` of 0 returns ``mean`` exactly, which lets latency models be
        made deterministic for calibration tests.
        """
        if mean <= 0:
            raise ValueError(f"lognormal mean must be positive, got {mean}")
        if cv < 0:
            raise ValueError(f"coefficient of variation must be >= 0, got {cv}")
        if cv == 0:
            return mean
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        return self.stream(name).lognormvariate(mu, math.sqrt(sigma2))

    def exponential(self, name: str, mean: float) -> float:
        """Draw an exponential sample with the given mean (> 0)."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw uniformly from ``[low, high]``."""
        if high < low:
            raise ValueError(f"uniform bounds out of order: [{low}, {high}]")
        return self.stream(name).uniform(low, high)

    def pareto(self, name: str, shape: float, scale: float) -> float:
        """Draw from a Pareto distribution (heavy-tailed transfer sizes).

        Returns ``scale * X`` where ``X`` is standard Pareto with the given
        shape.  Shape and scale must be positive.
        """
        if shape <= 0 or scale <= 0:
            raise ValueError(
                f"pareto shape and scale must be positive, got {shape}, {scale}"
            )
        return scale * self.stream(name).paretovariate(shape)

    def choice(self, name: str, options: Sequence[T]) -> T:
        """Pick one element of ``options`` uniformly at random."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        return self.stream(name).choice(list(options))
