"""GRIPhoN: bandwidth on demand for inter-data center communication.

A full reproduction (in simulation) of the HotNets 2011 paper by
Mahimkar et al. (AT&T Labs Research).  The package provides:

* ``repro.sim`` — deterministic discrete-event simulation kernel;
* ``repro.topo`` — network graphs, the Fig. 4 testbed, a synthetic backbone;
* ``repro.optical`` — the DWDM layer: ROADMs, transponders, FXCs, reach;
* ``repro.otn`` — the OTN sub-wavelength layer (ODU switching, mesh
  restoration);
* ``repro.legacy`` — today's SONET / W-DCS layers for baselines;
* ``repro.ems`` — element-management latency models (the source of the
  paper's 60–70 s connection setup times);
* ``repro.core`` — the GRIPhoN controller and the customer-facing
  bandwidth-on-demand service API (the paper's contribution);
* ``repro.workload`` / ``repro.baselines`` / ``repro.metrics`` — traffic
  generators, comparison systems, and measurement utilities.

Quickstart::

    from repro import build_griphon_testbed

    net = build_griphon_testbed(seed=1)
    service = net.service_for("csp-alpha")
    conn = service.request_connection("PREMISES-A", "PREMISES-C", rate_gbps=10)
    net.sim.run()
    print(conn.state, conn.setup_duration)
"""

from repro._version import __version__
from repro.facade import (
    GriphonNetwork,
    build_griphon_backbone,
    build_griphon_testbed,
)
from repro.scenario import Scenario, ScenarioEvent, ScenarioResult, run_scenario

__all__ = [
    "__version__",
    "GriphonNetwork",
    "build_griphon_backbone",
    "build_griphon_testbed",
    "Scenario",
    "ScenarioEvent",
    "ScenarioResult",
    "run_scenario",
]
