"""A synthetic US inter-city backbone for scaling experiments.

The Fig. 4 testbed has only four ROADMs, which is too small to exercise
optical reach, regenerator placement, wavelength blocking, or carrier-scale
resource planning.  This module builds a 12-node continental backbone with
realistic inter-city distances (great-circle-flavored, rounded) so those
experiments have something to chew on.  The node set and link distances
are synthetic but representative of a US long-haul carrier mesh.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.topo.graph import Link, NetworkGraph, Node

#: City name -> region tag.  Twelve PoPs spanning the continental US.
BACKBONE_CITIES: Dict[str, str] = {
    "NYC": "east",
    "DCA": "east",
    "ATL": "east",
    "MIA": "east",
    "CHI": "central",
    "STL": "central",
    "DFW": "central",
    "HOU": "central",
    "DEN": "west",
    "PHX": "west",
    "LAX": "west",
    "SEA": "west",
}

#: Inter-city fiber routes with approximate route-kilometers.  A few pairs
#: of links share a conduit SRLG to model real-world shared risk (e.g. two
#: routes leaving a city through the same river crossing).
_BACKBONE_LINKS: Tuple[Tuple[str, str, float, Tuple[str, ...]], ...] = (
    ("NYC", "DCA", 370.0, ("conduit:northeast",)),
    ("NYC", "CHI", 1270.0, ("conduit:northeast",)),
    ("DCA", "ATL", 870.0, ()),
    ("ATL", "MIA", 980.0, ()),
    ("ATL", "DFW", 1160.0, ()),
    ("ATL", "STL", 750.0, ()),
    ("CHI", "STL", 480.0, ()),
    ("CHI", "DEN", 1480.0, ()),
    ("CHI", "SEA", 3300.0, ()),
    ("STL", "DFW", 880.0, ()),
    ("DFW", "HOU", 390.0, ("conduit:texas",)),
    ("DFW", "PHX", 1420.0, ("conduit:texas",)),
    ("HOU", "MIA", 1900.0, ()),
    ("DEN", "PHX", 950.0, ()),
    ("DEN", "SEA", 2100.0, ()),
    ("PHX", "LAX", 600.0, ()),
    ("LAX", "SEA", 1850.0, ()),
    ("DEN", "STL", 1360.0, ()),
)

#: Data-center premises attached to backbone PoPs for workload experiments.
BACKBONE_DATA_CENTERS: Dict[str, str] = {
    "DC-EAST": "NYC",
    "DC-SOUTH": "ATL",
    "DC-CENTRAL": "DFW",
    "DC-WEST": "LAX",
    "DC-NORTHWEST": "SEA",
}


def build_backbone_graph(with_data_centers: bool = True) -> NetworkGraph:
    """Build the synthetic 12-city backbone.

    Args:
        with_data_centers: Also attach the five data-center premises nodes
            via 25 km metro access links.

    Returns:
        A connected :class:`NetworkGraph` with per-link SRLG tags.
    """
    graph = NetworkGraph()
    for city, region in BACKBONE_CITIES.items():
        graph.add_node(Node(city, kind="roadm", region=region))
    for a, b, km, shared in _BACKBONE_LINKS:
        srlgs = frozenset({f"srlg:{a}={b}", *shared})
        graph.add_link(Link(a, b, length_km=km, srlgs=srlgs))
    if with_data_centers:
        for dc, pop in BACKBONE_DATA_CENTERS.items():
            graph.add_node(Node(dc, kind="premises", region="datacenter"))
            graph.add_link(
                Link(dc, pop, length_km=25.0, srlgs=frozenset({f"srlg:access:{dc}"}))
            )
    return graph
