"""Network topologies: the generic graph model plus concrete builders.

* :mod:`repro.topo.graph` — nodes, links, SRLGs, and path search.
* :mod:`repro.topo.testbed` — the paper's Fig. 4 laboratory testbed.
* :mod:`repro.topo.backbone` — a synthetic US inter-city backbone used for
  the scaling/planning experiments that the 4-node testbed is too small for.
* :mod:`repro.topo.builders` — premises-attach and equipment-install
  helpers shared by the benchmarks and the sweep engine's factories.
* :mod:`repro.topo.hierarchy` — the 3-tier continental builder
  (per-region meshes, gateway PoPs, express links) behind
  :mod:`repro.shard`.
"""

from repro.topo.builders import attach_premises, install_pop_equipment
from repro.topo.graph import Link, NetworkGraph, Node
from repro.topo.hierarchy import (
    EXPRESS,
    Hierarchy,
    RegionInfo,
    build_express_graph,
    build_hierarchy,
    build_region_graph,
)
from repro.topo.testbed import (
    TESTBED_PREMISES,
    TESTBED_ROADMS,
    build_testbed_graph,
)
from repro.topo.backbone import BACKBONE_CITIES, build_backbone_graph

__all__ = [
    "attach_premises",
    "install_pop_equipment",
    "Link",
    "NetworkGraph",
    "Node",
    "TESTBED_PREMISES",
    "TESTBED_ROADMS",
    "build_testbed_graph",
    "BACKBONE_CITIES",
    "build_backbone_graph",
    "EXPRESS",
    "Hierarchy",
    "RegionInfo",
    "build_express_graph",
    "build_hierarchy",
    "build_region_graph",
]
