"""Random topology generation for scaling studies.

The Fig. 4 testbed and the 12-city backbone are fixed; scaling studies
(blocking vs network size, planner behavior on unfamiliar meshes) need
families of random-but-realistic carrier topologies.  The generator
follows a Waxman-flavored recipe: scatter PoPs on a plane, connect with
probability decaying in distance, then patch connectivity and enforce a
minimum degree of 2 so every span is restorable.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.sim.randomness import RandomStreams
from repro.topo.graph import Link, NetworkGraph, Node


def generate_backbone(
    streams: RandomStreams,
    node_count: int = 16,
    plane_km: float = 4000.0,
    alpha: float = 0.4,
    beta: float = 0.35,
    stream_name: str = "topo-gen",
) -> NetworkGraph:
    """Generate a random two-connected carrier backbone.

    Args:
        streams: Random substreams (deterministic per master seed).
        node_count: Number of PoPs (>= 3).
        plane_km: Side of the square the PoPs scatter over.
        alpha: Waxman distance-decay parameter (larger = longer links).
        beta: Waxman base link probability (larger = denser mesh).

    Returns:
        A connected :class:`NetworkGraph` where every node has degree
        >= 2 and every link carries an SRLG tag.

    Raises:
        ConfigurationError: for invalid parameters.
    """
    if node_count < 3:
        raise ConfigurationError(f"need >= 3 nodes, got {node_count}")
    if plane_km <= 0:
        raise ConfigurationError(f"plane must be positive, got {plane_km}")
    if not (0 < alpha <= 1 and 0 < beta <= 1):
        raise ConfigurationError("alpha and beta must be in (0, 1]")

    positions: List[Tuple[float, float]] = [
        (
            streams.uniform(f"{stream_name}:x", 0.0, plane_km),
            streams.uniform(f"{stream_name}:y", 0.0, plane_km),
        )
        for _ in range(node_count)
    ]
    graph = NetworkGraph()
    for index in range(node_count):
        graph.add_node(Node(f"P{index:02d}", kind="roadm"))

    max_distance = plane_km * math.sqrt(2)

    def distance(i: int, j: int) -> float:
        (xi, yi), (xj, yj) = positions[i], positions[j]
        return math.hypot(xi - xj, yi - yj)

    def add(i: int, j: int) -> None:
        a, b = f"P{i:02d}", f"P{j:02d}"
        km = max(25.0, round(distance(i, j), 1))
        graph.add_link(
            Link(a, b, length_km=km, srlgs=frozenset({f"srlg:{a}={b}"}))
        )

    # Waxman pass.
    for i in range(node_count):
        for j in range(i + 1, node_count):
            probability = beta * math.exp(
                -distance(i, j) / (alpha * max_distance)
            )
            if streams.uniform(f"{stream_name}:p", 0.0, 1.0) < probability:
                add(i, j)

    # Connectivity patch: chain any disconnected components together
    # through their nearest node pair.
    def components() -> List[List[int]]:
        seen: set = set()
        result = []
        for start in range(node_count):
            if start in seen:
                continue
            stack, comp = [start], []
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                comp.append(current)
                for neighbor in graph.neighbors(f"P{current:02d}"):
                    stack.append(int(neighbor[1:]))
            result.append(comp)
        return result

    comps = components()
    while len(comps) > 1:
        best = None
        for i in comps[0]:
            for j in comps[1]:
                d = distance(i, j)
                if best is None or d < best[0]:
                    best = (d, i, j)
        add(best[1], best[2])
        comps = components()

    # Degree patch: every PoP gets at least two distinct spans, so a
    # single cut never isolates it.
    for i in range(node_count):
        name = f"P{i:02d}"
        while graph.degree(name) < 2:
            candidates = sorted(
                (
                    (distance(i, j), j)
                    for j in range(node_count)
                    if j != i and f"P{j:02d}" not in graph.neighbors(name)
                ),
            )
            add(i, candidates[0][1])
    return graph
