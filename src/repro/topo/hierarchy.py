"""Three-tier hierarchical topologies: regions, gateways, express links.

A continental-scale network is not one flat mesh.  Following the
hierarchical WDM DCN blueprint, the builder here composes three tiers:

* **tier 3** — per-region PoP meshes, each an independent Waxman
  backbone generated from its own spawned random-stream family
  (``spawn("shard:<region>")``), so a region's graph is reproducible
  *without* building any other region;
* **tier 2** — gateway PoPs: the first ``gateways_per_region`` PoPs of
  every region, where intra-region traffic hands off to the express
  layer;
* **tier 1** — the express backbone: long-haul links joining gateways
  of different regions in two edge-disjoint rings, so no single express
  cut partitions the region graph.

The resulting :class:`Hierarchy` knows how to slice itself into the
per-shard planning subgraphs used by :mod:`repro.shard`: one region
graph per shard plus one express graph, with every link owned by
exactly one slice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.randomness import RandomStreams
from repro.topo.generator import generate_backbone
from repro.topo.graph import Link, NetworkGraph, Node

#: The reserved unit name for the express (tier-1) planning slice.
EXPRESS = "express"


def region_name(index: int) -> str:
    """Canonical name of the ``index``-th region."""
    return f"R{index:02d}"


def shard_stream_key(region: str) -> str:
    """The ``RandomStreams.spawn`` key owning a region's randomness.

    Every per-region derivation (mesh generation today, per-shard
    workloads tomorrow) hangs off this one spawned family, which the
    seed-collision property tests cover explicitly.
    """
    return f"shard:{region}"


class RegionInfo:
    """One region's membership: PoPs, gateways, attached premises."""

    __slots__ = ("name", "pops", "gateways", "premises")

    def __init__(
        self,
        name: str,
        pops: Tuple[str, ...],
        gateways: Tuple[str, ...],
        premises: Tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.pops = pops
        self.gateways = gateways
        self.premises = premises

    def __repr__(self) -> str:
        return (
            f"RegionInfo({self.name}, pops={len(self.pops)}, "
            f"gateways={list(self.gateways)})"
        )


class Hierarchy:
    """A built three-tier topology plus its region/express structure."""

    def __init__(
        self,
        graph: NetworkGraph,
        regions: "Dict[str, RegionInfo]",
        express_links: Tuple[Tuple[str, str], ...],
        seed: int,
        params: dict,
    ) -> None:
        self.graph = graph
        self.regions = regions
        self.express_links = express_links
        self.seed = seed
        self.params = dict(params)
        self._region_of: Dict[str, str] = {}
        for info in regions.values():
            for node in info.pops + info.premises:
                self._region_of[node] = info.name

    # -- structure queries ---------------------------------------------------

    @property
    def region_names(self) -> List[str]:
        """Region names in build order."""
        return list(self.regions)

    @property
    def pop_count(self) -> int:
        """Total PoPs across all regions (premises not counted)."""
        return sum(len(info.pops) for info in self.regions.values())

    def region_of(self, node: str) -> Optional[str]:
        """The region owning ``node`` (PoP or premises), or ``None``."""
        return self._region_of.get(node)

    def unit_names(self) -> List[str]:
        """Planning-slice names: every region, plus express when present."""
        names = list(self.regions)
        if self.express_links:
            names.append(EXPRESS)
        return names

    def gateways(self) -> List[str]:
        """Every gateway PoP, in region order."""
        result: List[str] = []
        for info in self.regions.values():
            result.extend(info.gateways)
        return result

    # -- planning-slice subgraphs --------------------------------------------

    def region_graph(self, name: str) -> NetworkGraph:
        """The subgraph owned by region ``name``: its PoPs, premises,
        and every link with both endpoints inside the region.

        Express links never appear here (their endpoints live in two
        different regions), so region slices and the express slice
        partition the link set exactly.
        """
        info = self.regions[name]
        sub = NetworkGraph()
        members = set(info.pops) | set(info.premises)
        for node_name in info.pops + info.premises:
            sub.add_node(self.graph.node(node_name))
        for link in self.graph.links:
            if link.a in members and link.b in members:
                sub.add_link(link)
        return sub

    def express_graph(self) -> NetworkGraph:
        """The tier-1 subgraph: every gateway plus the express links."""
        sub = NetworkGraph()
        for gateway in self.gateways():
            sub.add_node(self.graph.node(gateway))
        for a, b in self.express_links:
            sub.add_link(self.graph.link_between(a, b))
        return sub

    def intra_region_gateway_links(self) -> List[Tuple[str, str]]:
        """Link keys joining two gateways of the *same* region.

        A monolithic deployment planning an express segment on the full
        graph must exclude these, so its candidate routes match what the
        sharded express slice (where such links do not exist) computes.
        """
        keys: List[Tuple[str, str]] = []
        for info in self.regions.values():
            gateways = list(info.gateways)
            for i, a in enumerate(gateways):
                for b in gateways[i + 1 :]:
                    try:
                        keys.append(self.graph.link_between(a, b).key)
                    except Exception:
                        continue
        return keys


# -- per-tier builders (each reproducible in isolation) ----------------------


def build_region_graph(
    seed: int,
    region: str,
    pops_per_region: int,
    region_plane_km: float = 1200.0,
    alpha: float = 0.4,
    beta: float = 0.35,
    with_premises: bool = False,
    premises_prefix: str = "DC-",
    premises_length_km: float = 20.0,
) -> NetworkGraph:
    """Build one region's tier-3 mesh, standalone.

    The mesh derives entirely from ``spawn(shard_stream_key(region))``
    of the hierarchy seed, so a shard worker can rebuild exactly its
    slice of a 512-PoP hierarchy without generating the other regions.
    """
    if pops_per_region < 3:
        raise ConfigurationError(
            f"pops_per_region must be >= 3, got {pops_per_region}"
        )
    streams = RandomStreams(seed).spawn(shard_stream_key(region))
    mesh = generate_backbone(
        streams,
        node_count=pops_per_region,
        plane_km=region_plane_km,
        alpha=alpha,
        beta=beta,
    )

    def rename(node: str) -> str:
        return f"{region}-{node}"

    graph = NetworkGraph()
    for node in mesh.nodes:
        graph.add_node(Node(rename(node.name), kind="roadm", region=region))
    for link in mesh.links:
        a, b = rename(link.a), rename(link.b)
        graph.add_link(
            Link(a, b, length_km=link.length_km,
                 srlgs=frozenset({f"srlg:{a}={b}"}))
        )
    if with_premises:
        for node in mesh.nodes:
            pop = rename(node.name)
            premises = f"{premises_prefix}{pop}"
            graph.add_node(Node(premises, kind="premises", region=region))
            graph.add_link(
                Link(
                    premises,
                    pop,
                    length_km=premises_length_km,
                    srlgs=frozenset({f"srlg:access:{premises}"}),
                )
            )
    return graph


def gateway_names(
    region: str, pops_per_region: int, gateways_per_region: int
) -> Tuple[str, ...]:
    """The gateway PoPs of a region: its first N PoPs, by index.

    Purely a naming convention — derivable without generating the
    region mesh, which is what lets the express slice build standalone.
    """
    if not (1 <= gateways_per_region <= pops_per_region):
        raise ConfigurationError(
            f"gateways_per_region must be in [1, {pops_per_region}], "
            f"got {gateways_per_region}"
        )
    return tuple(
        f"{region}-P{index:02d}" for index in range(gateways_per_region)
    )


def express_link_specs(
    region_count: int, gateways_per_region: int, pops_per_region: int
) -> List[Tuple[str, str]]:
    """Deterministic tier-1 express pairs between region gateways.

    Two edge-disjoint rings: the primary ring joins gateway 0 of
    adjacent regions; the secondary ring (when a second gateway exists)
    joins gateway 1 of regions two apart — giving every region at least
    two disjoint express attachments for ``region_count >= 3``, and a
    gateway-disjoint pair of links for ``region_count == 2``.
    """
    if region_count < 2:
        return []
    names = [region_name(index) for index in range(region_count)]
    gateways = {
        name: gateway_names(name, pops_per_region, gateways_per_region)
        for name in names
    }
    pairs: List[Tuple[str, str]] = []
    seen = set()

    def add(a: str, b: str) -> None:
        key = (a, b) if a <= b else (b, a)
        if a != b and key not in seen:
            seen.add(key)
            pairs.append((a, b))

    for index in range(region_count):
        peer = (index + 1) % region_count
        if region_count == 2 and index == 1:
            break
        add(gateways[names[index]][0], gateways[names[peer]][0])
    if gateways_per_region >= 2:
        offset = 2 if region_count > 3 else 1
        for index in range(region_count):
            peer = (index + offset) % region_count
            if region_count == 2 and index == 1:
                break
            add(gateways[names[index]][1], gateways[names[peer]][1])
    return pairs


def build_express_graph(
    region_count: int,
    gateways_per_region: int,
    pops_per_region: int,
    express_length_km: float = 600.0,
) -> NetworkGraph:
    """Build the tier-1 express slice standalone (no region meshes)."""
    graph = NetworkGraph()
    for index in range(region_count):
        name = region_name(index)
        for gateway in gateway_names(
            name, pops_per_region, gateways_per_region
        ):
            graph.add_node(Node(gateway, kind="roadm", region=name))
    for a, b in express_link_specs(
        region_count, gateways_per_region, pops_per_region
    ):
        graph.add_link(
            Link(
                a,
                b,
                length_km=express_length_km,
                srlgs=frozenset({f"srlg:express:{a}={b}"}),
            )
        )
    return graph


def build_hierarchy(
    seed: int,
    regions: int = 4,
    pops_per_region: int = 8,
    gateways_per_region: int = 2,
    region_plane_km: float = 1200.0,
    express_length_km: float = 600.0,
    alpha: float = 0.4,
    beta: float = 0.35,
    with_premises: bool = False,
    premises_prefix: str = "DC-",
) -> Hierarchy:
    """Build the full three-tier topology.

    Args:
        seed: Master seed; every region mesh spawns its own family.
        regions: Number of regions (>= 1; 1 degenerates to a flat mesh
            with no express tier — the monolithic baseline).
        pops_per_region: Tier-3 mesh size per region (>= 3).
        gateways_per_region: Gateways per region (>= 1).
        region_plane_km: Side of each region's Waxman plane.
        express_length_km: Length of every express link.
        alpha / beta: Waxman shape parameters for the region meshes.
        with_premises: Attach one customer premises per PoP.
        premises_prefix: Premises naming prefix.

    Returns:
        The assembled :class:`Hierarchy`.
    """
    if regions < 1:
        raise ConfigurationError(f"regions must be >= 1, got {regions}")
    graph = NetworkGraph()
    infos: Dict[str, RegionInfo] = {}
    for index in range(regions):
        name = region_name(index)
        sub = build_region_graph(
            seed,
            name,
            pops_per_region,
            region_plane_km=region_plane_km,
            alpha=alpha,
            beta=beta,
            with_premises=with_premises,
            premises_prefix=premises_prefix,
        )
        pops: List[str] = []
        premises: List[str] = []
        for node in sub.nodes:
            graph.add_node(node)
            (premises if node.kind == "premises" else pops).append(node.name)
        for link in sub.links:
            graph.add_link(link)
        infos[name] = RegionInfo(
            name,
            tuple(pops),
            gateway_names(name, pops_per_region, gateways_per_region),
            tuple(premises),
        )
    express_pairs = express_link_specs(
        regions, gateways_per_region, pops_per_region
    )
    for a, b in express_pairs:
        graph.add_link(
            Link(
                a,
                b,
                length_km=express_length_km,
                srlgs=frozenset({f"srlg:express:{a}={b}"}),
            )
        )
    return Hierarchy(
        graph,
        infos,
        tuple(express_pairs),
        seed,
        params=dict(
            regions=regions,
            pops_per_region=pops_per_region,
            gateways_per_region=gateways_per_region,
            region_plane_km=region_plane_km,
            express_length_km=express_length_km,
            alpha=alpha,
            beta=beta,
            with_premises=with_premises,
            premises_prefix=premises_prefix,
        ),
    )
