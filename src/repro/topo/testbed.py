"""The paper's Fig. 4 laboratory testbed topology.

The testbed's DWDM layer has four ROADM nodes — two 3-degree and two
2-degree — in a mesh that supports the three paths measured in Table 2:

* 1 hop:  ``ROADM-I — ROADM-IV``
* 2 hops: ``ROADM-I — ROADM-III — ROADM-IV``
* 3 hops: ``ROADM-I — ROADM-II — ROADM-III — ROADM-IV``

which fixes the inter-ROADM links as I–IV, I–III, III–IV, I–II and II–III,
giving ROADM-I and ROADM-III degree 3 and ROADM-II and ROADM-IV degree 2,
matching the paper's "two 3-degree ROADMs and two 2-degree ROADMs".

Three customer premises (data-center sites) attach via fixed dedicated
access pipes — emulated in the paper by a 10G/40G muxponder pair — to core
PoPs colocated with ROADM-I, ROADM-III, and ROADM-IV.
"""

from __future__ import annotations

from typing import Dict

from repro.topo.graph import Link, NetworkGraph, Node

#: Names of the four ROADM nodes in the Fig. 4 testbed.
TESTBED_ROADMS = ("ROADM-I", "ROADM-II", "ROADM-III", "ROADM-IV")

#: Customer premises name -> the core-PoP ROADM its access pipe lands on.
TESTBED_PREMISES: Dict[str, str] = {
    "PREMISES-A": "ROADM-I",
    "PREMISES-B": "ROADM-III",
    "PREMISES-C": "ROADM-IV",
}

#: Inter-ROADM fiber links (lab spools; short, uniform lengths).
_TESTBED_LINKS = (
    ("ROADM-I", "ROADM-IV", 80.0),
    ("ROADM-I", "ROADM-III", 60.0),
    ("ROADM-III", "ROADM-IV", 60.0),
    ("ROADM-I", "ROADM-II", 50.0),
    ("ROADM-II", "ROADM-III", 50.0),
)

#: Access pipe length from each premises to its core PoP (a metro span).
_ACCESS_KM = 10.0


def build_testbed_graph() -> NetworkGraph:
    """Build the Fig. 4 testbed as a :class:`NetworkGraph`.

    The returned graph contains the four ROADMs, the five inter-ROADM
    links, the three customer premises, and their access links.  Each
    inter-ROADM link carries a unique SRLG tag so fiber-cut experiments
    can target individual spans.
    """
    graph = NetworkGraph()
    for name in TESTBED_ROADMS:
        graph.add_node(Node(name, kind="roadm", region="lab-core"))
    for premises in TESTBED_PREMISES:
        graph.add_node(Node(premises, kind="premises", region="lab-edge"))
    for a, b, km in _TESTBED_LINKS:
        graph.add_link(Link(a, b, length_km=km, srlgs=frozenset({f"srlg:{a}={b}"})))
    for premises, pop in TESTBED_PREMISES.items():
        graph.add_link(
            Link(
                premises,
                pop,
                length_km=_ACCESS_KM,
                srlgs=frozenset({f"srlg:access:{premises}"}),
            )
        )
    return graph


def table2_paths() -> Dict[int, list]:
    """The three ROADM-layer paths measured in Table 2, keyed by hop count."""
    return {
        1: ["ROADM-I", "ROADM-IV"],
        2: ["ROADM-I", "ROADM-III", "ROADM-IV"],
        3: ["ROADM-I", "ROADM-II", "ROADM-III", "ROADM-IV"],
    }
