"""The network graph: nodes, bidirectional fiber links, and path search.

The graph is layer-agnostic: the DWDM layer, the OTN layer, and the legacy
SONET layer each interpret the same node/link structure through their own
equipment models.  Links are *bidirectional fiber pairs* (the paper's
DWDM links), carry a length in kilometers for optical-reach computations,
and may belong to shared-risk link groups (SRLGs) so a single conduit cut
can take down several logical links at once.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import NoPathError, TopologyError


@dataclass(frozen=True)
class Node:
    """A network location.

    Attributes:
        name: Unique node name, e.g. ``'ROADM-I'`` or ``'DC-A'``.
        kind: Role tag: ``'roadm'``, ``'premises'``, ``'pop'``, etc.
        region: Optional grouping label (metro area / city).
    """

    name: str
    kind: str = "roadm"
    region: str = ""


@dataclass(frozen=True)
class Link:
    """A bidirectional fiber pair between two nodes.

    Attributes:
        a: One endpoint node name.
        b: The other endpoint node name.
        length_km: Fiber route distance, used by the optical reach model.
        srlgs: Shared-risk link group identifiers (conduits, bridges...).
    """

    a: str
    b: str
    length_km: float = 100.0
    srlgs: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-loop link at node {self.a!r}")
        if self.length_km <= 0:
            raise TopologyError(
                f"link {self.a}-{self.b} must have positive length, "
                f"got {self.length_km}"
            )

    @property
    def key(self) -> Tuple[str, str]:
        """Canonical (sorted) endpoint pair identifying this link."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    def other(self, node: str) -> str:
        """Return the endpoint opposite ``node``.

        Raises:
            TopologyError: if ``node`` is not an endpoint of this link.
        """
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"{node!r} is not an endpoint of link {self.key}")

    def __str__(self) -> str:
        return f"{self.key[0]}={self.key[1]}"


class NetworkGraph:
    """An undirected multigraph of nodes and fiber links.

    Provides Dijkstra shortest paths and Yen's k-shortest simple paths,
    with pluggable link weights and link/node exclusion — the primitives
    the GRIPhoN controller's routing engine builds on.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._adjacency: Dict[str, Set[str]] = {}
        # Pre-sorted (neighbor, link) lists per node so the Dijkstra inner
        # loop needs neither sorted() nor link_between(); rebuilt lazily
        # per node after a mutation touches it.
        self._sorted_adjacency: Dict[str, List[Tuple[str, Link]]] = {}
        self._srlg_index: Dict[str, List[Link]] = {}
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotonic counter bumped on every topology mutation.

        Caches keyed on routing results (e.g. the RWA route cache) stamp
        entries with this value and invalidate when it moves.
        """
        return self._generation

    # -- construction --------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Add a node; re-adding an identical node is a no-op.

        Raises:
            TopologyError: if a different node with the same name exists.
        """
        existing = self._nodes.get(node.name)
        if existing is not None:
            if existing != node:
                raise TopologyError(
                    f"node {node.name!r} already exists with different attributes"
                )
            return existing
        self._nodes[node.name] = node
        self._adjacency[node.name] = set()
        self._sorted_adjacency[node.name] = []
        self._generation += 1
        return node

    def add_link(self, link: Link) -> Link:
        """Add a link between two existing nodes.

        Raises:
            TopologyError: if either endpoint is unknown or the node pair
                is already linked (parallel links are modeled as added
                capacity on one link, not as multigraph edges).
        """
        for endpoint in (link.a, link.b):
            if endpoint not in self._nodes:
                raise TopologyError(f"link references unknown node {endpoint!r}")
        if link.key in self._links:
            raise TopologyError(f"duplicate link {link.key}")
        self._links[link.key] = link
        self._adjacency[link.a].add(link.b)
        self._adjacency[link.b].add(link.a)
        self._sorted_adjacency.pop(link.a, None)
        self._sorted_adjacency.pop(link.b, None)
        for srlg in link.srlgs:
            self._srlg_index.setdefault(srlg, []).append(link)
        self._generation += 1
        return link

    # -- lookup ----------------------------------------------------------------

    @property
    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._nodes.values())

    @property
    def links(self) -> List[Link]:
        """All links, in insertion order."""
        return list(self._links.values())

    def node(self, name: str) -> Node:
        """Look up a node by name.

        Raises:
            TopologyError: for an unknown name.
        """
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        """Whether a node with this name exists."""
        return name in self._nodes

    def link_between(self, a: str, b: str) -> Link:
        """Return the link joining ``a`` and ``b``.

        Raises:
            TopologyError: if the nodes are not adjacent.
        """
        key = (a, b) if a <= b else (b, a)
        try:
            return self._links[key]
        except KeyError:
            raise TopologyError(f"no link between {a!r} and {b!r}") from None

    def neighbors(self, name: str) -> List[str]:
        """Sorted neighbor names of ``name``."""
        if name not in self._adjacency:
            raise TopologyError(f"unknown node {name!r}")
        return sorted(self._adjacency[name])

    def degree(self, name: str) -> int:
        """Number of distinct inter-node fiber links at ``name``."""
        if name not in self._adjacency:
            raise TopologyError(f"unknown node {name!r}")
        return len(self._adjacency[name])

    def links_on_path(self, path: List[str]) -> List[Link]:
        """The link objects along a node path.

        Raises:
            TopologyError: if consecutive nodes are not adjacent.
        """
        return [self.link_between(u, v) for u, v in zip(path, path[1:])]

    def path_length_km(self, path: List[str]) -> float:
        """Total fiber kilometers along a node path."""
        return sum(link.length_km for link in self.links_on_path(path))

    def path_latency_s(self, path: List[str]) -> float:
        """One-way propagation delay along a node path.

        Light in fiber travels at about c/1.468 ≈ 204 km/ms, i.e. ~4.9 µs
        per kilometer — the figure a re-grooming pass actually improves
        for the customer.
        """
        return self.path_length_km(path) * 4.9e-6

    def srlgs_on_path(self, path: List[str]) -> Set[str]:
        """Union of SRLG identifiers along the path."""
        groups: Set[str] = set()
        for link in self.links_on_path(path):
            groups |= link.srlgs
        return groups

    def links_in_srlg(self, srlg: str) -> List[Link]:
        """All links belonging to the given shared-risk group."""
        return list(self._srlg_index.get(srlg, ()))

    def _sorted_neighbors(self, name: str) -> List[Tuple[str, Link]]:
        """Pre-sorted (neighbor, link) pairs for ``name`` (lazily rebuilt)."""
        cached = self._sorted_adjacency.get(name)
        if cached is None:
            cached = [
                (neighbor, self._links[(name, neighbor) if name <= neighbor else (neighbor, name)])
                for neighbor in sorted(self._adjacency[name])
            ]
            self._sorted_adjacency[name] = cached
        return cached

    # -- path search -------------------------------------------------------------

    def shortest_path(
        self,
        source: str,
        target: str,
        weight: Optional[Callable[[Link], float]] = None,
        excluded_links: Iterable[Tuple[str, str]] = (),
        excluded_nodes: Iterable[str] = (),
    ) -> List[str]:
        """Dijkstra shortest path from ``source`` to ``target``.

        Args:
            weight: Link cost function; default is hop count (cost 1/link).
            excluded_links: Link keys (canonical endpoint pairs) to avoid.
            excluded_nodes: Intermediate nodes to avoid (endpoints are
                always allowed).

        Returns:
            The node path, beginning with ``source`` and ending with
            ``target``.

        Raises:
            NoPathError: if no path survives the exclusions.
            TopologyError: for unknown endpoints.
        """
        self.node(source)
        self.node(target)
        if weight is None:
            weight = lambda link: 1.0  # noqa: E731 - hop count default
        banned_links = {self._canonical(k) for k in excluded_links}
        banned_nodes = set(excluded_nodes) - {source, target}

        distances: Dict[str, float] = {source: 0.0}
        previous: Dict[str, str] = {}
        counter = itertools.count()
        frontier: List[Tuple[float, int, str]] = [(0.0, next(counter), source)]
        visited: Set[str] = set()
        while frontier:
            dist, _, current = heapq.heappop(frontier)
            if current in visited:
                continue
            visited.add(current)
            if current == target:
                return self._reconstruct(previous, source, target)
            for neighbor, link in self._sorted_neighbors(current):
                if neighbor in banned_nodes or neighbor in visited:
                    continue
                if link.key in banned_links:
                    continue
                cost = weight(link)
                if cost < 0:
                    raise TopologyError(
                        f"negative link weight {cost} on {link.key}"
                    )
                candidate = dist + cost
                if candidate < distances.get(neighbor, float("inf")):
                    distances[neighbor] = candidate
                    previous[neighbor] = current
                    heapq.heappush(frontier, (candidate, next(counter), neighbor))
        raise NoPathError(f"no path from {source!r} to {target!r}")

    def k_shortest_paths(
        self,
        source: str,
        target: str,
        k: int,
        weight: Optional[Callable[[Link], float]] = None,
        excluded_links: Iterable[Tuple[str, str]] = (),
        excluded_nodes: Iterable[str] = (),
    ) -> List[List[str]]:
        """Yen's algorithm: up to ``k`` loop-free shortest paths in cost order.

        Returns fewer than ``k`` paths when the graph does not contain that
        many simple paths.  Raises :class:`NoPathError` if there is none.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if weight is None:
            weight = lambda link: 1.0  # noqa: E731 - hop count default
        base_excluded_links = {self._canonical(key) for key in excluded_links}
        base_excluded_nodes = set(excluded_nodes)

        first = self.shortest_path(
            source,
            target,
            weight,
            excluded_links=base_excluded_links,
            excluded_nodes=base_excluded_nodes,
        )
        paths: List[List[str]] = [first]
        candidates: List[Tuple[float, List[str]]] = []
        seen_candidates: Set[Tuple[str, ...]] = {tuple(first)}

        while len(paths) < k:
            prev_path = paths[-1]
            for i in range(len(prev_path) - 1):
                spur_node = prev_path[i]
                root = prev_path[: i + 1]
                removed_links = set(base_excluded_links)
                for path in paths:
                    if path[: i + 1] == root and len(path) > i + 1:
                        removed_links.add(
                            self._canonical((path[i], path[i + 1]))
                        )
                removed_nodes = set(base_excluded_nodes) | set(root[:-1])
                try:
                    spur = self.shortest_path(
                        spur_node,
                        target,
                        weight,
                        excluded_links=removed_links,
                        excluded_nodes=removed_nodes,
                    )
                except NoPathError:
                    continue
                total = root[:-1] + spur
                key = tuple(total)
                if key in seen_candidates:
                    continue
                seen_candidates.add(key)
                cost = sum(weight(link) for link in self.links_on_path(total))
                heapq.heappush(candidates, (cost, total))
            if not candidates:
                break
            _, best = heapq.heappop(candidates)
            paths.append(best)
        return paths

    def disjoint_path(
        self,
        path: List[str],
        weight: Optional[Callable[[Link], float]] = None,
        srlg_disjoint: bool = True,
    ) -> List[str]:
        """Find a path between the endpoints of ``path`` disjoint from it.

        Disjointness means: no shared links, no shared intermediate nodes,
        and (when ``srlg_disjoint``) no shared SRLGs — the constraint the
        bridge-and-roll operation requires of the new wavelength path.

        Raises:
            NoPathError: if no disjoint path exists.
        """
        if len(path) < 2:
            raise TopologyError("path must contain at least two nodes")
        source, target = path[0], path[-1]
        excluded_links = {link.key for link in self.links_on_path(path)}
        if srlg_disjoint:
            for srlg in self.srlgs_on_path(path):
                excluded_links |= {link.key for link in self.links_in_srlg(srlg)}
        excluded_nodes = set(path[1:-1])
        return self.shortest_path(
            source,
            target,
            weight,
            excluded_links=excluded_links,
            excluded_nodes=excluded_nodes,
        )

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _canonical(key: Tuple[str, str]) -> Tuple[str, str]:
        a, b = key
        return (a, b) if a <= b else (b, a)

    @staticmethod
    def _reconstruct(
        previous: Dict[str, str], source: str, target: str
    ) -> List[str]:
        path = [target]
        while path[-1] != source:
            path.append(previous[path[-1]])
        path.reverse()
        return path
