"""Reusable topology assembly helpers.

The scaling benchmarks and the sweep engine's topology factories all
need the same two steps after generating a core graph: attach a
customer-premises node to every PoP, and install a standard equipment
complement at each site.  Those steps used to be copy-pasted per
benchmark; they live here now so every experiment builds networks the
same way.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.topo.graph import Link, NetworkGraph, Node
from repro.units import GBPS


def attach_premises(
    graph: NetworkGraph,
    pops: Optional[Iterable[str]] = None,
    prefix: str = "DC-",
    length_km: float = 20.0,
) -> List[str]:
    """Attach one customer-premises node per core PoP.

    Each premises is named ``f"{prefix}{pop}"``, connected to its PoP by
    a single access link tagged with its own SRLG (access links are
    intentionally single-homed, mirroring the synthetic backbone).

    Args:
        graph: The core graph to extend (mutated in place).
        pops: PoPs to attach premises to; default is every node already
            in the graph.
        prefix: Premises-name prefix.
        length_km: Access-link length.

    Returns:
        The premises names, in PoP order.
    """
    if pops is None:
        pops = [node.name for node in graph.nodes]
    premises_names = []
    for pop in pops:
        premises = f"{prefix}{pop}"
        graph.add_node(Node(premises, kind="premises"))
        graph.add_link(
            Link(
                premises,
                pop,
                length_km=length_km,
                srlgs=frozenset({f"srlg:access:{premises}"}),
            )
        )
        premises_names.append(premises)
    return premises_names


def install_pop_equipment(
    inventory,
    pops: Iterable[str],
    premises: Iterable[str] = (),
    add_drop_ports: int = 16,
    transponders_10g: int = 6,
    regens_10g: int = 4,
    fxc_ports: int = 32,
    nte_interfaces: int = 8,
    premises_fxc_ports: int = 16,
    with_otn: bool = False,
    otn_client_ports: int = 32,
) -> None:
    """Install the standard per-site equipment complement.

    Every core PoP gets a ROADM, a 10G transponder pool, regens, and an
    FXC (plus an OTN switch when ``with_otn``); every premises gets an
    NTE homed on its PoP (derived from the :func:`attach_premises`
    naming, i.e. the premises' single neighbor) and a client-side FXC.
    """
    for pop in pops:
        inventory.install_roadm(pop, add_drop_ports=add_drop_ports)
        inventory.install_transponders(pop, 10 * GBPS, transponders_10g)
        inventory.install_regens(pop, 10 * GBPS, regens_10g)
        inventory.install_fxc(pop, port_count=fxc_ports)
        if with_otn:
            inventory.install_otn_switch(pop, client_ports=otn_client_ports)
    for name in premises:
        neighbors = list(inventory.graph.neighbors(name))
        if len(neighbors) != 1:
            raise ValueError(
                f"premises {name!r} must have exactly one access link, "
                f"has {len(neighbors)}"
            )
        inventory.install_nte(name, neighbors[0], interface_count=nte_interfaces)
        inventory.install_fxc(name, port_count=premises_fxc_ports)
