"""Advance reservations: booking bandwidth for a future window.

Bulk replication is scheduled work — operators know tonight's backup
window in advance.  The reservation book lets a CSP book capacity for a
future interval; the controller activates the connection just before the
window opens (covering the ~1 minute setup) and tears it down at the
close.  Admission checks the *calendar*, not just the present: a booking
is refused when the terminating transponder pools would be
oversubscribed by overlapping bookings, which is the carrier's §4
planning discipline applied to the time axis.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.connection import Connection, ConnectionState
from repro.core.controller import GriphonController
from repro.errors import AdmissionError, ConfigurationError
from repro.units import GBPS

#: Activation starts this long before the window so setup completes.
DEFAULT_SETUP_LEAD_S = 120.0

#: When activation finds resources still held (e.g. the previous
#: window's teardown has not finished), retry at this interval.
ACTIVATION_RETRY_S = 60.0


class ReservationState(enum.Enum):
    """Life cycle of an advance reservation."""

    BOOKED = "booked"
    ACTIVE = "active"
    COMPLETED = "completed"
    CANCELED = "canceled"
    ACTIVATION_FAILED = "activation_failed"


@dataclass
class Reservation:
    """One booked bandwidth window.

    Attributes:
        reservation_id: Unique id.
        customer: Owning CSP.
        premises_a / premises_b: Endpoints.
        rate_bps: Booked rate.
        start / end: Window boundaries in simulation time.
        connection: The live connection once activated.
    """

    reservation_id: str
    customer: str
    premises_a: str
    premises_b: str
    rate_bps: float
    start: float
    end: float
    state: ReservationState = ReservationState.BOOKED
    connection: Optional[Connection] = None
    failure_reason: str = ""

    def overlaps(self, start: float, end: float) -> bool:
        """Whether this reservation's window intersects [start, end)."""
        return self.start < end and start < self.end


class ReservationBook:
    """Books, admits, activates, and closes advance reservations."""

    def __init__(
        self,
        controller: GriphonController,
        setup_lead_s: float = DEFAULT_SETUP_LEAD_S,
    ) -> None:
        if setup_lead_s < 0:
            raise ConfigurationError(
                f"setup lead must be >= 0, got {setup_lead_s}"
            )
        self._controller = controller
        self._setup_lead_s = setup_lead_s
        self._reservations: Dict[str, Reservation] = {}
        self._seq = itertools.count()

    # -- booking --------------------------------------------------------------

    def book(
        self,
        customer: str,
        premises_a: str,
        premises_b: str,
        rate_gbps: float,
        start: float,
        end: float,
    ) -> Reservation:
        """Book ``rate_gbps`` between two premises for [start, end).

        Raises:
            ConfigurationError: for an empty or past window.
            AdmissionError: if overlapping bookings would oversubscribe
                a terminating transponder pool.
        """
        sim = self._controller.sim
        if end <= start:
            raise ConfigurationError(
                f"window must be non-empty, got [{start}, {end})"
            )
        if start < sim.now:
            raise ConfigurationError(
                f"window starts in the past (start={start}, now={sim.now})"
            )
        self._controller.admission.profile(customer)  # customer must exist
        rate_bps = rate_gbps * GBPS
        self._check_calendar_capacity(premises_a, premises_b, rate_bps,
                                      start, end)
        reservation = Reservation(
            f"resv-{next(self._seq)}",
            customer,
            premises_a,
            premises_b,
            rate_bps,
            start,
            end,
        )
        self._reservations[reservation.reservation_id] = reservation
        activate_at = max(sim.now, start - self._setup_lead_s)
        sim.schedule_at(
            activate_at,
            self._activate,
            reservation,
            label=f"resv-activate:{reservation.reservation_id}",
        )
        sim.schedule_at(
            end,
            self._close,
            reservation,
            label=f"resv-close:{reservation.reservation_id}",
        )
        return reservation

    def cancel(self, reservation_id: str) -> Reservation:
        """Cancel a booked (not yet active) reservation.

        Raises:
            ConfigurationError: unknown id or already active/closed.
        """
        reservation = self._reservations.get(reservation_id)
        if reservation is None:
            raise ConfigurationError(f"unknown reservation {reservation_id!r}")
        if reservation.state is not ReservationState.BOOKED:
            raise ConfigurationError(
                f"{reservation_id} is {reservation.state.value}; only "
                f"booked reservations can be canceled"
            )
        reservation.state = ReservationState.CANCELED
        return reservation

    def reservations(self, customer: Optional[str] = None) -> List[Reservation]:
        """All reservations, optionally filtered by customer."""
        return [
            r
            for r in self._reservations.values()
            if customer is None or r.customer == customer
        ]

    # -- capacity math -------------------------------------------------------------

    def _check_calendar_capacity(
        self,
        premises_a: str,
        premises_b: str,
        rate_bps: float,
        start: float,
        end: float,
    ) -> None:
        """Refuse bookings that oversubscribe a terminating OT pool.

        Accounting mirrors how the controller will actually realize the
        booking: the rate decomposes into wavelength components (each
        costing one exact-rate OT at both end PoPs for the whole window)
        plus 1G circuits (each costing one ODU2 tributary slot, i.e.
        1/8 of a 10G OT).
        """
        inventory = self._controller.inventory
        for premises in (premises_a, premises_b):
            pop = inventory.pop_of(premises)
            pool = inventory.transponders.get(pop)
            # Demand per OT rate class, counting this booking plus every
            # live overlapping booking terminating at the same PoP.
            demand = self._ot_demand(rate_bps)
            for other in self._reservations.values():
                if other.state in (
                    ReservationState.CANCELED,
                    ReservationState.COMPLETED,
                    ReservationState.ACTIVATION_FAILED,
                ):
                    continue
                if not other.overlaps(start, end):
                    continue
                if pop in (
                    inventory.pop_of(other.premises_a),
                    inventory.pop_of(other.premises_b),
                ):
                    for rate, cost in self._ot_demand(other.rate_bps).items():
                        demand[rate] = demand.get(rate, 0.0) + cost
            for rate, needed in demand.items():
                capacity = (
                    len([ot for ot in pool.transponders
                         if ot.line_rate_bps == rate])
                    if pool
                    else 0
                )
                if needed > capacity:
                    raise AdmissionError(
                        f"calendar oversubscribed at {pop}: window needs "
                        f"{needed:.1f} x {rate / GBPS:g}G OTs, pool has "
                        f"{capacity}"
                    )

    def _ot_demand(self, rate_bps: float) -> Dict[float, float]:
        """OT demand by rate class for one booking."""
        from repro.core.controller import decompose_rate

        rates = self._controller.wavelength_rates()
        waves, circuits = decompose_rate(rate_bps, rates)
        demand: Dict[float, float] = {}
        for wave in waves:
            demand[wave] = demand.get(wave, 0.0) + 1.0
        if circuits:
            # Each 1G circuit is one tributary slot of a 10G OTN line.
            slot_rate = min(r for r in rates) if rates else 10 * GBPS
            demand[slot_rate] = demand.get(slot_rate, 0.0) + circuits / 8.0
        return demand

    # -- activation ------------------------------------------------------------

    def _activate(self, reservation: Reservation) -> None:
        if reservation.state is not ReservationState.BOOKED:
            return  # canceled in the meantime
        sim = self._controller.sim
        connection = self._controller.request_connection(
            reservation.customer,
            reservation.premises_a,
            reservation.premises_b,
            reservation.rate_bps,
        )
        reservation.connection = connection
        if connection.state is ConnectionState.BLOCKED:
            # Transient contention is expected at window boundaries (the
            # previous window's teardown takes ~10 s); keep retrying
            # while the window has time left.
            if sim.now + ACTIVATION_RETRY_S < reservation.end:
                sim.schedule(
                    ACTIVATION_RETRY_S,
                    self._activate,
                    reservation,
                    label=f"resv-retry:{reservation.reservation_id}",
                )
            else:
                reservation.state = ReservationState.ACTIVATION_FAILED
                reservation.failure_reason = connection.blocked_reason
            return
        reservation.state = ReservationState.ACTIVE

    def _close(self, reservation: Reservation) -> None:
        if reservation.state is not ReservationState.ACTIVE:
            return
        connection = reservation.connection
        if connection is not None and connection.state in (
            ConnectionState.UP,
            ConnectionState.DEGRADED,
            ConnectionState.FAILED,
            ConnectionState.RESTORING,
        ):
            self._controller.teardown_connection(connection.connection_id)
        reservation.state = ReservationState.COMPLETED
