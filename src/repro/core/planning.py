"""Resource planning: sizing the transponder pools against forecasts.

"Ensuring adequate network resources to support anticipated demand from
the CSPs is made more difficult by the existence of dynamic services.
... they need to forecast demand and carefully manage the pool of
GRIPhoN resources.  ... in this network the number of users is smaller
and the cost of a line is far greater, making accurate planning far
more critical."  (paper §4)

The planner treats each node's transponder pool as an Erlang-B loss
system: BoD requests arrive, hold, and depart, and a request finding no
free OT is blocked.  Given a per-premises-pair forecast (arrival rate x
holding time = offered Erlangs) it computes the smallest per-node pool
meeting a target blocking probability — exactly the POTS-style planning
the paper says becomes critical when "the cost of a line is far
greater".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.topo.graph import NetworkGraph


def erlang_b(servers: int, offered_erlangs: float) -> float:
    """Blocking probability of an M/M/c/c loss system.

    Uses the numerically stable recurrence
    ``B(0) = 1;  B(c) = a B(c-1) / (c + a B(c-1))``.

    Raises:
        ConfigurationError: for negative inputs.
    """
    if servers < 0:
        raise ConfigurationError(f"servers must be >= 0, got {servers}")
    if offered_erlangs < 0:
        raise ConfigurationError(
            f"offered load must be >= 0, got {offered_erlangs}"
        )
    if offered_erlangs == 0:
        return 0.0
    blocking = 1.0
    for c in range(1, servers + 1):
        blocking = (offered_erlangs * blocking) / (c + offered_erlangs * blocking)
    return blocking


def servers_for_blocking(offered_erlangs: float, target: float) -> int:
    """Smallest server count with Erlang-B blocking at most ``target``.

    Raises:
        ConfigurationError: for a target outside (0, 1).
    """
    if not 0 < target < 1:
        raise ConfigurationError(f"target must be in (0, 1), got {target}")
    if offered_erlangs < 0:
        raise ConfigurationError("offered load must be >= 0")
    servers = 0
    while erlang_b(servers, offered_erlangs) > target:
        servers += 1
        if servers > 100_000:
            raise ConfigurationError("target unreachable; check inputs")
    return servers


@dataclass(frozen=True)
class DemandForecast:
    """Forecast BoD demand for one premises pair.

    Attributes:
        pop_a / pop_b: The core PoPs terminating the connections.
        arrivals_per_hour: Mean BoD request rate.
        mean_holding_hours: Mean connection lifetime.
    """

    pop_a: str
    pop_b: str
    arrivals_per_hour: float
    mean_holding_hours: float

    def __post_init__(self) -> None:
        if self.arrivals_per_hour < 0 or self.mean_holding_hours <= 0:
            raise ConfigurationError(
                "arrival rate must be >= 0 and holding time > 0"
            )

    @property
    def offered_erlangs(self) -> float:
        """Offered load in Erlangs (simultaneous connections on average)."""
        return self.arrivals_per_hour * self.mean_holding_hours


class ResourcePlanner:
    """Sizes per-node transponder pools from pairwise forecasts."""

    def __init__(self, graph: NetworkGraph) -> None:
        self._graph = graph

    def offered_load_per_node(
        self, forecasts: List[DemandForecast]
    ) -> Dict[str, float]:
        """Erlangs of transponder demand each node terminates.

        A connection consumes one OT at each *end* node (intermediate
        nodes pass through optically, unless a regen is needed — regen
        planning is handled separately via :meth:`regen_load`).
        """
        load: Dict[str, float] = {}
        for forecast in forecasts:
            for node in (forecast.pop_a, forecast.pop_b):
                load[node] = load.get(node, 0.0) + forecast.offered_erlangs
        return load

    def size_pools(
        self,
        forecasts: List[DemandForecast],
        target_blocking: float = 0.01,
        restoration_headroom: int = 1,
    ) -> Dict[str, int]:
        """Per-node OT counts meeting the blocking target.

        Args:
            target_blocking: Acceptable per-node blocking probability.
            restoration_headroom: Extra OTs per node held for automated
                restoration (the "spare resources" of §4); restoration
                re-uses the end OTs in the common case, but regen-site
                changes can demand spares.
        """
        if restoration_headroom < 0:
            raise ConfigurationError("headroom must be >= 0")
        pools = {}
        for node, erlangs in self.offered_load_per_node(forecasts).items():
            pools[node] = (
                servers_for_blocking(erlangs, target_blocking)
                + restoration_headroom
            )
        return pools

    def expected_blocking(
        self, forecasts: List[DemandForecast], pools: Dict[str, int]
    ) -> Dict[str, float]:
        """Erlang-B blocking per node under the given pool sizes."""
        result = {}
        for node, erlangs in self.offered_load_per_node(forecasts).items():
            servers = pools.get(node, 0)
            result[node] = erlang_b(servers, erlangs)
        return result

    def regen_load(
        self,
        forecasts: List[DemandForecast],
        reach_km: float,
    ) -> Dict[str, float]:
        """Erlangs of regenerator demand per intermediate node.

        Routes each forecast on its shortest-km path and walks the reach
        budget to find where regens would land, crediting that node with
        the pair's offered load.
        """
        if reach_km <= 0:
            raise ConfigurationError("reach must be positive")
        load: Dict[str, float] = {}
        for forecast in forecasts:
            path = self._graph.shortest_path(
                forecast.pop_a,
                forecast.pop_b,
                weight=lambda link: link.length_km,
            )
            since = 0.0
            for u, v in zip(path, path[1:]):
                hop = self._graph.link_between(u, v).length_km
                if since + hop > reach_km:
                    load[u] = load.get(u, 0.0) + forecast.offered_erlangs
                    since = hop
                else:
                    since += hop
        return load

    def plan_summary(
        self,
        forecasts: List[DemandForecast],
        target_blocking: float = 0.01,
    ) -> List[Tuple[str, float, int, float]]:
        """Rows of (node, offered erlangs, OTs, expected blocking)."""
        pools = self.size_pools(forecasts, target_blocking)
        blocking = self.expected_blocking(forecasts, pools)
        rows = []
        for node, erlangs in sorted(
            self.offered_load_per_node(forecasts).items()
        ):
            rows.append((node, erlangs, pools[node], blocking[node]))
        return rows
