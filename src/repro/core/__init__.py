"""The GRIPhoN controller — the paper's primary contribution.

"Connection establishment and release based on requests from the CSP are
handled by the GRIPhoN controller.  The controller is responsible for
keeping track of the available network resources in its database,
communication with the network elements (FXC controllers, OTN switch
EMS, ROADM EMS and NTE controllers) in order to create or tear down the
connections ordered by the CSPs, capacity and resource management,
inventory database management, failure detection, localization and
automated restorations."  (paper §2.2)

Sub-modules, in dependency order:

* :mod:`repro.core.inventory` — the controller's resource database;
* :mod:`repro.core.routecache` — generation-stamped LRU route cache;
* :mod:`repro.core.rwa` — routing and wavelength assignment;
* :mod:`repro.core.connection` — customer connection records;
* :mod:`repro.core.provisioning` — resource claiming with rollback plus
  the timed EMS-step choreography for setup/teardown;
* :mod:`repro.core.grooming` — the OTN sub-wavelength path engine;
* :mod:`repro.core.admission` — customers, quotas, isolation;
* :mod:`repro.core.controller` — the controller facade (orders,
  failure detection and automated restoration, bridge-and-roll);
* :mod:`repro.core.maintenance` — planned-maintenance orchestration;
* :mod:`repro.core.regrooming` — §4's network re-grooming;
* :mod:`repro.core.planning` — §4's Erlang-B resource planning;
* :mod:`repro.core.calendar` — advance reservations (scheduled BoD);
* :mod:`repro.core.reclamation` — idle OTN-line garbage collection;
* :mod:`repro.core.service` — the per-customer BoD service API;
* :mod:`repro.core.gui` — customer and operator text views.
"""

from repro.core.admission import AdmissionControl, CustomerProfile
from repro.core.calendar import Reservation, ReservationBook, ReservationState
from repro.core.connection import Connection, ConnectionKind, ConnectionState
from repro.core.controller import GriphonController
from repro.core.inventory import InventoryDatabase
from repro.core.maintenance import MaintenanceScheduler
from repro.core.planning import DemandForecast, ResourcePlanner
from repro.core.reclamation import OtnLineReclaimer
from repro.core.regrooming import RegroomingEngine
from repro.core.routecache import RouteCache
from repro.core.rwa import RwaEngine, RwaPlan
# ServiceDegraded/SetupFailed moved to repro.api; re-exported here (and
# shimmed in repro.core.service) so historical imports keep working.
from repro.api import ServiceDegraded, SetupFailed
from repro.core.service import BodService, FaultReport

__all__ = [
    "AdmissionControl",
    "CustomerProfile",
    "Reservation",
    "ReservationBook",
    "ReservationState",
    "Connection",
    "ConnectionKind",
    "ConnectionState",
    "GriphonController",
    "InventoryDatabase",
    "MaintenanceScheduler",
    "DemandForecast",
    "ResourcePlanner",
    "OtnLineReclaimer",
    "RegroomingEngine",
    "RouteCache",
    "RwaEngine",
    "RwaPlan",
    "BodService",
    "FaultReport",
    "ServiceDegraded",
    "SetupFailed",
]
