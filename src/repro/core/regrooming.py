"""Network re-grooming: migrating connections to better paths.

"As the GRIPhoN network grows, additional routes between nodes will be
added.  This will make paths that were previously unavailable more
appropriate for some connections than the originally established paths.
... The process of re-provisioning connections to achieve an improved
network configuration is called re-grooming.  In order to perform
re-grooming with minimal impact to the CSP, the GRIPhoN bridge-and-roll
can be used to migrate the wavelength connections."  (paper §4)

The engine scans live wavelength connections, scores each against the
best currently-available route (by fiber kilometers, a latency proxy),
and migrates the worst offenders via bridge-and-roll — each migration
costing only the ~50 ms roll hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.connection import ConnectionState
from repro.core.controller import GriphonController
from repro.errors import ConfigurationError, GriphonError


@dataclass
class RegroomCandidate:
    """One connection that would benefit from re-grooming.

    Attributes:
        connection_id: The connection to migrate.
        current_km: Fiber length of its current route.
        best_km: Fiber length of the best available disjoint route.
    """

    connection_id: str
    current_km: float
    best_km: float

    @property
    def improvement(self) -> float:
        """Fractional km saving if migrated, in [0, 1)."""
        if self.current_km <= 0:
            return 0.0
        return max(0.0, (self.current_km - self.best_km) / self.current_km)


@dataclass
class RegroomReport:
    """Outcome of one re-grooming pass."""

    scanned: int = 0
    candidates: List[RegroomCandidate] = field(default_factory=list)
    migrated: List[str] = field(default_factory=list)
    failures: Dict[str, str] = field(default_factory=dict)


class RegroomingEngine:
    """Scans for and executes beneficial connection migrations."""

    def __init__(
        self,
        controller: GriphonController,
        improvement_threshold: float = 0.10,
    ) -> None:
        if not 0 <= improvement_threshold < 1:
            raise ConfigurationError(
                f"threshold must be in [0, 1), got {improvement_threshold}"
            )
        self._controller = controller
        self._threshold = improvement_threshold

    # -- scanning --------------------------------------------------------------

    def scan(self) -> List[RegroomCandidate]:
        """Find UP wavelength connections with a materially shorter
        disjoint route available right now.

        The candidate route must satisfy the bridge-and-roll constraint
        (resource-disjoint from the current path), since that is how the
        migration will be executed.
        """
        controller = self._controller
        graph = controller.inventory.graph
        weight = lambda link: link.length_km  # noqa: E731
        candidates = []
        for connection in controller.connections.values():
            if connection.state is not ConnectionState.UP:
                continue
            if len(connection.lightpath_ids) != 1 or connection.circuit_ids:
                continue
            if controller.migration_lock_holder(connection.connection_id):
                # Another migration driver (the global re-optimization
                # executor, or an earlier pass of this engine) already
                # owns this connection's move — don't plan against a
                # route that is about to change under us.
                continue
            lightpath = controller.inventory.lightpaths.get(
                connection.lightpath_ids[0]
            )
            if lightpath is None:
                continue
            current_km = graph.path_length_km(lightpath.path)
            try:
                plan = controller.rwa.plan(
                    lightpath.source,
                    lightpath.destination,
                    lightpath.rate_bps,
                    avoid_srlgs_of=lightpath.path,
                )
            except GriphonError:
                continue  # no disjoint alternative exists
            if controller.inventory.plant.path_penalty_db(plan.path) > 0.0:
                # Never regroom *onto* a gray-degraded route; the SLO
                # engine would immediately have to move it again.
                continue
            best_km = graph.path_length_km(plan.path)
            candidate = RegroomCandidate(
                connection.connection_id, current_km, best_km
            )
            if candidate.improvement > self._threshold:
                candidates.append(candidate)
        candidates.sort(key=lambda c: c.improvement, reverse=True)
        return candidates

    # -- execution -------------------------------------------------------------

    def run_pass(
        self,
        max_migrations: Optional[int] = None,
        on_done: Optional[Callable[[RegroomReport], None]] = None,
    ) -> RegroomReport:
        """Scan and migrate up to ``max_migrations`` connections.

        Migrations run as bridge-and-roll processes on the simulator;
        call ``sim.run()`` afterwards to let them complete.  The report's
        ``migrated`` list is filled in as each migration lands.

        Every migration holds the connection's migration lock under the
        ``"regrooming"`` holder tag, so this engine and the global
        re-optimization executor cannot roll the same connection
        concurrently; a connection locked between :meth:`scan` and the
        roll is recorded as a failure instead of racing.
        """
        report = RegroomReport()
        report.scanned = sum(
            1
            for c in self._controller.connections.values()
            if c.state is ConnectionState.UP
        )
        report.candidates = self.scan()
        to_migrate = report.candidates
        if max_migrations is not None:
            to_migrate = to_migrate[:max_migrations]
        pending = {"count": len(to_migrate)}

        def settled(result: dict) -> None:
            if result["outcome"] == "completed":
                report.migrated.append(result["connection_id"])
            else:
                report.failures[result["connection_id"]] = "aborted"
            pending["count"] -= 1
            if pending["count"] == 0 and on_done is not None:
                on_done(report)

        for candidate in to_migrate:
            try:
                self._controller.bridge_and_roll(
                    candidate.connection_id,
                    lock_holder="regrooming",
                    on_settled=settled,
                )
            except GriphonError as exc:
                report.failures[candidate.connection_id] = str(exc)
                pending["count"] -= 1
        if pending["count"] == 0 and on_done is not None:
            on_done(report)
        return report
