"""Reclaiming idle OTN lines: intelligent re-use of the resource pool.

"The carrier also benefits from the intelligent re-use of the pool of
resources across multiple customers" (paper §1).  OTN lines are stood up
on demand, each consuming a wavelength plus two transponders.  When the
last circuit leaves a line, that capital sits idle.  The reclaimer
watches for lines that have been empty longer than a holding time and
tears their underlying wavelength down, returning the OTs and the
channel to the shared pool — while the holding time avoids thrashing
when demand is merely bursty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.controller import GriphonController
from repro.errors import ConfigurationError
from repro.sim.process import Process


@dataclass
class ReclamationReport:
    """Outcome of one reclamation sweep."""

    scanned: int = 0
    reclaimed: List[str] = field(default_factory=list)
    kept_busy: int = 0
    kept_young: int = 0


class OtnLineReclaimer:
    """Tears down OTN lines that have been idle past a holding time."""

    def __init__(
        self,
        controller: GriphonController,
        holding_time_s: float = 3600.0,
    ) -> None:
        if holding_time_s < 0:
            raise ConfigurationError(
                f"holding time must be >= 0, got {holding_time_s}"
            )
        self._controller = controller
        self._holding_time_s = holding_time_s
        # line id -> when it was last seen carrying zero circuits.
        self._idle_since: Dict[str, float] = {}

    def sweep(self) -> ReclamationReport:
        """Scan all lines; reclaim those idle past the holding time.

        Reclamation releases the line's tributary capacity records,
        unregisters it from the switches' viewpoint (by deleting it from
        the inventory), and tears down the underlying lightpath through
        the normal (timed) teardown workflow.
        """
        controller = self._controller
        now = controller.sim.now
        report = ReclamationReport()
        for line_id, line in list(controller.inventory.otn_lines.items()):
            report.scanned += 1
            # Busy means carrying circuits *or* reserved as shared-mesh
            # backup capacity — reclaiming a backup line would silently
            # strip protection from live circuits.
            reserved = controller.protection.reserved_slots(line_id)
            if line.owners() or reserved > 0:
                report.kept_busy += 1
                self._idle_since.pop(line_id, None)
                continue
            first_seen = self._idle_since.setdefault(line_id, now)
            if now - first_seen < self._holding_time_s:
                report.kept_young += 1
                continue
            self._reclaim(line_id)
            report.reclaimed.append(line_id)
        return report

    def idle_lines(self) -> List[str]:
        """Lines currently carrying zero circuits."""
        return [
            line_id
            for line_id, line in self._controller.inventory.otn_lines.items()
            if not line.owners()
        ]

    # -- internals ------------------------------------------------------------

    def _reclaim(self, line_id: str) -> None:
        controller = self._controller
        inventory = controller.inventory
        line = inventory.otn_lines.pop(line_id)
        self._idle_since.pop(line_id, None)
        # Detach from both switches.
        for node in (line.a, line.b):
            switch = inventory.otn_switches.get(node)
            if switch is not None:
                switch._lines.pop(line_id, None)
        # Remove from the shared-mesh manager's capacity view.
        controller.protection._lines.pop(line_id, None)
        controller.protection._reserved.pop(line_id, None)
        # Tear the underlying wavelength down (timed workflow).
        lightpath_id = controller._line_lightpath.pop(line_id, None)
        if lightpath_id is not None:
            lightpath = inventory.lightpaths.get(lightpath_id)
            if lightpath is not None:
                Process(
                    controller.sim,
                    controller.provisioner.teardown_workflow(
                        lightpath, include_fxc=False
                    ),
                    label=f"reclaim:{line_id}",
                )

    def schedule_periodic(self, interval_s: float, stop_at: float) -> None:
        """Run sweeps every ``interval_s`` seconds until ``stop_at``.

        The stop time is mandatory so the periodic event chain cannot
        keep an unbounded ``sim.run()`` alive forever.

        Raises:
            ConfigurationError: for a non-positive interval or a stop
                time in the past.
        """
        if interval_s <= 0:
            raise ConfigurationError(
                f"interval must be positive, got {interval_s}"
            )
        sim = self._controller.sim
        if stop_at <= sim.now:
            raise ConfigurationError(
                f"stop_at={stop_at} is not after now={sim.now}"
            )

        def tick() -> None:
            self.sweep()
            if sim.now + interval_s <= stop_at:
                sim.schedule(interval_s, tick, label="reclaim-sweep")

        sim.schedule(interval_s, tick, label="reclaim-sweep")
