"""Customer-facing connection records.

A connection is what the CSP sees in its GUI: premises-to-premises
bandwidth at a requested rate.  Internally it maps either to one
lightpath (wavelength service), to one ODU circuit (sub-wavelength
service), or — for composite rates like the paper's 12 Gbps example —
to a bundle of both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConnectionStateError
from repro.units import format_rate


class ConnectionKind(enum.Enum):
    """Which layer(s) realize the connection."""

    WAVELENGTH = "wavelength"
    SUBWAVELENGTH = "sub-wavelength"
    COMPOSITE = "composite"
    PACKET = "packet-evc"


class ConnectionState(enum.Enum):
    """Customer-visible life cycle of a connection."""

    REQUESTED = "requested"
    SETTING_UP = "setting_up"
    UP = "up"
    DEGRADED = "degraded"
    FAILED = "failed"
    RESTORING = "restoring"
    TEARING_DOWN = "tearing_down"
    RELEASED = "released"
    BLOCKED = "blocked"


_ALLOWED = {
    ConnectionState.REQUESTED: {
        ConnectionState.SETTING_UP,
        ConnectionState.BLOCKED,
    },
    ConnectionState.SETTING_UP: {
        ConnectionState.UP,
        ConnectionState.DEGRADED,
        ConnectionState.BLOCKED,
    },
    ConnectionState.UP: {
        ConnectionState.DEGRADED,
        ConnectionState.FAILED,
        ConnectionState.RESTORING,
        ConnectionState.TEARING_DOWN,
    },
    ConnectionState.DEGRADED: {
        ConnectionState.UP,
        ConnectionState.FAILED,
        ConnectionState.RESTORING,
        ConnectionState.TEARING_DOWN,
    },
    ConnectionState.FAILED: {
        ConnectionState.RESTORING,
        ConnectionState.UP,
        ConnectionState.TEARING_DOWN,
    },
    ConnectionState.RESTORING: {
        ConnectionState.UP,
        ConnectionState.FAILED,
        ConnectionState.TEARING_DOWN,
    },
    ConnectionState.TEARING_DOWN: {ConnectionState.RELEASED},
    ConnectionState.RELEASED: set(),
    ConnectionState.BLOCKED: set(),
}


@dataclass
class Connection:
    """One customer connection.

    Attributes:
        connection_id: Unique id shown in the customer GUI.
        customer: Owning CSP name.
        premises_a: Source data-center premises.
        premises_b: Destination data-center premises.
        rate_bps: Committed rate.
        kind: Realizing layer(s).
        lightpath_ids: Underlying lightpaths (wavelength / composite).
        circuit_ids: Underlying ODU circuits (sub-wavelength / composite).
        evc_ids: Underlying Ethernet virtual circuits (packet services
            below 1 Gbps, per Fig. 2's service categorization).
        requested_at / up_at / released_at: Simulation timestamps.
        outage_started_at: Set while the connection is failed/restoring.
        total_outage_s: Accumulated unavailable seconds.
        blocked_reason: Human-readable reason when state is BLOCKED.
    """

    connection_id: str
    customer: str
    premises_a: str
    premises_b: str
    rate_bps: float
    kind: ConnectionKind
    lightpath_ids: List[str] = field(default_factory=list)
    circuit_ids: List[str] = field(default_factory=list)
    evc_ids: List[str] = field(default_factory=list)
    state: ConnectionState = ConnectionState.REQUESTED
    requested_at: Optional[float] = None
    up_at: Optional[float] = None
    released_at: Optional[float] = None
    outage_started_at: Optional[float] = None
    total_outage_s: float = 0.0
    blocked_reason: str = ""
    nte_interfaces: List[tuple] = field(default_factory=list)
    #: FXC cross-connects held: (site, port) — one port identifies the pair.
    fxc_ports: List[tuple] = field(default_factory=list)
    #: OTN switch client ports held: (node, port).
    otn_client_ports: List[tuple] = field(default_factory=list)
    #: Trace id of the order's root span (None when tracing is off).
    trace_id: Optional[str] = None
    #: The EquipmentError that aborted (part of) setup; None on the
    #: happy path.  Set alongside DEGRADED / setup-failed BLOCKED.
    setup_error: Optional[Exception] = None
    #: Why the connection is gray-degraded (e.g. ``"osnr-drift:NYC=CHI"``).
    #: Set by the SLO engine when it escalates an SLA breach it could not
    #: remediate; cleared when the SLA recovers.  Empty for hard faults.
    degradation_cause: str = ""
    #: OSNR margin (dB) recorded at escalation time, alongside
    #: :attr:`degradation_cause`.
    degradation_margin_db: Optional[float] = None
    #: Name of the SLO policy whose breach caused the escalation.
    degradation_policy: str = ""

    @property
    def setup_duration(self) -> Optional[float]:
        """Seconds from request to service, or None while pending."""
        if self.requested_at is None or self.up_at is None:
            return None
        return self.up_at - self.requested_at

    def transition(self, new_state: ConnectionState) -> None:
        """Move the state machine to ``new_state``.

        Raises:
            ConnectionStateError: for a disallowed transition.
        """
        if new_state not in _ALLOWED[self.state]:
            raise ConnectionStateError(
                f"connection {self.connection_id}: cannot go "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def begin_outage(self, now: float) -> None:
        """Record the start of an unavailability period."""
        if self.outage_started_at is None:
            self.outage_started_at = now

    def end_outage(self, now: float) -> None:
        """Close the current unavailability period and accumulate it."""
        if self.outage_started_at is not None:
            self.total_outage_s += now - self.outage_started_at
            self.outage_started_at = None

    def __str__(self) -> str:
        return (
            f"{self.connection_id} [{self.state.value}] "
            f"{self.premises_a} <-> {self.premises_b} "
            f"@ {format_rate(self.rate_bps)} ({self.kind.value})"
        )
