"""Generation-stamped LRU cache for RWA candidate routes.

Yen's k-shortest-paths dominates the cost of :meth:`RwaEngine.plan`;
on a warm controller most requests repeat (source, destination) pairs
against an unchanged topology, so the candidate routes can be reused
wholesale.  Correctness comes from two monotonic counters:

* the topology **generation** (:attr:`NetworkGraph.generation`), bumped
  on every ``add_node``/``add_link``;
* the fiber plant's **failure epoch**
  (:attr:`FiberPlant.failure_epoch`), bumped on every cut and repair.

Each cache entry is stamped with the (generation, epoch) pair current
when it was computed; a lookup whose stamps do not both match is a miss
and the stale entry is dropped.  Wavelength occupancy is deliberately
*not* part of the stamp: routes do not depend on which channels are
lit, and wavelength picking always runs live against the per-link
masks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

#: A fully-normalized cache key: (source, dest, k, excluded links, excluded nodes).
RouteKey = Tuple[str, str, int, FrozenSet[Tuple[str, str]], FrozenSet[str]]


def make_route_key(
    source: str,
    destination: str,
    k: int,
    excluded_links: Iterable[Tuple[str, str]] = (),
    excluded_nodes: Iterable[str] = (),
) -> RouteKey:
    """Normalize a plan request into a hashable cache key."""
    return (
        source,
        destination,
        k,
        frozenset(tuple(key) for key in excluded_links),
        frozenset(excluded_nodes),
    )


class RouteCache:
    """A bounded LRU cache of candidate routes with stamp-based invalidation."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[RouteKey, Tuple[int, int, List[List[str]]]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    @property
    def capacity(self) -> int:
        """Maximum number of cached (request, routes) entries."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, key: RouteKey, generation: int, epoch: int
    ) -> Optional[List[List[str]]]:
        """Return cached routes for ``key`` if stamped with the live state.

        A stale entry (either stamp moved) is evicted and counted as an
        invalidation plus a miss.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        cached_generation, cached_epoch, routes = entry
        if cached_generation != generation or cached_epoch != epoch:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        # Copy the outer list: callers may filter/reorder candidates.
        return list(routes)

    def get_ref(
        self, key: RouteKey, generation: int, epoch: int
    ) -> Optional[List[List[str]]]:
        """Like :meth:`get` but returns the cached list itself, uncopied.

        For read-only callers on a hot path (the batched planner serves
        the same routes to many requests in one round); the caller must
        not mutate the returned list or its paths.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        cached_generation, cached_epoch, routes = entry
        if cached_generation != generation or cached_epoch != epoch:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return routes

    def put(
        self, key: RouteKey, generation: int, epoch: int, routes: List[List[str]]
    ) -> None:
        """Store ``routes`` under ``key`` stamped with the live state."""
        self._entries[key] = (generation, epoch, list(routes))
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()

    def stats(self) -> dict:
        """Hit/miss/invalidation/eviction counters plus current size."""
        total = self.hits + self.misses
        return {
            "size": len(self._entries),
            "capacity": self._capacity,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"RouteCache(size={len(self._entries)}, capacity={self._capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
