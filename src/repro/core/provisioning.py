"""Lightpath provisioning: resource claiming and EMS-step choreography.

Provisioning happens in two phases, mirroring how an EMS-driven network
behaves:

1. **Claim** (instantaneous): when the controller accepts an order it
   locks every resource — transponders, regenerators, ROADM ports and
   cross-connects, wavelength channels — in its inventory.  A partial
   failure rolls everything back and raises, so a blocked order leaves
   no residue.

2. **Execute** (simulated time): the EMS configuration steps and optical
   tasks run as a generator that yields step durations.  This phase is
   what takes 60–70 seconds in the testbed; its structure (two laser
   tunings, two add/drop configurations, one express configuration per
   intermediate ROADM, one equalization per link, one verification)
   is what makes Table 2's setup time grow with path length.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Tuple

from repro.core.inventory import InventoryDatabase
from repro.core.rwa import RwaPlan
from repro.errors import EquipmentError, GriphonError, TransponderUnavailableError
from repro.ems.latency import LatencyModel
from repro.ems.roadm_ems import RoadmEms
from repro.faults.resilient import ResilientExecutor
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Span, Tracer
from repro.optical.lightpath import Lightpath, LightpathState

#: A timed EMS/optical step: (stage, label, duration_seconds).  Steps in
#: the same stage touch independent elements and may run concurrently in
#: the parallel-EMS ablation.
Step = Tuple[str, str, float]

#: Which management system executes each workflow stage — the key the
#: fault plan matches on and the circuit breaker partitions by.
_STAGE_EMS = {
    "fxc": "fxc_ctl",
    "tune": "roadm_ems",
    "roadm": "roadm_ems",
    "equalize": "roadm_ems",
    "verify": "roadm_ems",
    "release": "roadm_ems",
    "order": "controller",
}


def _step_ems(stage: str) -> str:
    """The EMS responsible for a workflow stage."""
    return _STAGE_EMS.get(stage, stage)


def _step_element(stage: str, label: str) -> str:
    """The network element a step labeled ``label`` touches."""
    if "@" in label:
        return label.rsplit("@", 1)[1]
    if label.startswith(stage + " "):
        return label[len(stage) + 1 :]
    return label


def _compensation_step(stage: str, label: str) -> Optional[str]:
    """The latency-model op that undoes an executed setup step.

    Stages with no hardware side effect (order, equalize, verify) need
    no compensation and return ``None``.
    """
    if stage == "fxc":
        return "fxc.disconnect"
    if stage == "tune":
        return "ot.release"
    if stage == "roadm":
        if label.startswith("express"):
            return "roadm.express.remove"
        return "roadm.add_drop.remove"
    return None


class LightpathProvisioner:
    """Claims resources for and choreographs wavelength connections."""

    def __init__(
        self,
        inventory: InventoryDatabase,
        roadm_ems: RoadmEms,
        latency: LatencyModel,
        parallel_ems: bool = False,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        resilience: Optional[ResilientExecutor] = None,
    ) -> None:
        self._inventory = inventory
        self._roadm_ems = roadm_ems
        self._latency = latency
        self._parallel_ems = parallel_ems
        self._tracer = tracer if tracer is not None else Tracer()
        self._metrics = metrics
        self._resilience = resilience

    # -- phase 1: claim -----------------------------------------------------------

    def claim(self, plan: RwaPlan, reuse_ots: Optional[List[str]] = None) -> Lightpath:
        """Lock every resource the plan needs; returns the lightpath record.

        Args:
            plan: The RWA plan to realize.
            reuse_ots: Transponder ids at (source, destination) to reuse
                instead of allocating fresh ones — restoration keeps the
                original end transponders and only retunes them.

        Raises:
            TransponderUnavailableError / WavelengthBlockedError /
            EquipmentError: when a resource is gone; all partial
            allocations are rolled back first.
        """
        lightpath_id = self._inventory.next_lightpath_id()
        lightpath = Lightpath(
            lightpath_id,
            list(plan.path),
            plan.rate_bps,
            segments=[seg for seg in plan.segments],
            regen_sites=list(plan.regen_sites),
        )
        undo: List[Callable[[], None]] = []
        try:
            self._claim_end_transponders(lightpath, reuse_ots, undo)
            self._claim_regens(lightpath, undo)
            self._claim_roadm_crossconnects(lightpath, undo)
            self._claim_channels(lightpath, undo)
        except GriphonError:
            for action in reversed(undo):
                action()
            raise
        self._inventory.register_lightpath(lightpath)
        return lightpath

    def release(self, lightpath: Lightpath) -> None:
        """Free every resource a lightpath holds (bookkeeping only)."""
        owner = lightpath.lightpath_id
        inv = self._inventory
        # Channels.
        for segment in lightpath.segments:
            for u, v in zip(segment.nodes, segment.nodes[1:]):
                link = inv.plant.dwdm_link(u, v)
                if link.owner_of(segment.channel) == owner:
                    link.release(segment.channel, owner)
        # ROADM cross-connects.
        for node, roadm in inv.roadms.items():
            for port in roadm.ports:
                if port.owner == owner:
                    roadm.disconnect_add_drop(port.port_id, owner)
        for segment in lightpath.segments:
            nodes = segment.nodes
            for i in range(1, len(nodes) - 1):
                roadm = inv.roadms.get(nodes[i])
                if roadm is None:
                    continue
                try:
                    roadm.disconnect_express(
                        nodes[i - 1], nodes[i + 1], segment.channel, owner
                    )
                except GriphonError:
                    pass  # already removed or was a regen hop
        # Transponders and regens.
        for ot_id in lightpath.ot_ids:
            node = ot_id.split(":")[1]
            ot = inv.transponders[node].get(ot_id)
            if ot.owner == owner:
                ot.release(owner)
        for regen_id in lightpath.regen_ids:
            node = regen_id.split(":")[1]
            for regen in inv.regens[node].regenerators:
                if regen.regen_id == regen_id and regen.owner == owner:
                    regen.release(owner)
        inv.forget_lightpath(lightpath.lightpath_id)

    # -- phase 2: execute ---------------------------------------------------------

    def setup_steps(self, lightpath: Lightpath, include_fxc: bool = True) -> List[Step]:
        """The timed EMS/optical steps to bring a claimed lightpath up."""
        sample = self._latency.sample
        steps: List[Step] = [("order", "controller.order", sample("controller.order"))]
        if include_fxc:
            steps.append(("fxc", f"fxc@{lightpath.source}", sample("fxc.connect")))
            steps.append(
                ("fxc", f"fxc@{lightpath.destination}", sample("fxc.connect"))
            )
        steps.append(("tune", f"ot@{lightpath.source}", sample("ot.tune")))
        steps.append(("tune", f"ot@{lightpath.destination}", sample("ot.tune")))
        steps.append(
            ("roadm", f"add-drop@{lightpath.source}", sample("roadm.add_drop"))
        )
        steps.append(
            ("roadm", f"add-drop@{lightpath.destination}", sample("roadm.add_drop"))
        )
        regen_sites = set(lightpath.regen_sites)
        for node in lightpath.path[1:-1]:
            if node in regen_sites:
                # A regen hop is a drop + re-add: two add/drop configs.
                steps.append(
                    ("roadm", f"regen-drop@{node}", sample("roadm.add_drop"))
                )
                steps.append(
                    ("roadm", f"regen-add@{node}", sample("roadm.add_drop"))
                )
            else:
                steps.append(("roadm", f"express@{node}", sample("roadm.express")))
        for u, v in zip(lightpath.path, lightpath.path[1:]):
            steps.append(
                ("equalize", f"equalize {u}={v}", self._roadm_ems.equalize_link(u, v))
            )
        steps.append(
            ("verify", "end-to-end verify", self._roadm_ems.verify_lightpath())
        )
        return steps

    def teardown_steps(
        self, lightpath: Lightpath, include_fxc: bool = True
    ) -> List[Step]:
        """The timed steps to tear a lightpath down (about ten seconds)."""
        sample = self._latency.sample
        steps: List[Step] = [
            ("order", "controller.release", sample("controller.release"))
        ]
        if include_fxc:
            steps.append(("fxc", f"fxc@{lightpath.source}", sample("fxc.disconnect")))
            steps.append(
                ("fxc", f"fxc@{lightpath.destination}", sample("fxc.disconnect"))
            )
        steps.append(
            ("roadm", f"remove@{lightpath.source}", sample("roadm.add_drop.remove"))
        )
        steps.append(
            (
                "roadm",
                f"remove@{lightpath.destination}",
                sample("roadm.add_drop.remove"),
            )
        )
        regen_sites = set(lightpath.regen_sites)
        for node in lightpath.path[1:-1]:
            step = (
                "roadm.add_drop.remove" if node in regen_sites else "roadm.express.remove"
            )
            steps.append(("roadm", f"remove@{node}", sample(step)))
        steps.append(("release", f"ot@{lightpath.source}", sample("ot.release")))
        steps.append(("release", f"ot@{lightpath.destination}", sample("ot.release")))
        return steps

    def total_duration(self, steps: List[Step]) -> float:
        """Wall-clock duration of a step list under the EMS mode.

        Sequential EMS sums all steps; the parallel-EMS ablation runs
        steps within one stage concurrently (duration = stage max).
        """
        if not self._parallel_ems:
            return sum(duration for _, _, duration in steps)
        total = 0.0
        current_stage: Optional[str] = None
        stage_max = 0.0
        for stage, _, duration in steps:
            if stage != current_stage:
                total += stage_max
                stage_max = 0.0
                current_stage = stage
            stage_max = max(stage_max, duration)
        return total + stage_max

    def setup_workflow(
        self,
        lightpath: Lightpath,
        include_fxc: bool = True,
        on_up: Optional[Callable[[Lightpath], None]] = None,
        parent_span: Optional[Span] = None,
    ) -> Generator[float, None, Lightpath]:
        """A generator bringing the lightpath up step by timed step.

        When tracing is enabled, emits a ``lightpath.setup`` span whose
        ``ems.<stage>`` children cover every timed step — by
        construction their durations sum to the workflow's end-to-end
        duration (the Table 2 per-phase breakdown).

        When a resilient executor is wired in and an EMS command fails
        for good (retries exhausted or breaker open), the workflow turns
        into a compensating saga: every executed step is undone in
        reverse order, every claimed resource is released, and the
        lightpath ends RELEASED with ``setup_error`` set.
        """
        with self._tracer.span(
            "lightpath.setup",
            parent=parent_span,
            lightpath=lightpath.lightpath_id,
            hops=len(lightpath.path) - 1,
        ) as span:
            lightpath.transition(LightpathState.SETTING_UP)
            steps = self.setup_steps(lightpath, include_fxc)
            total = 0.0
            executed: List[Step] = []
            failure: Optional[EquipmentError] = None
            for stage, label, duration in self._stage_spans(steps):
                with span.child(f"ems.{stage}", label=label) as step_span:
                    if self._resilience is None:
                        yield duration
                    else:
                        try:
                            duration = yield from self._resilience.execute(
                                _step_ems(stage),
                                _step_element(stage, label),
                                stage,
                                duration,
                                parent_span=step_span,
                            )
                        except EquipmentError as exc:
                            failure = exc
                            step_span.set_tag("outcome", "failed")
                if failure is not None:
                    break
                executed.append((stage, label, duration))
                total += duration
            if failure is not None:
                yield from self._compensate(lightpath, executed, span, failure)
                return lightpath
            lightpath.transition(LightpathState.UP)
            # A fiber along the route may have been cut while the EMS
            # steps were running; end-to-end verification catches that.
            if not self._inventory.plant.path_is_up(lightpath.path):
                lightpath.transition(LightpathState.FAILED)
                span.set_tag("outcome", "failed")
                if self._metrics is not None:
                    self._metrics.inc("lightpath.setup_failed")
                return lightpath
            span.set_tag("outcome", "up")
            if self._metrics is not None:
                self._metrics.observe("lightpath.setup_s", total)
            if on_up is not None:
                on_up(lightpath)
            return lightpath

    def _compensate(
        self,
        lightpath: Lightpath,
        executed: List[Step],
        span: Span,
        failure: EquipmentError,
    ) -> Generator[float, None, None]:
        """Unwind the executed setup steps and free every claimed resource.

        Compensation runs best-effort at teardown speed: each executed
        step with a hardware side effect gets one undo command (no
        retries — we are already giving up), then the claim-phase
        bookkeeping is rolled back via :meth:`release`, leaving zero
        residue in the inventory.
        """
        lightpath.setup_error = failure
        with span.child("ems.rollback", reason=str(failure)) as rollback_span:
            for stage, label, _duration in reversed(executed):
                comp = _compensation_step(stage, label)
                if comp is None:
                    continue
                with rollback_span.child(f"ems.{stage}.undo", label=label):
                    yield self._latency.sample(comp)
        lightpath.transition(LightpathState.RELEASED)
        self.release(lightpath)
        span.set_tag("outcome", "aborted").set_tag("error", str(failure))
        if self._metrics is not None:
            self._metrics.inc("lightpath.setup_aborted")

    def teardown_workflow(
        self,
        lightpath: Lightpath,
        include_fxc: bool = True,
        on_released: Optional[Callable[[Lightpath], None]] = None,
        parent_span: Optional[Span] = None,
    ) -> Generator[float, None, Lightpath]:
        """A generator tearing the lightpath down, then freeing resources."""
        with self._tracer.span(
            "lightpath.teardown",
            parent=parent_span,
            lightpath=lightpath.lightpath_id,
            hops=len(lightpath.path) - 1,
        ) as span:
            lightpath.transition(LightpathState.TEARING_DOWN)
            steps = self.teardown_steps(lightpath, include_fxc)
            total = 0.0
            for stage, label, duration in self._stage_spans(steps):
                with span.child(f"ems.{stage}", label=label) as step_span:
                    if self._resilience is None:
                        yield duration
                    else:
                        # Teardown must always complete: exhausted
                        # retries force the command rather than raise.
                        duration = yield from self._resilience.execute(
                            _step_ems(stage),
                            _step_element(stage, label),
                            stage,
                            duration,
                            parent_span=step_span,
                            best_effort=True,
                        )
                total += duration
            lightpath.transition(LightpathState.RELEASED)
            self.release(lightpath)
            if self._metrics is not None:
                self._metrics.observe("lightpath.teardown_s", total)
            if on_released is not None:
                on_released(lightpath)
            return lightpath

    # -- claim internals --------------------------------------------------------

    def _claim_end_transponders(
        self,
        lightpath: Lightpath,
        reuse_ots: Optional[List[str]],
        undo: List[Callable[[], None]],
    ) -> None:
        owner = lightpath.lightpath_id
        inv = self._inventory
        if reuse_ots is not None:
            if len(reuse_ots) != 2:
                raise TransponderUnavailableError(
                    f"reuse_ots needs exactly 2 ids, got {len(reuse_ots)}"
                )
            ends = (lightpath.source, lightpath.destination)
            for node, ot_id in zip(ends, reuse_ots):
                ot = inv.transponders[node].get(ot_id)
                ot.allocate(owner)
                undo.append(lambda ot=ot: ot.release(owner))
                lightpath.ot_ids.append(ot.ot_id)
            return
        for node in (lightpath.source, lightpath.destination):
            ot = inv.transponders[node].allocate(lightpath.rate_bps, owner)
            undo.append(lambda ot=ot: ot.release(owner))
            lightpath.ot_ids.append(ot.ot_id)

    def _claim_regens(
        self, lightpath: Lightpath, undo: List[Callable[[], None]]
    ) -> None:
        owner = lightpath.lightpath_id
        for node in lightpath.regen_sites:
            regen = self._inventory.regens[node].allocate(lightpath.rate_bps, owner)
            undo.append(lambda regen=regen: regen.release(owner))
            lightpath.regen_ids.append(regen.regen_id)

    def _claim_roadm_crossconnects(
        self, lightpath: Lightpath, undo: List[Callable[[], None]]
    ) -> None:
        owner = lightpath.lightpath_id
        inv = self._inventory
        path = lightpath.path
        regen_sites = set(lightpath.regen_sites)

        def connect_port(node: str, degree: str, channel: int) -> None:
            roadm = inv.roadms[node]
            free = roadm.free_ports(degree=degree, channel=channel)
            if not free:
                raise TransponderUnavailableError(
                    f"no free add/drop port at {node} for channel {channel}"
                )
            port = free[0]
            roadm.connect_add_drop(port.port_id, degree, channel, owner)
            undo.append(
                lambda: inv.roadms[node].disconnect_add_drop(port.port_id, owner)
            )

        # End nodes: one add/drop port each.
        connect_port(path[0], path[1], lightpath.segments[0].channel)
        connect_port(path[-1], path[-2], lightpath.segments[-1].channel)
        # Intermediate nodes, segment by segment.
        channel_at: dict = {}
        for segment in lightpath.segments:
            for node in segment.nodes:
                channel_at.setdefault(node, []).append(segment.channel)
        for i, node in enumerate(path[1:-1], start=1):
            prev_node, next_node = path[i - 1], path[i + 1]
            if node in regen_sites:
                # Drop the incoming segment, re-add the outgoing one.
                incoming = self._segment_channel(lightpath, node, incoming=True)
                outgoing = self._segment_channel(lightpath, node, incoming=False)
                connect_port(node, prev_node, incoming)
                connect_port(node, next_node, outgoing)
            else:
                channel = self._segment_channel(lightpath, node, incoming=True)
                roadm = inv.roadms[node]
                roadm.connect_express(prev_node, next_node, channel, owner)
                undo.append(
                    lambda node=node, a=prev_node, b=next_node, ch=channel: (
                        inv.roadms[node].disconnect_express(a, b, ch, owner)
                    )
                )

    def _claim_channels(
        self, lightpath: Lightpath, undo: List[Callable[[], None]]
    ) -> None:
        owner = lightpath.lightpath_id
        inv = self._inventory
        for segment in lightpath.segments:
            for u, v in zip(segment.nodes, segment.nodes[1:]):
                link = inv.plant.dwdm_link(u, v)
                link.occupy(segment.channel, owner)
                undo.append(
                    lambda link=link, ch=segment.channel: link.release(ch, owner)
                )

    def _segment_channel(
        self, lightpath: Lightpath, node: str, incoming: bool
    ) -> int:
        """The channel of the segment entering (or leaving) ``node``."""
        for segment in lightpath.segments:
            nodes = segment.nodes
            if node in nodes:
                index = nodes.index(node)
                if incoming and index > 0:
                    return segment.channel
                if not incoming and index < len(nodes) - 1:
                    return segment.channel
        raise TransponderUnavailableError(
            f"lightpath {lightpath.lightpath_id} has no segment "
            f"{'into' if incoming else 'out of'} {node}"
        )

    def _stage_spans(self, steps: List[Step]) -> List[Step]:
        """The timed intervals a workflow walks through, one per span.

        Sequential EMS yields every step as-is; the parallel-EMS
        ablation merges consecutive same-stage steps into one interval
        (duration = stage max), labeled with the merged step count.
        """
        if not self._parallel_ems:
            return list(steps)
        merged: List[Step] = []
        current_stage: Optional[str] = None
        stage_max = 0.0
        count = 0
        for stage, _, duration in steps:
            if stage != current_stage and current_stage is not None:
                merged.append(
                    (current_stage, f"{count} ops (parallel)", stage_max)
                )
                stage_max = 0.0
                count = 0
            current_stage = stage
            stage_max = max(stage_max, duration)
            count += 1
        if current_stage is not None:
            merged.append((current_stage, f"{count} ops (parallel)", stage_max))
        return merged

    def _stage_durations(self, steps: List[Step]) -> List[float]:
        """Durations to yield, honoring the sequential/parallel EMS mode."""
        return [duration for _, _, duration in self._stage_spans(steps)]
