"""Admission control: customers, quotas, and isolation.

The carrier "should also ensure isolation of services across different
CSPs" while re-using a shared pool of resources (paper §4).  Each
customer gets a profile with rate and connection-count quotas; admission
rejects orders that would exceed them, independent of whether the
network could physically carry the connection — quota rejections are
policy, resource blocking is capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AdmissionError
from repro.units import GBPS, format_rate


@dataclass
class CustomerProfile:
    """One cloud-service-provider customer.

    Attributes:
        name: Customer identifier.
        max_connections: Cap on simultaneous connections.
        max_total_rate_bps: Cap on the sum of committed rates.
        premises: Premises this customer may order between; empty means
            any premises (no restriction).
    """

    name: str
    max_connections: int = 16
    max_total_rate_bps: float = 400 * GBPS
    premises: List[str] = field(default_factory=list)


class AdmissionControl:
    """Tracks per-customer usage against profiles."""

    def __init__(self) -> None:
        self._profiles: Dict[str, CustomerProfile] = {}
        self._active_connections: Dict[str, int] = {}
        self._active_rate: Dict[str, float] = {}

    def register_customer(self, profile: CustomerProfile) -> None:
        """Add a customer.

        Raises:
            AdmissionError: if the name is already registered.
        """
        if profile.name in self._profiles:
            raise AdmissionError(f"customer {profile.name!r} already registered")
        self._profiles[profile.name] = profile
        self._active_connections[profile.name] = 0
        self._active_rate[profile.name] = 0.0

    def profile(self, customer: str) -> CustomerProfile:
        """Look up a customer's profile.

        Raises:
            AdmissionError: for an unknown customer.
        """
        try:
            return self._profiles[customer]
        except KeyError:
            raise AdmissionError(f"unknown customer {customer!r}") from None

    def customers(self) -> List[str]:
        """All registered customer names."""
        return sorted(self._profiles)

    def check(
        self, customer: str, premises_a: str, premises_b: str, rate_bps: float
    ) -> Optional[str]:
        """Why this order would be refused, or ``None`` if it fits.

        Non-mutating: nothing is recorded.  The order pipeline and load
        studies use this to probe admissibility without spending quota;
        :meth:`admit` is the same checks plus the ledger update.

        Raises:
            AdmissionError: for an unknown customer (that is a caller
                bug, not a quota outcome).
        """
        profile = self.profile(customer)
        if profile.premises:
            for premises in (premises_a, premises_b):
                if premises not in profile.premises:
                    return (
                        f"customer {customer!r} has no access at {premises!r}"
                    )
        if self._active_connections[customer] + 1 > profile.max_connections:
            return (
                f"customer {customer!r} is at its connection quota "
                f"({profile.max_connections})"
            )
        if self._active_rate[customer] + rate_bps > profile.max_total_rate_bps:
            return (
                f"customer {customer!r} would exceed its rate quota "
                f"({format_rate(profile.max_total_rate_bps)})"
            )
        return None

    def admit(
        self, customer: str, premises_a: str, premises_b: str, rate_bps: float
    ) -> None:
        """Check and record an order against the customer's quotas.

        Raises:
            AdmissionError: when a quota or premises restriction is hit.
        """
        reason = self.check(customer, premises_a, premises_b, rate_bps)
        if reason is not None:
            raise AdmissionError(reason)
        self._active_connections[customer] += 1
        self._active_rate[customer] += rate_bps

    def release(self, customer: str, rate_bps: float) -> None:
        """Return quota after a connection ends.

        Raises:
            AdmissionError: if releasing more than is held.
        """
        self.profile(customer)
        if self._active_connections[customer] < 1:
            raise AdmissionError(
                f"customer {customer!r} has no active connections to release"
            )
        if self._active_rate[customer] - rate_bps < -1e-6:
            raise AdmissionError(
                f"customer {customer!r} releasing more rate than held"
            )
        self._active_connections[customer] -= 1
        self._active_rate[customer] = max(
            0.0, self._active_rate[customer] - rate_bps
        )

    def usage(self, customer: str) -> Dict[str, float]:
        """Current usage snapshot for a customer."""
        self.profile(customer)
        return {
            "connections": self._active_connections[customer],
            "rate_bps": self._active_rate[customer],
        }
