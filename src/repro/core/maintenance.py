"""Planned-maintenance orchestration.

"By using automated bridge-and-roll of private line connections,
GRIPhoN minimizes the impact during planned maintenance" (paper §1).
The scheduler models a maintenance window on one fiber link.  With
bridge-and-roll enabled it migrates every affected wavelength connection
to a disjoint path *before* the window opens (each migration costs only
the ~50 ms roll hit); without it, connections ride into the cut and eat
a full restoration — or the whole window, if restoration is off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.controller import GriphonController
from repro.errors import ConfigurationError, GriphonError


@dataclass
class MaintenanceRecord:
    """Outcome of one maintenance window.

    Attributes:
        link: The link that was worked on.
        started_at / ended_at: Window boundaries (simulation time).
        migrated: Connection ids moved off beforehand via bridge-and-roll.
        migration_failures: Connection id -> reason for ids that could
            not be migrated (no disjoint path, no resources, ...).
    """

    link: Tuple[str, str]
    started_at: float
    ended_at: float
    migrated: List[str] = field(default_factory=list)
    migration_failures: Dict[str, str] = field(default_factory=dict)
    completed: bool = False


class MaintenanceScheduler:
    """Schedules maintenance windows on the controller's simulator."""

    #: How long before the window the migrations start.  Bridging takes
    #: about a minute per connection, so give it comfortable margin.
    DEFAULT_LEAD_TIME_S = 600.0

    def __init__(self, controller: GriphonController) -> None:
        self._controller = controller
        self.records: List[MaintenanceRecord] = []

    def schedule(
        self,
        a: str,
        b: str,
        start_in: float,
        duration: float,
        use_bridge_and_roll: bool = True,
        lead_time: float = DEFAULT_LEAD_TIME_S,
    ) -> MaintenanceRecord:
        """Schedule a maintenance window on link ``a``-``b``.

        Args:
            start_in: Seconds from now until the window opens.
            duration: Window length in seconds.
            use_bridge_and_roll: Migrate affected connections beforehand.
            lead_time: How long before the window migrations begin; must
                not exceed ``start_in``.

        Returns:
            The (initially empty) record, filled in as events fire.
        """
        if duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration}")
        if start_in < 0:
            raise ConfigurationError(f"start_in must be >= 0, got {start_in}")
        sim = self._controller.sim
        record = MaintenanceRecord(
            link=(a, b) if a <= b else (b, a),
            started_at=sim.now + start_in,
            ended_at=sim.now + start_in + duration,
        )
        self.records.append(record)
        if use_bridge_and_roll:
            migrate_at = max(0.0, start_in - lead_time)
            sim.schedule(
                migrate_at,
                self._migrate_affected,
                record,
                label=f"maintenance-migrate:{a}={b}",
            )
        sim.schedule(
            start_in, self._open_window, record, label=f"maintenance-open:{a}={b}"
        )
        sim.schedule(
            start_in + duration,
            self._close_window,
            record,
            label=f"maintenance-close:{a}={b}",
        )
        return record

    def window_covering(
        self,
        a: str,
        b: str,
        now: float,
        horizon_s: Optional[float] = None,
    ) -> Optional[MaintenanceRecord]:
        """A pending window on link ``a``-``b``, if the calendar has one.

        The SLO engine's defer step calls this: a degraded link with a
        technician already scheduled does not need a reroute — the
        maintenance migration will move the traffic anyway.

        Args:
            now: Current sim time.
            horizon_s: When given, only windows opening within this many
                seconds qualify (open windows always do).

        Returns:
            The earliest matching record, or None.
        """
        key = (a, b) if a <= b else (b, a)
        best: Optional[MaintenanceRecord] = None
        for record in self.records:
            if record.completed or record.link != key:
                continue
            if record.ended_at <= now:
                continue
            if horizon_s is not None and record.started_at > now + horizon_s:
                continue
            if best is None or record.started_at < best.started_at:
                best = record
        return best

    # -- internals ------------------------------------------------------------

    def _migrate_affected(self, record: MaintenanceRecord) -> None:
        controller = self._controller
        a, b = record.link
        for lightpath in controller.inventory.lightpaths_using_link(a, b):
            conn_id = controller._lightpath_conn.get(lightpath.lightpath_id)
            if conn_id is None:
                continue
            try:
                controller.bridge_and_roll(conn_id, exclude_links=[record.link])
            except GriphonError as exc:
                record.migration_failures[conn_id] = str(exc)
            else:
                record.migrated.append(conn_id)

    def _open_window(self, record: MaintenanceRecord) -> None:
        a, b = record.link
        self._controller.cut_link(a, b)

    def _close_window(self, record: MaintenanceRecord) -> None:
        a, b = record.link
        self._controller.repair_link(a, b)
        record.completed = True
