"""The per-customer bandwidth-on-demand service API.

This is the programmatic face of the paper's "Customer GUI": each CSP
gets a handle scoped to its own connections, with methods for connection
management (set up / tear down on demand) and simple fault visibility.
The complexity of the GRIPhoN network — access pipes, carrier equipment,
network layers, the controller — stays hidden (paper §2.2).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.connection import Connection, ConnectionKind, ConnectionState
from repro.core.controller import GriphonController
from repro.errors import AdmissionError, ResourceError
from repro.units import GBPS


class BodService:
    """One customer's view of the GRIPhoN BoD service."""

    def __init__(self, controller: GriphonController, customer: str) -> None:
        # Validates the customer exists.
        controller.admission.profile(customer)
        self._controller = controller
        self.customer = customer

    # -- connection management ---------------------------------------------------

    def request_connection(
        self,
        premises_a: str,
        premises_b: str,
        rate_gbps: float,
        kind: Optional[ConnectionKind] = None,
    ) -> Connection:
        """Order a connection between two of this customer's premises.

        Args:
            rate_gbps: Committed rate in Gbps (the GUI's unit).
            kind: Force a wavelength or sub-wavelength realization;
                ``None`` lets the controller decompose the rate.
        """
        return self._controller.request_connection(
            self.customer, premises_a, premises_b, rate_gbps * GBPS, kind
        )

    def teardown_connection(self, connection_id: str) -> Connection:
        """Tear down one of this customer's connections.

        Raises:
            ResourceError: if the connection belongs to another customer
                (isolation: customers cannot see or touch each other's
                connections).
        """
        connection = self._own(connection_id)
        return self._controller.teardown_connection(connection.connection_id)

    def connections(self) -> List[Connection]:
        """All of this customer's connections, oldest first."""
        return self._controller.connections_of(self.customer)

    def connection(self, connection_id: str) -> Connection:
        """One of this customer's connections.

        Raises:
            ResourceError: unknown id or another customer's connection.
        """
        return self._own(connection_id)

    # -- fault visibility ----------------------------------------------------------

    def impacted_connections(self) -> List[Connection]:
        """Connections currently failed, degraded, or restoring."""
        impacted_states = (
            ConnectionState.FAILED,
            ConnectionState.DEGRADED,
            ConnectionState.RESTORING,
        )
        return [c for c in self.connections() if c.state in impacted_states]

    def fault_report(self, connection_id: str) -> str:
        """A one-line fault status for a connection (GUI detail pane)."""
        connection = self._own(connection_id)
        if connection.state is ConnectionState.UP:
            return f"{connection_id}: in service"
        if connection.state is ConnectionState.BLOCKED:
            return f"{connection_id}: blocked - {connection.blocked_reason}"
        if connection.state in (ConnectionState.FAILED, ConnectionState.RESTORING):
            failed = self._controller.inventory.plant.failed_links()
            where = ", ".join(f"{a}={b}" for a, b in failed) or "unknown location"
            verb = (
                "restoration in progress"
                if connection.state is ConnectionState.RESTORING
                else "awaiting restoration"
            )
            return f"{connection_id}: outage localized to [{where}]; {verb}"
        return f"{connection_id}: {connection.state.value}"

    def usage(self) -> dict:
        """Current quota usage (connections and committed rate)."""
        return self._controller.admission.usage(self.customer)

    # -- internals ------------------------------------------------------------

    def _own(self, connection_id: str) -> Connection:
        connection = self._controller.connection(connection_id)
        if connection.customer != self.customer:
            raise ResourceError(
                f"connection {connection_id!r} does not belong to "
                f"{self.customer!r}"
            )
        return connection
