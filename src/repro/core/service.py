"""The per-customer bandwidth-on-demand service API.

This is the programmatic face of the paper's "Customer GUI": each CSP
gets a handle scoped to its own connections, with methods for connection
management (set up / tear down on demand) and simple fault visibility.
The complexity of the GRIPhoN network — access pipes, carrier equipment,
network layers, the controller — stays hidden (paper §2.2).

The fault and usage views return typed records (:class:`FaultReport`,
:class:`Usage`) rather than bare strings and dicts; both stay
compatible with their old shapes (``str(report)`` is the GUI line,
``usage["connections"]`` still indexes).

Order outcomes (``QueueFull``, ``Deferred``, ``SetupFailed``,
``ServiceDegraded``) now live in :mod:`repro.api` as part of the one
typed :data:`~repro.api.OrderOutcome` union; importing them from this
module still works but emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import math
import warnings
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro import api
from repro.core.connection import Connection, ConnectionKind, ConnectionState
from repro.core.controller import GriphonController
from repro.errors import AdmissionError, ConfigurationError, ResourceError
from repro.pipeline import OrderTicket, TicketState
from repro.units import GBPS

#: Names that moved to :mod:`repro.api`; kept importable here (with a
#: deprecation warning) so historical callers don't break.
_MOVED_TO_API = ("QueueFull", "Deferred", "SetupFailed", "ServiceDegraded")


def __getattr__(name: str):
    """Deprecation shim for the outcome types that moved to repro.api."""
    if name in _MOVED_TO_API:
        warnings.warn(
            f"repro.core.service.{name} moved to repro.api.{name}; "
            "update the import (the repro.core.service path will go away)",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class FaultReport:
    """Structured fault status for one connection (GUI detail pane).

    Attributes:
        connection_id: The connection reported on.
        state: Its customer-visible state.
        localized_links: Failed fiber links the outage was localized to
            (empty when in service or when localization found nothing).
        action: What the carrier is doing about it (e.g. ``"restoration
            in progress"``); empty when nothing is wrong.
        trace_id: The connection's trace id, for correlating this report
            with the tracer's spans (None when tracing is off).
        blocked_reason: Why the order was blocked, for BLOCKED records.
        degradation_cause: The gray-failure cause when the SLO engine
            escalated this connection (e.g. ``"osnr-drift:NYC=CHI"``);
            empty for hard faults, which renders the classic outage line.
        osnr_margin_db: The connection's current OSNR margin (None for
            records with no live lightpath).
    """

    connection_id: str
    state: ConnectionState
    localized_links: Tuple[Tuple[str, str], ...] = ()
    action: str = ""
    trace_id: Optional[str] = None
    blocked_reason: str = ""
    failed_element: str = ""
    failed_command: str = ""
    degradation_cause: str = ""
    osnr_margin_db: Optional[float] = None

    def __str__(self) -> str:
        if self.state is ConnectionState.UP:
            return f"{self.connection_id}: in service"
        if self.state is ConnectionState.BLOCKED:
            return f"{self.connection_id}: blocked - {self.blocked_reason}"
        if self.state in (ConnectionState.FAILED, ConnectionState.RESTORING):
            where = (
                ", ".join(f"{a}={b}" for a, b in self.localized_links)
                or "unknown location"
            )
            return (
                f"{self.connection_id}: outage localized to [{where}]; "
                f"{self.action}"
            )
        if self.state is ConnectionState.DEGRADED and self.degradation_cause:
            margin = (
                f"{self.osnr_margin_db:.1f} dB margin"
                if self.osnr_margin_db is not None
                else "margin unknown"
            )
            return (
                f"{self.connection_id}: GRAY DEGRADED - "
                f"{self.degradation_cause} ({margin})"
            )
        if self.state is ConnectionState.DEGRADED and self.failed_element:
            return (
                f"{self.connection_id}: degraded - "
                f"{self.failed_element} setup failed"
            )
        return f"{self.connection_id}: {self.state.value}"

    def __contains__(self, item: str) -> bool:
        # Callers historically substring-matched the one-line report;
        # keep ``"outage" in report`` working on the typed record.
        return item in str(self)


@dataclass(frozen=True)
class UsageLimits:
    """A customer's quota ceilings, in GUI units (Gbps)."""

    max_connections: int
    max_total_rate_gbps: float


@dataclass(frozen=True)
class Usage(Mapping):
    """A customer's current quota usage.

    Indexes like the dict it replaced (``usage["connections"]``,
    ``usage["rate_bps"]``) and additionally exposes the GUI-unit rate
    and the quota ceilings as typed fields.
    """

    connections: int
    committed_gbps: float
    limits: UsageLimits

    _KEYS = ("connections", "committed_gbps", "rate_bps", "limits")

    @property
    def rate_bps(self) -> float:
        """The committed rate in bps (the admission ledger's unit)."""
        return self.committed_gbps * GBPS

    def __getitem__(self, key: str):
        if key not in self._KEYS:
            raise KeyError(key)
        return getattr(self, key)

    def __iter__(self) -> Iterator[str]:
        return iter(self._KEYS)

    def __len__(self) -> int:
        return len(self._KEYS)


class BodService:
    """One customer's view of the GRIPhoN BoD service."""

    def __init__(self, controller: GriphonController, customer: str) -> None:
        # Validates the customer exists.
        controller.admission.profile(customer)
        self._controller = controller
        self.customer = customer

    # -- connection management ---------------------------------------------------

    def request_connection(
        self,
        premises_a: str,
        premises_b: str,
        rate_gbps: float,
        kind: Optional[ConnectionKind] = None,
    ) -> Connection:
        """Order a connection between two of this customer's premises.

        Args:
            rate_gbps: Committed rate in Gbps (the GUI's unit).
            kind: Force a wavelength or sub-wavelength realization;
                ``None`` lets the controller decompose the rate.

        Raises:
            AdmissionError: for a rate that is not a positive, finite
                number of Gbps (checked here, in the GUI's unit, so the
                customer never sees a bps-denominated internal error).
        """
        self._validate_rate(rate_gbps)
        return self._controller.request_connection(
            self.customer, premises_a, premises_b, rate_gbps * GBPS, kind
        )

    def submit_connection(
        self,
        premises_a: str,
        premises_b: str,
        rate_gbps: float,
        kind: Optional[ConnectionKind] = None,
    ) -> OrderTicket:
        """Queue an order on the concurrent intake pipeline.

        Unlike :meth:`request_connection` — which plans and claims the
        order synchronously — this enqueues the order and returns an
        :class:`~repro.pipeline.OrderTicket` at once; the pipeline
        processes it in a scheduling round (run the simulator).  Follow
        the ticket with :meth:`order_outcome`.

        Raises:
            AdmissionError: for an invalid ``rate_gbps`` (same check as
                :meth:`request_connection`).
            ConfigurationError: when the network was built without a
                pipeline (``GriphonNetwork.enable_pipeline()``).
        """
        self._validate_rate(rate_gbps)
        pipeline = self._controller.pipeline
        if pipeline is None:
            raise ConfigurationError(
                "no order pipeline attached - call "
                "GriphonNetwork.enable_pipeline() (or use request_connection)"
            )
        return pipeline.submit(
            self.customer, premises_a, premises_b, rate_gbps * GBPS, kind
        )

    def order_outcome(
        self, ticket: OrderTicket
    ) -> Optional["api.OrderStatus"]:
        """What became of a submitted order, as a value from the union.

        Returns ``None`` while the order is still queued, otherwise a
        member of :data:`repro.api.OrderStatus`: :class:`~repro.api.Active`
        / :class:`~repro.api.Blocked` / :class:`~repro.api.Accepted`
        wrapping the processed :class:`Connection` record (attribute
        access like ``.state`` and ``.blocked_reason`` delegates to the
        record), :class:`~repro.api.SetupFailed` /
        :class:`~repro.api.ServiceDegraded` when the setup saga rolled
        back, :class:`~repro.api.QueueFull` for intake backpressure, and
        :class:`~repro.api.Deferred` when the order was withdrawn after
        losing wavelength contention ``max_defers`` rounds in a row.
        """
        if ticket.state is TicketState.QUEUED:
            return None
        if ticket.state is TicketState.QUEUE_FULL:
            pipeline = self._controller.pipeline
            return api.QueueFull(
                order_id=ticket.order_id,
                capacity=pipeline.capacity if pipeline is not None else 0,
                reason=ticket.reason,
            )
        if ticket.state is TicketState.DEFERRED:
            return api.Deferred(
                order_id=ticket.order_id,
                rounds_deferred=ticket.rounds_deferred,
                reason=ticket.reason,
            )
        connection = self._own(ticket.connection_id)
        fault = (
            self.fault_report(connection.connection_id)
            if connection.setup_error is not None
            else None
        )
        return api.classify_record(connection, fault=fault)

    def _validate_rate(self, rate_gbps: float) -> None:
        """GUI-unit rate validation shared by request and submit."""
        if not isinstance(rate_gbps, (int, float)) or isinstance(
            rate_gbps, bool
        ):
            raise AdmissionError(
                f"rate_gbps must be a number, got {type(rate_gbps).__name__}"
            )
        if not math.isfinite(rate_gbps) or rate_gbps <= 0:
            raise AdmissionError(
                f"rate_gbps must be positive and finite, got {rate_gbps!r}"
            )

    def teardown_connection(self, connection_id: str) -> Connection:
        """Tear down one of this customer's connections.

        Raises:
            ResourceError: if the connection belongs to another customer
                (isolation: customers cannot see or touch each other's
                connections).
        """
        connection = self._own(connection_id)
        return self._controller.teardown_connection(connection.connection_id)

    def connections(self) -> List[Connection]:
        """All of this customer's connections, oldest first."""
        return self._controller.connections_of(self.customer)

    def connection(self, connection_id: str) -> Connection:
        """One of this customer's connections.

        Raises:
            ResourceError: unknown id or another customer's connection.
        """
        return self._own(connection_id)

    # -- fault visibility ----------------------------------------------------------

    def impacted_connections(self) -> List[Connection]:
        """Connections currently failed, degraded, or restoring."""
        impacted_states = (
            ConnectionState.FAILED,
            ConnectionState.DEGRADED,
            ConnectionState.RESTORING,
        )
        return [c for c in self.connections() if c.state in impacted_states]

    def fault_report(self, connection_id: str) -> FaultReport:
        """The fault status of a connection, as a typed record.

        ``str(report)`` is the GUI's one-line detail pane.
        """
        connection = self._own(connection_id)
        localized: Tuple[Tuple[str, str], ...] = ()
        action = ""
        if connection.state in (
            ConnectionState.FAILED,
            ConnectionState.RESTORING,
        ):
            localized = tuple(
                self._controller.inventory.plant.failed_links()
            )
            action = (
                "restoration in progress"
                if connection.state is ConnectionState.RESTORING
                else "awaiting restoration"
            )
        return FaultReport(
            connection_id=connection.connection_id,
            state=connection.state,
            localized_links=localized,
            action=action,
            trace_id=connection.trace_id,
            blocked_reason=connection.blocked_reason,
            failed_element=getattr(connection.setup_error, "element", "") or "",
            failed_command=getattr(connection.setup_error, "command", "") or "",
            degradation_cause=connection.degradation_cause,
            osnr_margin_db=self._controller.connection_osnr_margin_db(
                connection.connection_id
            ),
        )

    def setup_outcome(
        self, connection_id: str
    ) -> Optional["api.SetupFailed | api.ServiceDegraded"]:
        """What the resilient setup saga did to this order, if anything.

        Returns ``None`` for orders that set up cleanly (or are still in
        flight), :class:`~repro.api.ServiceDegraded` when some
        components aborted but the connection carries traffic, and
        :class:`~repro.api.SetupFailed` when the whole order was rolled
        back.
        """
        connection = self._own(connection_id)
        if connection.setup_error is None:
            return None
        fault = self.fault_report(connection_id)
        if connection.state is ConnectionState.DEGRADED:
            up_components = (
                len(connection.lightpath_ids)
                + len(connection.circuit_ids)
                + len(connection.evc_ids)
            )
            return api.ServiceDegraded(
                connection_id=connection.connection_id,
                error=connection.setup_error,
                fault=fault,
                trace_id=connection.trace_id,
                up_components=up_components,
            )
        return api.SetupFailed(
            connection_id=connection.connection_id,
            error=connection.setup_error,
            fault=fault,
            trace_id=connection.trace_id,
        )

    def usage(self) -> Usage:
        """Current quota usage (connections and committed rate)."""
        raw = self._controller.admission.usage(self.customer)
        profile = self._controller.admission.profile(self.customer)
        return Usage(
            connections=int(raw["connections"]),
            committed_gbps=raw["rate_bps"] / GBPS,
            limits=UsageLimits(
                max_connections=profile.max_connections,
                max_total_rate_gbps=profile.max_total_rate_bps / GBPS,
            ),
        )

    # -- internals ------------------------------------------------------------

    def _own(self, connection_id: str) -> Connection:
        connection = self._controller.connection(connection_id)
        if connection.customer != self.customer:
            raise ResourceError(
                f"connection {connection_id!r} does not belong to "
                f"{self.customer!r}"
            )
        return connection
