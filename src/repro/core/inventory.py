"""The GRIPhoN controller's inventory database.

Holds every resource the controller manages: the fiber plant and its
wavelength occupancy, the ROADMs with their add/drop ports, transponder
and regenerator pools, FXCs, NTEs, OTN switches and lines, plus the
registry of live lightpaths, ODU circuits, and customer connections.
Construction helpers install equipment consistently (a ROADM's degrees
always match the topology, FXC ports get labeled, etc.).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, ResourceError, TopologyError
from repro.optical.fiber import FiberPlant
from repro.optical.fxc import FiberCrossConnect
from repro.optical.lightpath import Lightpath
from repro.optical.nte import NetworkTerminatingEquipment
from repro.optical.regen import RegenPool
from repro.optical.roadm import Roadm
from repro.optical.transponder import TransponderPool
from repro.optical.wavelength import WavelengthGrid
from repro.otn.circuit import OduCircuit
from repro.otn.line import OtnLine
from repro.otn.switch import OtnSwitch
from repro.topo.graph import NetworkGraph
from repro.units import GBPS


class InventoryDatabase:
    """All network resources, indexed for the controller."""

    def __init__(
        self, graph: NetworkGraph, grid: Optional[WavelengthGrid] = None
    ) -> None:
        self.graph = graph
        self.grid = grid or WavelengthGrid()
        self.plant = FiberPlant(graph, self.grid)
        self.roadms: Dict[str, Roadm] = {}
        self.transponders: Dict[str, TransponderPool] = {}
        self.regens: Dict[str, RegenPool] = {}
        self.fxcs: Dict[str, FiberCrossConnect] = {}
        self.ntes: Dict[str, NetworkTerminatingEquipment] = {}
        self.otn_switches: Dict[str, OtnSwitch] = {}
        self.otn_lines: Dict[str, OtnLine] = {}
        # Which core PoP (ROADM) each customer premises homes onto.
        self.premises_pop: Dict[str, str] = {}
        # Live resource records.
        self.lightpaths: Dict[str, Lightpath] = {}
        self.circuits: Dict[str, OduCircuit] = {}
        # Provisioned amplifier gain per link key (dB).  The controller
        # records each chain's target at build time; the invariant
        # auditor cross-checks the live EMS setting against this.
        self.amplifier_gains: Dict[tuple, float] = {}
        self._lightpath_seq = itertools.count()
        self._circuit_seq = itertools.count()
        self._otn_line_seq = itertools.count()

    # -- equipment installation ---------------------------------------------------

    def install_roadm(
        self,
        node: str,
        add_drop_ports: int = 8,
        colorless: bool = True,
        non_directional: bool = True,
    ) -> Roadm:
        """Install a ROADM at ``node`` with degrees matching the topology."""
        if node in self.roadms:
            raise ConfigurationError(f"ROADM already installed at {node}")
        roadm = Roadm(node, self.grid, colorless, non_directional)
        for neighbor in self.graph.neighbors(node):
            roadm.add_degree(neighbor)
        if non_directional and colorless:
            roadm.add_ports(add_drop_ports)
        self.roadms[node] = roadm
        self.transponders.setdefault(node, TransponderPool(node, self.grid))
        self.regens.setdefault(node, RegenPool(node))
        return roadm

    def install_transponders(
        self, node: str, line_rate_bps: float, count: int
    ) -> None:
        """Install OTs at a ROADM node's pool."""
        pool = self.transponders.get(node)
        if pool is None:
            raise ConfigurationError(f"no ROADM installed at {node}")
        pool.install(line_rate_bps, count)

    def install_regens(self, node: str, line_rate_bps: float, count: int) -> None:
        """Install regenerators at a node's pool."""
        pool = self.regens.get(node)
        if pool is None:
            raise ConfigurationError(f"no ROADM installed at {node}")
        pool.install(line_rate_bps, count)

    def install_fxc(self, site: str, port_count: int = 32) -> FiberCrossConnect:
        """Install a fiber cross-connect at a site."""
        if site in self.fxcs:
            raise ConfigurationError(f"FXC already installed at {site}")
        fxc = FiberCrossConnect(f"FXC:{site}", port_count)
        self.fxcs[site] = fxc
        return fxc

    def install_nte(
        self,
        premises: str,
        pop: str,
        interface_rate_bps: float = 10 * GBPS,
        interface_count: int = 4,
    ) -> NetworkTerminatingEquipment:
        """Install the NTE at a customer premises homed on core PoP ``pop``."""
        if premises in self.ntes:
            raise ConfigurationError(f"NTE already installed at {premises}")
        if not self.graph.has_node(pop):
            raise TopologyError(f"unknown PoP {pop!r}")
        nte = NetworkTerminatingEquipment(
            f"NTE:{premises}", premises, interface_rate_bps, interface_count
        )
        self.ntes[premises] = nte
        self.premises_pop[premises] = pop
        return nte

    def install_otn_switch(self, node: str, client_ports: int = 32) -> OtnSwitch:
        """Install an OTN switch at a node."""
        if node in self.otn_switches:
            raise ConfigurationError(f"OTN switch already installed at {node}")
        switch = OtnSwitch(node, client_ports)
        self.otn_switches[node] = switch
        return switch

    def create_otn_line(self, a: str, b: str, level=None) -> OtnLine:
        """Create an OTN line between two nodes with OTN switches.

        The line id is globally unique; the line is attached to both
        endpoint switches.
        """
        for node in (a, b):
            if node not in self.otn_switches:
                raise ConfigurationError(f"no OTN switch at {node}")
        line_id = f"OTNLINE:{min(a, b)}={max(a, b)}:{next(self._otn_line_seq)}"
        line = OtnLine(line_id, a, b, level=level)
        self.otn_lines[line_id] = line
        self.otn_switches[a].attach_line(line)
        self.otn_switches[b].attach_line(line)
        return line

    # -- id allocation ---------------------------------------------------------

    def next_lightpath_id(self) -> str:
        """A fresh lightpath id."""
        return f"lp-{next(self._lightpath_seq)}"

    def next_circuit_id(self) -> str:
        """A fresh ODU circuit id."""
        return f"ckt-{next(self._circuit_seq)}"

    # -- registry --------------------------------------------------------------

    def register_lightpath(self, lightpath: Lightpath) -> None:
        """Record a lightpath in the database."""
        if lightpath.lightpath_id in self.lightpaths:
            raise ConfigurationError(
                f"lightpath {lightpath.lightpath_id} already registered"
            )
        self.lightpaths[lightpath.lightpath_id] = lightpath

    def forget_lightpath(self, lightpath_id: str) -> None:
        """Drop a released lightpath from the database."""
        if lightpath_id not in self.lightpaths:
            raise ResourceError(f"unknown lightpath {lightpath_id!r}")
        del self.lightpaths[lightpath_id]

    def register_circuit(self, circuit: OduCircuit) -> None:
        """Record an ODU circuit in the database."""
        if circuit.circuit_id in self.circuits:
            raise ConfigurationError(
                f"circuit {circuit.circuit_id} already registered"
            )
        self.circuits[circuit.circuit_id] = circuit

    def forget_circuit(self, circuit_id: str) -> None:
        """Drop a released circuit from the database."""
        if circuit_id not in self.circuits:
            raise ResourceError(f"unknown circuit {circuit_id!r}")
        del self.circuits[circuit_id]

    def record_amplifier_gain(self, key: tuple, gain_db: float) -> None:
        """Record the provisioned amplifier gain for a link."""
        self.amplifier_gains[key] = gain_db

    def recorded_amplifier_gain(self, key: tuple) -> Optional[float]:
        """The provisioned gain for a link, or None if never recorded."""
        return self.amplifier_gains.get(key)

    # -- queries ----------------------------------------------------------------

    def pop_of(self, premises: str) -> str:
        """The core PoP a premises homes onto.

        Raises:
            ResourceError: for an unknown premises.
        """
        try:
            return self.premises_pop[premises]
        except KeyError:
            raise ResourceError(f"unknown premises {premises!r}") from None

    def lightpaths_using_link(self, a: str, b: str) -> List[Lightpath]:
        """Live lightpaths whose path crosses the given link."""
        key = (a, b) if a <= b else (b, a)
        hit = []
        for lightpath in self.lightpaths.values():
            for segment in lightpath.segments:
                if key in segment.links:
                    hit.append(lightpath)
                    break
        return hit

    def roadm_utilization(self) -> Dict[str, float]:
        """Per-node fraction of add/drop ports in use."""
        result = {}
        for node, roadm in self.roadms.items():
            total = len(roadm.ports)
            if total:
                used = sum(port.in_use for port in roadm.ports)
                result[node] = used / total
        return result
