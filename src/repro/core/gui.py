"""Text renderings of the customer GUI.

The paper's testbed has a graphical customer interface showing the NTE
interfaces at each premises and the state of each connection (§2.2, §3).
We render the same information as plain-text tables, which the examples
print and the tests assert on.
"""

from __future__ import annotations

from typing import List

from repro.core.service import BodService
from repro.units import format_duration, format_rate


def render_connections(service: BodService) -> str:
    """The connection-management table for one customer."""
    rows: List[List[str]] = [
        ["ID", "A-END", "Z-END", "RATE", "KIND", "STATE", "SETUP"]
    ]
    for conn in service.connections():
        setup = (
            format_duration(conn.setup_duration)
            if conn.setup_duration is not None
            else "-"
        )
        rows.append(
            [
                conn.connection_id,
                conn.premises_a,
                conn.premises_b,
                format_rate(conn.rate_bps),
                conn.kind.value,
                conn.state.value,
                setup,
            ]
        )
    return _table(rows, title=f"Connections for {service.customer}")


def render_interfaces(service: BodService) -> str:
    """The NTE interface panes for every premises the customer can see."""
    inventory = service._controller.inventory  # GUI is a trusted view.
    premises_names = sorted(
        {conn.premises_a for conn in service.connections()}
        | {conn.premises_b for conn in service.connections()}
        | set(service._controller.admission.profile(service.customer).premises)
    )
    panes = []
    for premises in premises_names:
        nte = inventory.ntes.get(premises)
        if nte is None:
            continue
        panes.append(f"-- {premises} --")
        panes.extend(nte.customer_view())
    return "\n".join(panes)


def render_fault_panel(service: BodService) -> str:
    """The fault-management pane: one line per impacted connection.

    Renders from the typed :class:`~repro.core.service.FaultReport`
    records; when tracing is on, each line carries the trace id so an
    operator can pull the matching spans.
    """
    impacted = service.impacted_connections()
    if not impacted:
        return "All connections in service."
    lines = []
    for conn in impacted:
        report = service.fault_report(conn.connection_id)
        line = str(report)
        if report.trace_id is not None:
            line += f" (trace {report.trace_id})"
        lines.append(line)
    return "\n".join(lines)


def render_reservations(book, customer: str = None) -> str:
    """The advance-reservation calendar pane.

    Args:
        book: A :class:`~repro.core.calendar.ReservationBook`.
        customer: Restrict to one customer's bookings; ``None`` shows all
            (the operator's calendar).
    """
    rows: List[List[str]] = [
        ["ID", "CUSTOMER", "A-END", "Z-END", "RATE", "WINDOW", "STATE"]
    ]
    for resv in book.reservations(customer):
        window = (
            f"{format_duration(resv.start)} - {format_duration(resv.end)}"
        )
        rows.append(
            [
                resv.reservation_id,
                resv.customer,
                resv.premises_a,
                resv.premises_b,
                format_rate(resv.rate_bps),
                window,
                resv.state.value,
            ]
        )
    if len(rows) == 1:
        return "No reservations."
    return _table(rows, title="Reservations")


def render_network_view(controller) -> str:
    """The *operator's* network view (not customer-visible).

    One row per fiber link: wavelength occupancy and failure state,
    followed by per-node transponder pool utilization — the data the
    carrier's resource planning (§4) works from.
    """
    rows: List[List[str]] = [["LINK", "KM", "CHANNELS LIT", "STATE"]]
    plant = controller.inventory.plant
    for link in controller.inventory.graph.links:
        dwdm = plant.dwdm_link(link.a, link.b)
        if dwdm.failed:
            state = "FAILED"
        elif dwdm.osnr_penalty_db > 0.0:
            # Gray failure: carrying traffic, but eroded.  Rendered
            # distinctly from a hard failure so operators can tell a
            # degraded span from a cut one at a glance.
            state = f"DEGRADED -{dwdm.osnr_penalty_db:.1f}dB"
        else:
            state = "up"
        rows.append(
            [
                f"{link.key[0]}={link.key[1]}",
                f"{link.length_km:g}",
                f"{len(dwdm.occupied_channels)}/{dwdm.grid.size}",
                state,
            ]
        )
    lines = [_table(rows, title="Fiber plant")]
    pool_rows: List[List[str]] = [["NODE", "OTs IN USE", "REGENS IN USE"]]
    for node in sorted(controller.inventory.transponders):
        pool = controller.inventory.transponders[node]
        regens = controller.inventory.regens.get(node)
        total_ots = len(pool.transponders)
        used_ots = sum(ot.in_use for ot in pool.transponders)
        total_regens = len(regens.regenerators) if regens else 0
        used_regens = (
            sum(r.in_use for r in regens.regenerators) if regens else 0
        )
        pool_rows.append(
            [node, f"{used_ots}/{total_ots}", f"{used_regens}/{total_regens}"]
        )
    lines.append("")
    lines.append(_table(pool_rows, title="Resource pools"))
    return "\n".join(lines)


def _table(rows: List[List[str]], title: str = "") -> str:
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
