"""Routing and wavelength assignment (RWA) for wavelength services.

Given a request between two ROADM nodes at a line rate, the engine:

1. enumerates k shortest candidate routes (hop-count metric by default,
   matching how the testbed paths are described in Table 2);
2. segments each route at regenerator sites dictated by the optical
   reach model (a regen resets both the impairment budget *and* the
   wavelength-continuity constraint);
3. picks a wavelength per segment — **first-fit** by default, with a
   random policy available for the ablation benchmark;
4. returns a :class:`RwaPlan` listing route, per-segment channels, and
   regen sites — or raises a specific error explaining which resource
   blocked the request.

The plan is pure computation: nothing is allocated until the setup
workflow executes it step by step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import (
    ConfigurationError,
    NoPathError,
    SignalError,
    WavelengthBlockedError,
)
from repro.core.inventory import InventoryDatabase
from repro.core.routecache import RouteCache, make_route_key
from repro.obs.trace import Span, Tracer
from repro.optical.impairments import ReachModel
from repro.optical.lightpath import Segment
from repro.sim.randomness import RandomStreams


@dataclass
class RwaPlan:
    """The output of routing and wavelength assignment.

    Attributes:
        path: Node route from source to destination ROADM.
        segments: Wavelength assignment per regen-free segment.
        regen_sites: Intermediate nodes needing a regenerator.
        rate_bps: Line rate the plan was computed for.
    """

    path: List[str]
    segments: List[Segment]
    regen_sites: List[str]
    rate_bps: float

    @property
    def hop_count(self) -> int:
        """ROADM-layer hops along the route."""
        return len(self.path) - 1


class RwaEngine:
    """Computes RWA plans against the live inventory."""

    def __init__(
        self,
        inventory: InventoryDatabase,
        reach: Optional[ReachModel] = None,
        k_paths: int = 4,
        assignment: str = "first-fit",
        streams: Optional[RandomStreams] = None,
        route_cache: Optional[RouteCache] = None,
        route_cache_size: int = 1024,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if assignment not in ("first-fit", "random"):
            raise ConfigurationError(
                f"assignment must be 'first-fit' or 'random', got {assignment!r}"
            )
        if assignment == "random" and streams is None:
            raise ConfigurationError("random assignment needs RandomStreams")
        if k_paths < 1:
            raise ConfigurationError(f"k_paths must be >= 1, got {k_paths}")
        self._inventory = inventory
        self._reach = reach or ReachModel()
        self._k_paths = k_paths
        self._assignment = assignment
        self._streams = streams
        if route_cache is not None:
            self._cache: Optional[RouteCache] = route_cache
        elif route_cache_size > 0:
            self._cache = RouteCache(route_cache_size)
        else:
            self._cache = None
        self._tracer = tracer

    @property
    def route_cache(self) -> Optional[RouteCache]:
        """The candidate-route cache, or ``None`` when caching is disabled."""
        return self._cache

    def plan(
        self,
        source: str,
        destination: str,
        rate_bps: float,
        excluded_links: Iterable[Tuple[str, str]] = (),
        excluded_nodes: Iterable[str] = (),
        avoid_srlgs_of: Optional[List[str]] = None,
        parent_span: Optional[Span] = None,
    ) -> RwaPlan:
        """Compute a route and wavelength assignment.

        Args:
            source: Source ROADM node.
            destination: Destination ROADM node.
            rate_bps: Requested line rate.
            excluded_links: Link keys to route around (failed or under
                maintenance).
            excluded_nodes: Intermediate nodes to avoid.
            avoid_srlgs_of: When set to a node path, the plan must also be
                SRLG-disjoint from it (the bridge-and-roll constraint).
            parent_span: Tracing span to nest the ``rwa.plan`` span
                under (ignored unless the engine's tracer is enabled).

        Raises:
            NoPathError: if no candidate route survives the exclusions.
            WavelengthBlockedError: if routes exist but no wavelength (or
                regen segmentation) satisfies continuity on any of them.
        """
        tracer = self._tracer
        if tracer is None or not tracer.enabled:
            # Hot path: one attribute check when tracing is off.
            return self._plan(
                source, destination, rate_bps, excluded_links,
                excluded_nodes, avoid_srlgs_of,
            )
        with tracer.span(
            "rwa.plan", parent=parent_span, source=source,
            destination=destination,
        ) as span:
            result = self._plan(
                source, destination, rate_bps, excluded_links,
                excluded_nodes, avoid_srlgs_of,
            )
            span.set_tag("hops", result.hop_count)
            span.set_tag("regens", len(result.regen_sites))
            return result

    def _plan(
        self,
        source: str,
        destination: str,
        rate_bps: float,
        excluded_links: Iterable[Tuple[str, str]] = (),
        excluded_nodes: Iterable[str] = (),
        avoid_srlgs_of: Optional[List[str]] = None,
    ) -> RwaPlan:
        """The untraced planning pipeline behind :meth:`plan`."""
        if source == destination:
            raise ConfigurationError("source and destination must differ")
        graph = self._inventory.graph
        banned_links = set(excluded_links)
        banned_nodes = set(excluded_nodes)
        if avoid_srlgs_of is not None:
            banned_links |= {
                link.key for link in graph.links_on_path(avoid_srlgs_of)
            }
            for srlg in graph.srlgs_on_path(avoid_srlgs_of):
                banned_links |= {link.key for link in graph.links_in_srlg(srlg)}
            banned_nodes |= set(avoid_srlgs_of[1:-1])
        candidates = self._candidate_routes(
            source, destination, banned_links, banned_nodes
        )
        live_candidates = [
            path for path in candidates if self._inventory.plant.path_is_up(path)
        ]
        if not live_candidates:
            raise NoPathError(
                f"all candidate routes {source} -> {destination} are failed"
            )
        failures = []
        for path in live_candidates:
            try:
                segments, regen_sites = self._assign(path, rate_bps)
            except (WavelengthBlockedError, SignalError) as exc:
                # SignalError: a single link on this route exceeds the
                # optical reach at this rate, so the route is unusable.
                failures.append(str(exc))
                continue
            return RwaPlan(path, segments, regen_sites, rate_bps)
        raise WavelengthBlockedError(
            f"no wavelength assignment on any of {len(live_candidates)} routes "
            f"{source} -> {destination}: " + "; ".join(failures)
        )

    # -- internals ------------------------------------------------------------

    def _candidate_routes(
        self,
        source: str,
        destination: str,
        banned_links: set,
        banned_nodes: set,
    ) -> List[List[str]]:
        """K-shortest candidate routes, served from the cache when fresh.

        Entries are stamped with the topology generation and fiber-plant
        failure epoch; "no path" outcomes are cached as an empty route
        list so repeated blocked requests stay cheap too.
        """
        if self._cache is None:
            return self._inventory.graph.k_shortest_paths(
                source,
                destination,
                self._k_paths,
                excluded_links=banned_links,
                excluded_nodes=banned_nodes,
            )
        graph = self._inventory.graph
        generation = graph.generation
        epoch = self._inventory.plant.failure_epoch
        key = make_route_key(
            source, destination, self._k_paths, banned_links, banned_nodes
        )
        cached = self._cache.get(key, generation, epoch)
        if cached is not None:
            if not cached:
                raise NoPathError(f"no path from {source!r} to {destination!r}")
            return cached
        try:
            routes = graph.k_shortest_paths(
                source,
                destination,
                self._k_paths,
                excluded_links=banned_links,
                excluded_nodes=banned_nodes,
            )
        except NoPathError:
            self._cache.put(key, generation, epoch, [])
            raise
        self._cache.put(key, generation, epoch, routes)
        return routes

    def _assign(
        self, path: List[str], rate_bps: float
    ) -> Tuple[List[Segment], List[str]]:
        """Segment a route at regen sites and pick a channel per segment."""
        graph = self._inventory.graph
        regen_sites = self._reach.regen_sites(graph, path, rate_bps)
        boundaries = [path[0]] + regen_sites + [path[-1]]
        # Candidate routes are simple paths, so node names are unique and
        # a single node->index map replaces the O(n^2) repeated .index().
        position = {node: index for index, node in enumerate(path)}
        indices = [position[b] for b in boundaries]
        segments = []
        for start, end in zip(indices, indices[1:]):
            nodes = path[start : end + 1]
            channel = self._pick_channel(nodes)
            segments.append(Segment(nodes, channel))
        return segments, regen_sites

    def _pick_channel(self, nodes: List[str]) -> int:
        free = self._inventory.plant.common_free_channels(nodes)
        # The end ROADMs must also have the channel free on the relevant
        # degree (a previous segment of this very plan could contend, but
        # plans are executed atomically per segment, so link occupancy is
        # the authoritative constraint here).
        if not free:
            raise WavelengthBlockedError(
                f"no common free wavelength on segment {' - '.join(nodes)}"
            )
        if self._assignment == "first-fit":
            return min(free)
        return self._streams.choice("rwa:random-channel", sorted(free))
