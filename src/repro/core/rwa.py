"""Routing and wavelength assignment (RWA) for wavelength services.

Given a request between two ROADM nodes at a line rate, the engine:

1. enumerates k shortest candidate routes (hop-count metric by default,
   matching how the testbed paths are described in Table 2);
2. segments each route at regenerator sites dictated by the optical
   reach model (a regen resets both the impairment budget *and* the
   wavelength-continuity constraint);
3. picks a wavelength per segment — **first-fit** by default, with a
   random policy available for the ablation benchmark;
4. returns a :class:`RwaPlan` listing route, per-segment channels, and
   regen sites — or raises a specific error explaining which resource
   blocked the request.

The plan is pure computation: nothing is allocated until the setup
workflow executes it step by step.

For a scheduling round of many concurrent orders, :meth:`RwaEngine.plan_batch`
plans a whole list of requests against one shared :class:`_PlanningRound`:
candidate routes, liveness checks, regen segmentation, and free-channel
sets are computed once per distinct route, and every successful plan's
channels are recorded in a shadow overlay so later requests in the same
round cannot be assigned a wavelength an earlier one already won.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    ConfigurationError,
    GriphonError,
    NoPathError,
    SignalError,
    WavelengthBlockedError,
)
from repro.core.inventory import InventoryDatabase
from repro.core.routecache import RouteCache, make_route_key
from repro.obs.trace import Span, Tracer
from repro.optical.impairments import ReachModel
from repro.optical.lightpath import Segment
from repro.sim.randomness import RandomStreams


@dataclass
class RwaPlan:
    """The output of routing and wavelength assignment.

    Attributes:
        path: Node route from source to destination ROADM.
        segments: Wavelength assignment per regen-free segment.
        regen_sites: Intermediate nodes needing a regenerator.
        rate_bps: Line rate the plan was computed for.
    """

    path: List[str]
    segments: List[Segment]
    regen_sites: List[str]
    rate_bps: float

    @property
    def hop_count(self) -> int:
        """ROADM-layer hops along the route."""
        return len(self.path) - 1


@dataclass(frozen=True)
class PlanRequest:
    """One wavelength request inside a :meth:`RwaEngine.plan_batch` round.

    Attributes:
        source: Source ROADM node.
        destination: Destination ROADM node.
        rate_bps: Requested line rate.
        excluded_links: Link keys to route around.
        excluded_nodes: Intermediate nodes to avoid.
    """

    source: str
    destination: str
    rate_bps: float
    excluded_links: Tuple[Tuple[str, str], ...] = ()
    excluded_nodes: Tuple[str, ...] = ()


class BatchPlanItem:
    """Per-request outcome of a :meth:`RwaEngine.plan_batch` round.

    A plain ``__slots__`` class rather than a dataclass: scheduling
    rounds allocate one per order, so the per-instance ``__dict__`` is
    measurable overhead at batch sizes in the hundreds.

    Attributes:
        request: The request this outcome answers.
        plan: The assignment, when planning succeeded.
        error: The planning error, when it did not.
        contended: True when the request failed *only* because earlier
            requests in the same round claimed the wavelengths it needed
            — i.e. it would have planned against the live inventory
            alone.  Contended failures are worth retrying next round;
            uncontended ones are genuine blocks.
    """

    __slots__ = ("request", "plan", "error", "contended")

    def __init__(
        self,
        request: PlanRequest,
        plan: Optional[RwaPlan] = None,
        error: Optional[GriphonError] = None,
        contended: bool = False,
    ) -> None:
        self.request = request
        self.plan = plan
        self.error = error
        self.contended = contended

    @property
    def ok(self) -> bool:
        """True when the request received a plan."""
        return self.plan is not None

    def __repr__(self) -> str:
        status = "ok" if self.ok else (
            "contended" if self.contended else "blocked"
        )
        return (
            f"BatchPlanItem({self.request.source}->"
            f"{self.request.destination}, {status})"
        )


class _PlanningRound:
    """Shared per-round planning state for :meth:`RwaEngine.plan_batch`.

    Memoizes the pure, inventory-derived intermediates (candidate
    routes, path liveness, regen segmentation, per-segment free-channel
    sets) so a round of N requests over few distinct routes does the
    expensive work once, and carries the round's *shadow claims*: the
    channels already promised to earlier plans in the round, per link.
    Nothing here touches the inventory — the overlay mirrors exactly
    what :meth:`LightpathProvisioner.claim` will occupy when the round's
    plans are executed.
    """

    __slots__ = ("routes", "live", "regens", "free", "claimed", "overlay_on")

    def __init__(self) -> None:
        #: route-memo key -> list of candidate paths, or a NoPathError.
        self.routes: Dict[tuple, object] = {}
        #: path tuple -> FiberPlant.path_is_up result.
        self.live: Dict[Tuple[str, ...], bool] = {}
        #: (path tuple, rate) -> regen sites tuple.
        self.regens: Dict[tuple, Tuple[str, ...]] = {}
        #: segment node tuple -> base free-channel set (live inventory).
        self.free: Dict[Tuple[str, ...], Set[int]] = {}
        #: link key -> channels shadow-claimed by earlier plans this round.
        self.claimed: Dict[Tuple[str, str], Set[int]] = {}
        #: Cleared while probing whether a failure was contention-only.
        self.overlay_on = True

    def reset(self) -> None:
        """Empty every memo and the overlay so the round can be reused.

        The memoized intermediates depend on live occupancy and plant
        state, so they cannot survive between rounds — but the dict
        objects themselves can, saving reallocation on every scheduling
        tick of a long-running pipeline.
        """
        self.routes.clear()
        self.live.clear()
        self.regens.clear()
        self.free.clear()
        self.claimed.clear()
        self.overlay_on = True

    def claimed_on(self, nodes: Sequence[str]) -> Set[int]:
        """Channels the round already promised on any link of a segment."""
        taken: Set[int] = set()
        if not self.claimed:
            return taken
        for u, v in zip(nodes, nodes[1:]):
            channels = self.claimed.get((u, v) if u <= v else (v, u))
            if channels:
                taken |= channels
        return taken

    def commit(self, plan: RwaPlan) -> None:
        """Record a successful plan's channels as claimed for the round."""
        for segment in plan.segments:
            channel = segment.channel
            for key in segment.links:
                self.claimed.setdefault(key, set()).add(channel)


class RwaEngine:
    """Computes RWA plans against the live inventory."""

    def __init__(
        self,
        inventory: InventoryDatabase,
        reach: Optional[ReachModel] = None,
        k_paths: int = 4,
        assignment: str = "first-fit",
        streams: Optional[RandomStreams] = None,
        route_cache: Optional[RouteCache] = None,
        route_cache_size: int = 1024,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if assignment not in ("first-fit", "random"):
            raise ConfigurationError(
                f"assignment must be 'first-fit' or 'random', got {assignment!r}"
            )
        if assignment == "random" and streams is None:
            raise ConfigurationError("random assignment needs RandomStreams")
        if k_paths < 1:
            raise ConfigurationError(f"k_paths must be >= 1, got {k_paths}")
        self._inventory = inventory
        self._reach = reach or ReachModel()
        self._k_paths = k_paths
        self._assignment = assignment
        self._streams = streams
        if route_cache is not None:
            self._cache: Optional[RouteCache] = route_cache
        elif route_cache_size > 0:
            self._cache = RouteCache(route_cache_size)
        else:
            self._cache = None
        self._tracer = tracer
        # Reused (reset, not reallocated) by every plan_batch call that
        # does not bring its own round.
        self._round = _PlanningRound()

    @property
    def route_cache(self) -> Optional[RouteCache]:
        """The candidate-route cache, or ``None`` when caching is disabled."""
        return self._cache

    @property
    def reach_model(self) -> ReachModel:
        """The optical reach model the engine segments routes with.

        Exposed so the re-optimization snapshot can segment candidate
        routes exactly the way :meth:`plan` and :meth:`plan_explicit`
        will.
        """
        return self._reach

    def plan(
        self,
        source: str,
        destination: str,
        rate_bps: float,
        excluded_links: Iterable[Tuple[str, str]] = (),
        excluded_nodes: Iterable[str] = (),
        avoid_srlgs_of: Optional[List[str]] = None,
        parent_span: Optional[Span] = None,
    ) -> RwaPlan:
        """Compute a route and wavelength assignment.

        Args:
            source: Source ROADM node.
            destination: Destination ROADM node.
            rate_bps: Requested line rate.
            excluded_links: Link keys to route around (failed or under
                maintenance).
            excluded_nodes: Intermediate nodes to avoid.
            avoid_srlgs_of: When set to a node path, the plan must also be
                SRLG-disjoint from it (the bridge-and-roll constraint).
            parent_span: Tracing span to nest the ``rwa.plan`` span
                under (ignored unless the engine's tracer is enabled).

        Raises:
            NoPathError: if no candidate route survives the exclusions.
            WavelengthBlockedError: if routes exist but no wavelength (or
                regen segmentation) satisfies continuity on any of them.
        """
        tracer = self._tracer
        if tracer is None or not tracer.enabled:
            # Hot path: one attribute check when tracing is off.
            return self._plan(
                source, destination, rate_bps, excluded_links,
                excluded_nodes, avoid_srlgs_of,
            )
        with tracer.span(
            "rwa.plan", parent=parent_span, source=source,
            destination=destination,
        ) as span:
            result = self._plan(
                source, destination, rate_bps, excluded_links,
                excluded_nodes, avoid_srlgs_of,
            )
            span.set_tag("hops", result.hop_count)
            span.set_tag("regens", len(result.regen_sites))
            return result

    def plan_batch(
        self,
        requests: Sequence[PlanRequest],
        parent_span: Optional[Span] = None,
        round_ctx: Optional["_PlanningRound"] = None,
    ) -> List[BatchPlanItem]:
        """Plan a scheduling round of requests with shared state.

        Requests are planned in order against one :class:`_PlanningRound`:
        route enumeration, liveness filtering, regen segmentation, and
        free-channel scans are memoized across the round, and each
        successful plan's channels are shadow-claimed so later requests
        cannot be assigned a wavelength an earlier request already won.
        A single-request batch is exactly equivalent to :meth:`plan` —
        same plan, same errors — because both run the same ``_plan``
        pipeline (the round's memos start empty and its overlay has
        nothing claimed yet).

        Failures never raise; each request gets a :class:`BatchPlanItem`
        carrying either the plan or the error, with ``contended`` set
        when the request lost only to earlier claims in this round.

        Args:
            requests: The round's requests, planned in order.
            parent_span: Tracing parent for the ``rwa.plan_batch`` span.
            round_ctx: An externally owned round to plan under.  The
                default (``None``) uses an engine-owned round reset at
                entry — the common case.  Callers that split one logical
                round across several ``plan_batch`` calls (the sharded
                planner claiming gateway/express resources) pass their
                own round so shadow claims accumulate across calls; the
                caller is then responsible for resetting it between
                logical rounds.
        """
        if round_ctx is None:
            # Reuse one engine-owned round across calls: the memo dicts
            # are cleared, not reallocated, on every scheduling tick.
            round_ctx = self._round
            round_ctx.reset()
        items: List[BatchPlanItem] = []
        tracer = self._tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.span(
                "rwa.plan_batch", parent=parent_span, requests=len(requests)
            )
        try:
            for request in requests:
                try:
                    plan = self._plan(
                        request.source,
                        request.destination,
                        request.rate_bps,
                        request.excluded_links,
                        request.excluded_nodes,
                        round_ctx=round_ctx,
                    )
                except GriphonError as exc:
                    contended = self._contention_only(request, exc, round_ctx)
                    items.append(
                        BatchPlanItem(request, error=exc, contended=contended)
                    )
                    continue
                round_ctx.commit(plan)
                items.append(BatchPlanItem(request, plan=plan))
        finally:
            if span is not None:
                span.set_tag("planned", sum(1 for i in items if i.ok))
                span.set_tag(
                    "contended", sum(1 for i in items if i.contended)
                )
                span.finish()
        return items

    def plan_explicit(
        self,
        path: Sequence[str],
        channels: Sequence[int],
        rate_bps: float,
    ) -> RwaPlan:
        """Build a plan for an explicit route and per-segment channels.

        The global re-optimizer's entry into the claim machinery: a
        :class:`~repro.optimize.planner.MigrationMove` already names the
        exact route and wavelength per regen-free segment, and the
        migration executor realizes it by handing the resulting plan to
        ``bridge_and_roll(plan=...)``.  The route is segmented with the
        engine's own reach model (so the segmentation matches what
        :meth:`plan` would produce for the same route), and each
        requested channel is validated to be currently free along its
        whole segment.

        Args:
            path: Node route from source to destination ROADM.
            channels: One channel per regen-free segment, in path order.
            rate_bps: Line rate of the wavelength.

        Raises:
            ConfigurationError: for a malformed path or a channel count
                that does not match the route's regen segmentation.
            NoPathError: when the route crosses a failed link.
            WavelengthBlockedError: when a requested channel is not free
                on every link of its segment.
        """
        path = list(path)
        if len(path) < 2:
            raise ConfigurationError("explicit path needs >= 2 nodes")
        graph = self._inventory.graph
        graph.links_on_path(path)  # raises TopologyError on a bad route
        if not self._inventory.plant.path_is_up(path):
            raise NoPathError(f"explicit route {' - '.join(path)} is failed")
        regen_sites = self._reach.regen_sites(graph, path, rate_bps)
        boundaries = [path[0]] + regen_sites + [path[-1]]
        position = {node: index for index, node in enumerate(path)}
        indices = [position[b] for b in boundaries]
        segment_nodes = [
            path[start : end + 1] for start, end in zip(indices, indices[1:])
        ]
        if len(channels) != len(segment_nodes):
            raise ConfigurationError(
                f"route {' - '.join(path)} has {len(segment_nodes)} regen "
                f"segment(s); got {len(channels)} channel(s)"
            )
        segments = []
        for nodes, channel in zip(segment_nodes, channels):
            free = self._inventory.plant.common_free_channels(nodes)
            if channel not in free:
                raise WavelengthBlockedError(
                    f"channel {channel} is not free on the whole segment "
                    f"{' - '.join(nodes)}"
                )
            segments.append(Segment(list(nodes), int(channel)))
        return RwaPlan(path, segments, list(regen_sites), rate_bps)

    def _contention_only(
        self,
        request: PlanRequest,
        exc: GriphonError,
        round_ctx: "_PlanningRound",
    ) -> bool:
        """Would the failed request have planned without the round overlay?

        Only wavelength blocks can be caused by the overlay (routes and
        reach do not depend on occupancy), and only when something was
        actually claimed this round.
        """
        if not round_ctx.claimed or not isinstance(exc, WavelengthBlockedError):
            return False
        round_ctx.overlay_on = False
        try:
            self._plan(
                request.source,
                request.destination,
                request.rate_bps,
                request.excluded_links,
                request.excluded_nodes,
                round_ctx=round_ctx,
            )
            return True
        except GriphonError:
            return False
        finally:
            round_ctx.overlay_on = True

    def _plan(
        self,
        source: str,
        destination: str,
        rate_bps: float,
        excluded_links: Iterable[Tuple[str, str]] = (),
        excluded_nodes: Iterable[str] = (),
        avoid_srlgs_of: Optional[List[str]] = None,
        round_ctx: Optional["_PlanningRound"] = None,
    ) -> RwaPlan:
        """The untraced planning pipeline behind :meth:`plan`."""
        if source == destination:
            raise ConfigurationError("source and destination must differ")
        graph = self._inventory.graph
        banned_links = set(excluded_links)
        banned_nodes = set(excluded_nodes)
        if avoid_srlgs_of is not None:
            banned_links |= {
                link.key for link in graph.links_on_path(avoid_srlgs_of)
            }
            for srlg in graph.srlgs_on_path(avoid_srlgs_of):
                banned_links |= {link.key for link in graph.links_in_srlg(srlg)}
            banned_nodes |= set(avoid_srlgs_of[1:-1])
        candidates = self._candidate_routes(
            source, destination, banned_links, banned_nodes, round_ctx
        )
        live_candidates = [
            path for path in candidates if self._path_is_up(path, round_ctx)
        ]
        if not live_candidates:
            raise NoPathError(
                f"all candidate routes {source} -> {destination} are failed"
            )
        failures = []
        for path in live_candidates:
            try:
                segments, regen_sites = self._assign(path, rate_bps, round_ctx)
            except (WavelengthBlockedError, SignalError) as exc:
                # SignalError: a single link on this route exceeds the
                # optical reach at this rate, so the route is unusable.
                failures.append(str(exc))
                continue
            return RwaPlan(path, segments, regen_sites, rate_bps)
        raise WavelengthBlockedError(
            f"no wavelength assignment on any of {len(live_candidates)} routes "
            f"{source} -> {destination}: " + "; ".join(failures)
        )

    # -- internals ------------------------------------------------------------

    def _candidate_routes(
        self,
        source: str,
        destination: str,
        banned_links: set,
        banned_nodes: set,
        round_ctx: Optional["_PlanningRound"] = None,
    ) -> List[List[str]]:
        """K-shortest candidate routes, served from the cache when fresh.

        Entries are stamped with the topology generation and fiber-plant
        failure epoch; "no path" outcomes are cached as an empty route
        list so repeated blocked requests stay cheap too.  Within a
        planning round the result (or the NoPathError) is additionally
        memoized on the round, skipping even the LRU lookup and its
        defensive copy for repeated routes.
        """
        memo_key = None
        if round_ctx is not None:
            memo_key = (
                source,
                destination,
                frozenset(banned_links),
                frozenset(banned_nodes),
            )
            memoized = round_ctx.routes.get(memo_key)
            if memoized is not None:
                if isinstance(memoized, NoPathError):
                    raise memoized
                return memoized  # type: ignore[return-value]
        try:
            routes = self._routes_from_cache(
                source, destination, banned_links, banned_nodes,
                copy=round_ctx is None,
            )
        except NoPathError as exc:
            if memo_key is not None:
                round_ctx.routes[memo_key] = exc
            raise
        if memo_key is not None:
            round_ctx.routes[memo_key] = routes
        return routes

    def _routes_from_cache(
        self,
        source: str,
        destination: str,
        banned_links: set,
        banned_nodes: set,
        copy: bool = True,
    ) -> List[List[str]]:
        """The LRU-cache-backed route lookup behind :meth:`_candidate_routes`."""
        if self._cache is None:
            return self._inventory.graph.k_shortest_paths(
                source,
                destination,
                self._k_paths,
                excluded_links=banned_links,
                excluded_nodes=banned_nodes,
            )
        graph = self._inventory.graph
        generation = graph.generation
        epoch = self._inventory.plant.failure_epoch
        key = make_route_key(
            source, destination, self._k_paths, banned_links, banned_nodes
        )
        lookup = self._cache.get if copy else self._cache.get_ref
        cached = lookup(key, generation, epoch)
        if cached is not None:
            if not cached:
                raise NoPathError(f"no path from {source!r} to {destination!r}")
            return cached
        try:
            routes = graph.k_shortest_paths(
                source,
                destination,
                self._k_paths,
                excluded_links=banned_links,
                excluded_nodes=banned_nodes,
            )
        except NoPathError:
            self._cache.put(key, generation, epoch, [])
            raise
        self._cache.put(key, generation, epoch, routes)
        return routes

    def _path_is_up(
        self, path: List[str], round_ctx: Optional["_PlanningRound"]
    ) -> bool:
        """Liveness of a candidate path, memoized across a planning round."""
        if round_ctx is None:
            return self._inventory.plant.path_is_up(path)
        key = tuple(path)
        up = round_ctx.live.get(key)
        if up is None:
            up = self._inventory.plant.path_is_up(path)
            round_ctx.live[key] = up
        return up

    def _assign(
        self,
        path: List[str],
        rate_bps: float,
        round_ctx: Optional["_PlanningRound"] = None,
    ) -> Tuple[List[Segment], List[str]]:
        """Segment a route at regen sites and pick a channel per segment."""
        graph = self._inventory.graph
        if round_ctx is None:
            regen_sites = self._reach.regen_sites(graph, path, rate_bps)
        else:
            regen_key = (tuple(path), rate_bps)
            memoized = round_ctx.regens.get(regen_key)
            if memoized is None:
                regen_sites = self._reach.regen_sites(graph, path, rate_bps)
                round_ctx.regens[regen_key] = tuple(regen_sites)
            else:
                regen_sites = list(memoized)
        boundaries = [path[0]] + regen_sites + [path[-1]]
        # Candidate routes are simple paths, so node names are unique and
        # a single node->index map replaces the O(n^2) repeated .index().
        position = {node: index for index, node in enumerate(path)}
        indices = [position[b] for b in boundaries]
        segments = []
        for start, end in zip(indices, indices[1:]):
            nodes = path[start : end + 1]
            channel = self._pick_channel(nodes, round_ctx)
            segments.append(Segment(nodes, channel))
        return segments, regen_sites

    def _pick_channel(
        self,
        nodes: List[str],
        round_ctx: Optional["_PlanningRound"] = None,
    ) -> int:
        if round_ctx is None:
            free = self._inventory.plant.common_free_channels(nodes)
        else:
            key = tuple(nodes)
            base = round_ctx.free.get(key)
            if base is None:
                base = self._inventory.plant.common_free_channels(nodes)
                round_ctx.free[key] = base
            free = base
            if round_ctx.overlay_on:
                taken = round_ctx.claimed_on(nodes)
                if taken:
                    free = base - taken
        # The end ROADMs must also have the channel free on the relevant
        # degree (a previous segment of this very plan could contend, but
        # plans are executed atomically per segment, so link occupancy is
        # the authoritative constraint here).
        if not free:
            raise WavelengthBlockedError(
                f"no common free wavelength on segment {' - '.join(nodes)}"
            )
        if self._assignment == "first-fit":
            return min(free)
        return self._streams.choice("rwa:random-channel", sorted(free))
