"""The GRIPhoN controller: orders, restoration, and bridge-and-roll.

This is the brain of the system.  It owns the inventory database, talks
to every EMS, and implements the four Table 1 capabilities:

* **dynamic configurable-rate services** — orders are decomposed into
  wavelength and/or ODU0 sub-wavelength components (the paper's 12 Gbps
  example becomes one 10G lightpath plus two 1G OTN circuits);
* **rapid establishment** — setup runs as simulated EMS workflows that
  complete in about a minute instead of weeks;
* **reduced outage times** — fiber-cut detection, localization, and
  automated wavelength re-provisioning, plus sub-second shared-mesh
  restoration for OTN circuits;
* **minimal maintenance impact** — automated bridge-and-roll migrates a
  live connection to a disjoint path with only a tiny roll hit.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.admission import AdmissionControl, CustomerProfile
from repro.core.connection import Connection, ConnectionKind, ConnectionState
from repro.core.grooming import GroomingEngine
from repro.core.inventory import InventoryDatabase
from repro.core.provisioning import LightpathProvisioner
from repro.shard.unit import ShardUnit
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    EquipmentError,
    GriphonError,
    MigrationLockedError,
    ResourceError,
)
from repro.faults.plan import FaultPlan
from repro.faults.resilient import ResilientExecutor, RetryPolicy
from repro.ems.fxc_ctl import FxcController
from repro.ems.latency import LatencyModel
from repro.ems.nte_ctl import NteController
from repro.ems.otn_ems import OtnEms
from repro.ems.roadm_ems import RoadmEms
from repro.iplayer.network import IpLayer
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Span, Tracer
from repro.optical.impairments import ReachModel
from repro.optical.lightpath import Lightpath, LightpathState
from repro.optical.osnr import OsnrModel
from repro.otn.circuit import OduCircuitState
from repro.otn.mesh_restoration import SharedMeshProtection
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.randomness import RandomStreams
from repro.units import GBPS, ODU_LEVELS

#: The brief traffic hit while rolling onto a bridge path, in seconds.
ROLL_HIT_S = 0.050

#: Client granularity of sub-wavelength service: 1 GbE in an ODU0.
SUBWAVELENGTH_CLIENT_BPS = 1 * GBPS


def decompose_rate(
    rate_bps: float, wavelength_rates: List[float]
) -> Tuple[List[float], int]:
    """Split a requested rate into wavelength components and 1G circuits.

    Greedy from the largest wavelength rate down; the remainder is packed
    into 1 Gbps ODU0 circuits.  The paper's example: 12 Gbps with a 10G
    wavelength available becomes ``([10G], 2)``.

    Raises:
        ConfigurationError: for a non-positive rate.
    """
    if rate_bps <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate_bps}")
    remaining = rate_bps
    waves: List[float] = []
    for rate in sorted(wavelength_rates, reverse=True):
        while remaining >= rate:
            waves.append(rate)
            remaining -= rate
    circuits = int(math.ceil(remaining / SUBWAVELENGTH_CLIENT_BPS - 1e-9))
    return waves, max(0, circuits)


class GriphonController:
    """Connection management for the GRIPhoN network."""

    def __init__(
        self,
        sim: Simulator,
        inventory: InventoryDatabase,
        streams: RandomStreams,
        latency: Optional[LatencyModel] = None,
        reach: Optional[ReachModel] = None,
        parallel_ems: bool = False,
        k_paths: int = 4,
        assignment: str = "first-fit",
        auto_restore: bool = True,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        osnr_model: Optional[OsnrModel] = None,
    ) -> None:
        self.sim = sim
        self.inventory = inventory
        self.streams = streams
        #: Connection-lifecycle tracing (off unless the tracer is enabled)
        #: and the metrics registry every subsystem aggregates into.
        self.tracer = tracer if tracer is not None else Tracer(sim.time_source())
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.latency = latency or LatencyModel(streams)
        self.latency.bind_metrics(self.metrics)
        self.roadm_ems = RoadmEms(
            inventory.roadms, inventory.plant, self.latency, metrics=self.metrics
        )
        #: The link-budget model behind per-connection OSNR margins.
        self.osnr_model = osnr_model if osnr_model is not None else OsnrModel()
        # Record every amplifier chain's provisioned gain in inventory so
        # the invariant auditor can cross-check live settings against it.
        for key, chain in self.roadm_ems.amplifier_chains().items():
            inventory.record_amplifier_gain(key, chain.target_gain_db)
        self.fxc_ctl = FxcController(
            inventory.fxcs, self.latency, metrics=self.metrics
        )
        self.nte_ctl = NteController(
            inventory.ntes, self.latency, metrics=self.metrics
        )
        self.otn_ems = OtnEms(
            inventory.otn_switches, self.latency, metrics=self.metrics
        )
        #: Every EMS command runs through the resilient executor: the
        #: fault plan decides what breaks, the policy how hard we retry.
        #: With the default empty plan this is a zero-cost passthrough.
        plan = fault_plan if fault_plan is not None else FaultPlan()
        self.fault_plan = plan.bind(streams)
        self.resilience = ResilientExecutor(
            self.fault_plan,
            retry_policy if retry_policy is not None else RetryPolicy(),
            streams=streams.spawn("resilient"),
            clock=sim.time_source(),
            metrics=self.metrics,
        )
        #: The controller's planning state — graph, inventory, RWA, and
        #: route cache — bundled as one :class:`ShardUnit`, the same
        #: unit a region shard owns in a sharded deployment.  ``rwa``
        #: stays as an alias because every caller plans through it.
        self.planning = ShardUnit(
            "controller",
            inventory,
            reach=reach,
            k_paths=k_paths,
            assignment=assignment,
            streams=streams,
            tracer=self.tracer,
        )
        self.rwa = self.planning.rwa
        self.provisioner = LightpathProvisioner(
            inventory,
            self.roadm_ems,
            self.latency,
            parallel_ems=parallel_ems,
            tracer=self.tracer,
            metrics=self.metrics,
            resilience=self.resilience,
        )
        self.protection = SharedMeshProtection(metrics=self.metrics)
        # The gauges read the engine's cache at sample time (not a
        # captured reference) and degrade to None/0 when no cache is
        # attached — e.g. inside a sweep worker built with the cache
        # disabled — instead of raising at snapshot time.
        self.metrics.register_gauge(
            "rwa.route_cache.hit_rate",
            lambda: (
                self.rwa.route_cache.stats()["hit_rate"]
                if self.rwa.route_cache is not None
                else None
            ),
        )
        self.metrics.register_gauge(
            "rwa.route_cache.size",
            lambda: (
                len(self.rwa.route_cache)
                if self.rwa.route_cache is not None
                else 0
            ),
        )
        for stat in ("hits", "misses", "invalidations", "evictions"):
            self.metrics.register_gauge(
                f"rwa.route_cache.{stat}",
                lambda stat=stat: (
                    self.rwa.route_cache.stats()[stat]
                    if self.rwa.route_cache is not None
                    else 0
                ),
            )
        self.grooming = GroomingEngine(
            inventory, self.protection, line_factory=self._create_otn_line
        )
        self.admission = AdmissionControl()
        #: Optional IP layer for sub-1G packet services (Fig. 2).  Set
        #: by the facade (or directly) after construction.
        self.ip_layer: Optional[IpLayer] = None
        #: Optional concurrent order pipeline (repro.pipeline).  Set by
        #: GriphonNetwork.enable_pipeline(); BodService.submit_connection
        #: requires it.
        self.pipeline = None
        self.auto_restore = auto_restore
        self.connections: Dict[str, Connection] = {}
        self._conn_seq = itertools.count()
        self._lightpath_conn: Dict[str, str] = {}
        self._evc_conn: Dict[str, str] = {}
        self._line_lightpath: Dict[str, str] = {}
        self._new_line_lightpaths: List[Lightpath] = []
        #: Per-connection migration locks: connection_id -> holder tag.
        #: Serializes lock-aware migration drivers (re-grooming, the
        #: global re-optimization executor) on the same connection.
        self._migration_locks: Dict[str, str] = {}
        inventory.plant.on_failure.append(self._handle_link_failure)
        #: Observers called with (event_name, payload) for metrics.
        self.observers: List[Callable[[str, dict], None]] = []

    def set_latency_model(self, latency: LatencyModel) -> None:
        """Swap the latency model everywhere (EMSes, provisioner).

        Used by ablation experiments that re-time the same network with
        faster or jitter-free EMS steps.
        """
        self.latency = latency
        self.latency.bind_metrics(self.metrics)
        self.roadm_ems._latency = latency
        self.fxc_ctl._latency = latency
        self.nte_ctl._latency = latency
        self.otn_ems._latency = latency
        self.provisioner._latency = latency

    # -- customers -------------------------------------------------------------

    def register_customer(self, profile: CustomerProfile) -> None:
        """Register a CSP customer with its quotas."""
        self.admission.register_customer(profile)

    def export_route_cache_counters(self) -> None:
        """Fold the route cache's counters into the metrics registry.

        The cache keeps its own counters (no per-lookup registry
        writes); this copies them into the registry's *counter* space —
        ``rwa.route_cache.hits`` etc. — which, unlike the pull gauges,
        survives :meth:`MetricsRegistry.state` and therefore crosses
        sweep-worker process boundaries.  Idempotent: only the delta
        since the last export is added, so calling it repeatedly (or
        from both a study runner and a CLI exit path) never
        double-counts.
        """
        cache = self.rwa.route_cache
        if cache is None:
            return
        stats = cache.stats()
        for stat in ("hits", "misses", "invalidations", "evictions"):
            name = f"rwa.route_cache.{stat}"
            delta = stats[stat] - self.metrics.counter(name)
            if delta:
                self.metrics.inc(name, delta)

    def wavelength_rates(self) -> List[float]:
        """Line rates for which any node has transponders installed."""
        rates = set()
        for pool in self.inventory.transponders.values():
            for ot in pool.transponders:
                rates.add(ot.line_rate_bps)
        return sorted(rates)

    # -- signal quality ---------------------------------------------------------

    def osnr_margin_db(self, lightpath: Lightpath) -> float:
        """The lightpath's worst per-segment OSNR margin, in dB.

        Each regen resets the optical signal, so margin is evaluated per
        regen-free segment — distance from the link budget plus any
        gray-failure penalties active on the segment's links — and the
        lightpath's margin is the minimum across segments.
        """
        graph = self.inventory.graph
        plant = self.inventory.plant
        margins = []
        for segment in lightpath.segments:
            km = sum(
                graph.link_between(u, v).length_km
                for u, v in zip(segment.nodes, segment.nodes[1:])
            )
            penalty = plant.path_penalty_db(segment.nodes)
            margins.append(
                self.osnr_model.margin_db(km, lightpath.rate_bps, penalty)
            )
        return min(margins)

    def connection_osnr_margin_db(
        self, connection_id: str
    ) -> Optional[float]:
        """The connection's OSNR margin: min across its lightpaths.

        Returns None for connections with no live lightpath (packet
        services, or records that never reached setup).
        """
        connection = self.connections.get(connection_id)
        if connection is None:
            return None
        margins = []
        for lightpath_id in connection.lightpath_ids:
            lightpath = self.inventory.lightpaths.get(lightpath_id)
            if lightpath is not None and lightpath.segments:
                margins.append(self.osnr_margin_db(lightpath))
        return min(margins) if margins else None

    # -- orders ----------------------------------------------------------------

    def request_connection(
        self,
        customer: str,
        premises_a: str,
        premises_b: str,
        rate_bps: float,
        kind: Optional[ConnectionKind] = None,
    ) -> Connection:
        """Order a connection; returns immediately with the record.

        The connection sets up asynchronously via simulated EMS workflows;
        run the simulator and watch ``connection.state``.  A request that
        cannot be admitted or resourced returns a BLOCKED record (with
        ``blocked_reason``) rather than raising, because that is what the
        customer GUI shows.

        The order lifecycle is split into :meth:`open_order`,
        :meth:`admit_order`, and :meth:`launch_order` so the concurrent
        order pipeline (:mod:`repro.pipeline`) drives the exact same
        steps per order as this serial path — only the planning is
        batched there.
        """
        connection, span = self.open_order(
            customer, premises_a, premises_b, rate_bps, kind
        )
        if not self.admit_order(connection, span):
            return connection
        try:
            self.launch_order(connection, kind, span)
        except GriphonError as exc:
            self.block_admitted_order(connection, span, exc)
        return connection

    # -- order lifecycle steps (shared with repro.pipeline) ---------------------

    def open_order(
        self,
        customer: str,
        premises_a: str,
        premises_b: str,
        rate_bps: float,
        kind: Optional[ConnectionKind] = None,
    ) -> Tuple[Connection, Span]:
        """Create the connection record and its root tracing span."""
        connection_id = f"conn-{next(self._conn_seq)}"
        connection = Connection(
            connection_id,
            customer,
            premises_a,
            premises_b,
            rate_bps,
            kind or ConnectionKind.WAVELENGTH,
            requested_at=self.sim.now,
        )
        self.connections[connection_id] = connection
        # The root span covers the order end to end: it closes when the
        # setup workflow completes (or immediately, for blocked orders).
        span = self.tracer.span(
            "connection.request",
            connection=connection_id,
            customer=customer,
            rate_bps=rate_bps,
        )
        connection.trace_id = span.trace_id
        return connection, span

    def admit_order(self, connection: Connection, span: Span) -> bool:
        """Run admission control for an opened order.

        Returns False — with the record settled as BLOCKED — when a
        quota or premises restriction refuses the order.
        """
        try:
            with span.child("order.admit"):
                self.admission.admit(
                    connection.customer,
                    connection.premises_a,
                    connection.premises_b,
                    connection.rate_bps,
                )
        except AdmissionError as exc:
            self._settle_blocked(connection, span, exc)
            return False
        return True

    def launch_order(
        self,
        connection: Connection,
        kind: Optional[ConnectionKind],
        span: Span,
        planner: Optional[Callable] = None,
    ) -> None:
        """Claim an admitted order's resources and start its setup.

        ``planner`` substitutes for :meth:`RwaEngine.plan` on the
        order's wavelength components (the pipeline serves plans
        computed by the round's ``plan_batch`` here).  Raises
        GriphonError when claiming fails — the caller decides between
        :meth:`block_admitted_order` and a pipeline defer.
        """
        with span.child("order.claim") as claim_span:
            lightpaths, circuits, line_lightpaths = self._claim_components(
                connection, kind, parent_span=claim_span, planner=planner
            )
        Process(
            self.sim,
            self._setup_workflow(
                connection, lightpaths, circuits, line_lightpaths, span
            ),
            label=f"setup:{connection.connection_id}",
        )

    def block_admitted_order(
        self, connection: Connection, span: Span, exc: GriphonError
    ) -> None:
        """Settle an admitted order as BLOCKED, returning its quota."""
        self.admission.release(connection.customer, connection.rate_bps)
        self._settle_blocked(connection, span, exc)

    def abandon_order(
        self, connection: Connection, span: Span, reason: str
    ) -> None:
        """Withdraw an admitted order before anything was claimed.

        The pipeline's defer path: quota is returned and the connection
        record is removed (the order goes back to the queue and will be
        reprocessed — with a fresh record — in a later round).
        """
        self.admission.release(connection.customer, connection.rate_bps)
        del self.connections[connection.connection_id]
        span.set_tag("outcome", "deferred").set_tag("reason", reason).finish()
        self.metrics.inc("connection.deferred")

    def _settle_blocked(
        self, connection: Connection, span: Span, exc: Exception
    ) -> None:
        """Mark an order BLOCKED and emit the usual telemetry."""
        connection.state = ConnectionState.BLOCKED
        connection.blocked_reason = str(exc)
        span.set_tag("outcome", "blocked").finish()
        self.metrics.inc("connection.blocked")
        self._notify("blocked", {"connection": connection, "reason": str(exc)})

    def teardown_connection(self, connection_id: str) -> Connection:
        """Order a teardown; completes asynchronously (about ten seconds)."""
        connection = self.connection(connection_id)
        connection.transition(ConnectionState.TEARING_DOWN)
        Process(
            self.sim,
            self._teardown_workflow(connection),
            label=f"teardown:{connection_id}",
        )
        return connection

    def connection(self, connection_id: str) -> Connection:
        """Look up a connection.

        Raises:
            ResourceError: for an unknown id.
        """
        try:
            return self.connections[connection_id]
        except KeyError:
            raise ResourceError(f"unknown connection {connection_id!r}") from None

    def connections_of(self, customer: str) -> List[Connection]:
        """All connections (any state) belonging to a customer."""
        return [
            conn for conn in self.connections.values() if conn.customer == customer
        ]

    # -- failure injection & handling -------------------------------------------------

    def cut_link(self, a: str, b: str) -> None:
        """Cut a fiber link (failure handling runs automatically)."""
        self.inventory.plant.cut_link(a, b)

    def cut_srlg(self, srlg: str) -> None:
        """Cut a whole shared-risk group (conduit cut)."""
        self.inventory.plant.cut_srlg(srlg)

    def repair_link(self, a: str, b: str) -> None:
        """Repair a link and retry restoration for still-failed connections."""
        self.inventory.plant.repair_link(a, b)
        if self.ip_layer is not None:
            try:
                self.ip_layer.repair_adjacency(a, b)
            except GriphonError:
                pass  # no adjacency rides this span
            self._retry_down_evcs()
        if self.auto_restore:
            for connection in self.connections.values():
                if connection.state is ConnectionState.FAILED:
                    self._attempt_restoration(connection)
        else:
            # Manual world: when the fiber is physically repaired, the
            # original path lights up again and traffic resumes.
            self._revive_repaired_connections()

    def _revive_repaired_connections(self) -> None:
        for connection in self.connections.values():
            if connection.state is not ConnectionState.FAILED:
                continue
            if not connection.lightpath_ids:
                continue
            lightpath = self.inventory.lightpaths.get(
                connection.lightpath_ids[0]
            )
            if lightpath is None or lightpath.state is not LightpathState.FAILED:
                continue
            if not self.inventory.plant.path_is_up(lightpath.path):
                continue
            lightpath.transition(LightpathState.UP)
            connection.transition(ConnectionState.UP)
            connection.end_outage(self.sim.now)
            self._notify("revived", {"connection": connection})

    def fail_transponder(self, ot_id: str) -> None:
        """Fail a transponder card; the lightpath holding it goes dark.

        The failed card stays allocated to its lightpath (the slot is
        not reusable until :meth:`repair_transponder`), but restoration
        re-provisions onto a healthy card when one is free.
        """
        node = ot_id.split(":")[1]
        ot = self.inventory.transponders[node].get(ot_id)
        owner = ot.fail()
        self.tracer.event("failure.transponder", ot=ot_id)
        self.metrics.inc("failure.transponder")
        self._notify("transponder-failed", {"ot_id": ot_id, "owner": owner})
        if owner is None:
            return
        lightpath = self.inventory.lightpaths.get(owner)
        if lightpath is None or lightpath.state is not LightpathState.UP:
            return
        lightpath.transition(LightpathState.FAILED)
        conn_id = self._lightpath_conn.get(owner)
        if conn_id is not None:
            self._fail_connection_component(self.connection(conn_id))
        for line_id, lp_id in list(self._line_lightpath.items()):
            if lp_id == owner:
                self._fail_otn_line(line_id)
        if self.auto_restore:
            for connection in list(self.connections.values()):
                if connection.state is ConnectionState.FAILED:
                    self._attempt_restoration(connection)

    def repair_transponder(self, ot_id: str) -> None:
        """Replace a failed transponder card; it is allocatable again."""
        node = ot_id.split(":")[1]
        self.inventory.transponders[node].get(ot_id).repair()

    def fail_amplifier(self, a: str, b: str) -> None:
        """Fail an amplifier on span a-b: the whole span goes dark.

        Optically equivalent to a fiber cut on that span (every channel
        through the dead amplifier is lost), so the fiber-cut machinery
        handles localization and restoration.
        """
        self.tracer.event("failure.amplifier", link=f"{a}={b}")
        self.metrics.inc("failure.amplifier")
        self._notify("amplifier-failed", {"link": (a, b)})
        self.cut_link(a, b)

    def repair_amplifier(self, a: str, b: str) -> None:
        """Replace the failed amplifier; the span carries traffic again."""
        self.repair_link(a, b)

    def fail_otn_switch(self, node: str) -> None:
        """Fail the OTN switch fabric at a node.

        Every line terminating there fails; circuits riding those lines
        mesh-restore around the dead switch where shared capacity allows.

        Raises:
            EquipmentError: if no OTN switch is installed at ``node``.
        """
        switch = self.inventory.otn_switches.get(node)
        if switch is None:
            raise EquipmentError(
                f"no OTN switch at {node!r}", site=node, element=node
            )
        self.tracer.event("failure.otn_switch", node=node)
        self.metrics.inc("failure.otn_switch")
        self._notify("otn-switch-failed", {"node": node})
        for line in switch.lines:
            self._fail_otn_line(line.line_id)

    def repair_otn_switch(self, node: str) -> None:
        """Repair the switch fabric; its failed lines come back.

        Raises:
            EquipmentError: if no OTN switch is installed at ``node``.
        """
        switch = self.inventory.otn_switches.get(node)
        if switch is None:
            raise EquipmentError(
                f"no OTN switch at {node!r}", site=node, element=node
            )
        for line in switch.lines:
            if line.failed:
                line.repair()

    # -- bridge-and-roll ------------------------------------------------------------

    def lock_migration(self, connection_id: str, holder: str) -> bool:
        """Try to take the per-connection migration lock for ``holder``.

        Returns True when the lock was free (or already held by the same
        holder — acquisition is idempotent per holder).  The lock only
        arbitrates between cooperating migration drivers; it does not
        block teardown, restoration, or lock-oblivious bridge-and-roll
        callers, whose races the roll-time abort guards already settle.
        """
        current = self._migration_locks.get(connection_id)
        if current is not None and current != holder:
            return False
        self._migration_locks[connection_id] = holder
        return True

    def unlock_migration(self, connection_id: str, holder: str) -> None:
        """Release the migration lock if (and only if) ``holder`` owns it."""
        if self._migration_locks.get(connection_id) == holder:
            del self._migration_locks[connection_id]

    def migration_lock_holder(self, connection_id: str) -> Optional[str]:
        """The current migration-lock holder, or None when unlocked."""
        return self._migration_locks.get(connection_id)

    def bridge_and_roll(
        self,
        connection_id: str,
        exclude_links: Tuple = (),
        on_done: Optional[Callable[[dict], None]] = None,
        plan=None,
        lock_holder: Optional[str] = None,
        on_settled: Optional[Callable[[dict], None]] = None,
    ) -> Process:
        """Migrate a live wavelength connection to a new path.

        Sets up a full new wavelength path (the bridge) while the original
        carries traffic, then rolls traffic across with only a ~50 ms hit,
        then releases the old path.  By default the controller plans the
        bridge itself and requires it to be resource-disjoint from the old
        path (paper §2.2).  A precomputed ``plan`` (an
        :class:`~repro.core.rwa.RwaPlan`) overrides that: the bridge is
        claimed exactly as given — the global re-optimizer uses this to
        steer a connection onto a specific route and wavelength, including
        a rewavelength move on the *same* route (legal because the target
        channels are disjoint from every currently occupied channel, the
        connection's own included, for the bridge-before-release window).

        ``lock_holder`` identifies a cooperating migration driver: the
        per-connection migration lock is taken for the whole move and
        released on every exit path.  ``on_settled`` fires exactly once
        when the move settles, with ``{"connection_id", "outcome"}``
        (outcome ``"completed"`` or ``"aborted"``) — unlike ``on_done``,
        which only fires on completion.

        Returns the driving :class:`Process`; ``on_done`` receives a
        summary dict with ``bridge_s``, ``hit_s``, and the new path.

        Raises:
            MigrationLockedError: when ``lock_holder`` is given and the
                lock is held by another driver.
            ResourceError: if the connection is not an UP wavelength
                connection with exactly one lightpath.
            NoPathError / WavelengthBlockedError: if no disjoint bridge
                can be planned, or the (given) plan cannot be claimed.
        """
        connection = self.connection(connection_id)
        if lock_holder is not None and not self.lock_migration(
            connection_id, lock_holder
        ):
            raise MigrationLockedError(
                f"connection {connection_id!r} is mid-migration (lock held "
                f"by {self._migration_locks[connection_id]!r})"
            )
        try:
            return self._start_bridge_and_roll(
                connection, exclude_links, on_done, plan, lock_holder,
                on_settled,
            )
        except BaseException:
            if lock_holder is not None:
                self.unlock_migration(connection_id, lock_holder)
            raise

    def _start_bridge_and_roll(
        self, connection, exclude_links, on_done, plan, lock_holder, on_settled
    ) -> Process:
        """Validate, plan/claim, and spawn the roll workflow (lock held)."""
        connection_id = connection.connection_id
        if connection.state is not ConnectionState.UP:
            raise ResourceError(
                f"{connection_id} is {connection.state.value}; bridge-and-roll "
                f"needs an UP connection"
            )
        if len(connection.lightpath_ids) != 1 or connection.circuit_ids:
            raise ResourceError(
                "bridge-and-roll currently supports single-lightpath "
                "wavelength connections"
            )
        old = self.inventory.lightpaths[connection.lightpath_ids[0]]
        span = self.tracer.span(
            "bridge_and_roll",
            trace_id=connection.trace_id,
            connection=connection_id,
        )
        try:
            if plan is None:
                with span.child("roll.plan") as plan_span:
                    plan = self.rwa.plan(
                        old.source,
                        old.destination,
                        old.rate_bps,
                        excluded_links=exclude_links,
                        avoid_srlgs_of=old.path,
                        parent_span=plan_span,
                    )
            with span.child("roll.claim"):
                bridge = self.provisioner.claim(plan)
        except GriphonError:
            span.set_tag("outcome", "blocked").finish()
            self.metrics.inc("bridge_and_roll.blocked")
            raise
        return Process(
            self.sim,
            self._bridge_and_roll_workflow(
                connection, old, bridge, on_done, span,
                lock_holder=lock_holder, on_settled=on_settled,
            ),
            label=f"bridge-roll:{connection_id}",
        )

    # -- workflows -------------------------------------------------------------------

    def _setup_workflow(
        self, connection, lightpaths, circuits, line_lightpaths, span=None
    ):
        if span is None:
            span = self.tracer.span(
                "connection.request", connection=connection.connection_id
            )
        connection.transition(ConnectionState.SETTING_UP)
        # Original component positions — needed to map an aborted
        # component back to the NTE/FXC claims made for it.
        lp_order = {lp.lightpath_id: i for i, lp in enumerate(lightpaths)}
        ckt_order = {ckt.circuit_id: i for i, ckt in enumerate(circuits)}
        aborted_lightpaths: List[Lightpath] = []
        failed_circuits: List[Tuple] = []
        with span.child("connection.setup") as setup_span:
            for _ in connection.evc_ids:
                with setup_span.child("ip.evc"):
                    yield self.latency.sample("controller.order")
                    yield self.latency.sample("ip.evc")
            # Wavelengths created to carry new OTN lines come up first (the
            # circuits ride them), without customer-side FXC steps.
            for lightpath in line_lightpaths:
                yield from self.provisioner.setup_workflow(
                    lightpath, include_fxc=False, parent_span=setup_span
                )
                if lightpath.state is LightpathState.RELEASED:
                    self._abort_line_lightpath(lightpath)
            for lightpath in lightpaths:
                yield from self.provisioner.setup_workflow(
                    lightpath, parent_span=setup_span
                )
                if lightpath.state is LightpathState.RELEASED:
                    # The provisioning saga rolled this one back.
                    aborted_lightpaths.append(lightpath)
            for circuit in circuits:
                yield from self._circuit_setup_workflow(
                    circuit, setup_span, failed_circuits
                )
        if aborted_lightpaths or failed_circuits:
            self._settle_partial_setup(
                connection,
                aborted_lightpaths,
                failed_circuits,
                lp_order,
                ckt_order,
                span,
            )
            return
        connection.transition(ConnectionState.UP)
        connection.up_at = self.sim.now
        failed_setup = any(
            self.inventory.lightpaths[lp_id].state is LightpathState.FAILED
            for lp_id in connection.lightpath_ids
            if lp_id in self.inventory.lightpaths
        )
        if failed_setup:
            span.set_tag("outcome", "failed-during-setup").finish()
            self._fail_connection_component(connection)
            if self.auto_restore:
                self._attempt_restoration(connection)
            return
        span.set_tag("outcome", "up").finish()
        self.metrics.inc("connection.up")
        if connection.setup_duration is not None:
            self.metrics.observe("connection.setup_s", connection.setup_duration)
        self._notify("up", {"connection": connection})

    def _circuit_setup_workflow(self, circuit, setup_span, failed_circuits):
        """Program one ODU circuit's cross-connects, saga-style.

        A cross-connect that fails for good (or a working line that died
        while earlier components were setting up) aborts the circuit:
        the programmed cross-connects are removed and the circuit's line
        slots released.  The (circuit, error) pair lands in
        ``failed_circuits`` for the caller to settle.
        """
        with setup_span.child(
            "otn.circuit.setup", circuit=circuit.circuit_id
        ) as ckt_span:
            circuit.transition(OduCircuitState.SETTING_UP)
            circuit.setup_started_at = self.sim.now
            yield self.latency.sample("controller.order")
            programmed = 0
            error = None
            for line_id in circuit.line_ids:
                duration = self.latency.sample("otn.crossconnect")
                try:
                    yield from self.resilience.execute(
                        "otn_ems",
                        line_id,
                        "crossconnect",
                        duration,
                        parent_span=ckt_span,
                    )
                except EquipmentError as exc:
                    error = exc
                    break
                programmed += 1
            dead_lines = []
            for line_id in circuit.line_ids:
                line = self.inventory.otn_lines.get(line_id)
                if line is not None and line.failed:
                    dead_lines.append(line_id)
            if error is None and dead_lines:
                error = EquipmentError(
                    f"OTN line {dead_lines[0]} failed during setup",
                    site=dead_lines[0],
                    element=dead_lines[0],
                    command="crossconnect",
                )
            if error is not None:
                # Compensate: remove what was programmed, free the slots.
                with ckt_span.child("otn.circuit.rollback", reason=str(error)):
                    for _ in range(programmed):
                        yield self.latency.sample("otn.crossconnect.remove")
                circuit.transition(OduCircuitState.RELEASED)
                self.grooming.release_circuit(circuit)
                failed_circuits.append((circuit, error))
                ckt_span.set_tag("outcome", "aborted")
                self.metrics.inc("otn.circuit.setup_aborted")
            else:
                circuit.transition(OduCircuitState.UP)
                circuit.up_at = self.sim.now

    def _settle_partial_setup(
        self,
        connection,
        aborted_lightpaths,
        failed_circuits,
        lp_order,
        ckt_order,
        span,
    ) -> None:
        """Decide DEGRADED vs BLOCKED after components aborted mid-setup.

        Aborted components are dropped (their NTE interfaces and FXC
        steering released) in descending claim position so the
        positional bookkeeping of the survivors stays valid.  If any
        component made it up the connection enters service DEGRADED;
        if none did, every remaining claim is unwound and the order is
        BLOCKED — zero residue, exactly like a claim-time block.
        """
        for lightpath in sorted(
            aborted_lightpaths,
            key=lambda lp: lp_order[lp.lightpath_id],
            reverse=True,
        ):
            self._drop_aborted_lightpath(
                connection, lightpath, lp_order[lightpath.lightpath_id]
            )
        for circuit, _error in sorted(
            failed_circuits,
            key=lambda item: ckt_order[item[0].circuit_id],
            reverse=True,
        ):
            self._drop_aborted_circuit(
                connection, circuit, ckt_order[circuit.circuit_id]
            )
        if aborted_lightpaths:
            connection.setup_error = aborted_lightpaths[0].setup_error
        else:
            connection.setup_error = failed_circuits[0][1]
        survivors = bool(
            connection.lightpath_ids
            or connection.circuit_ids
            or connection.evc_ids
        )
        if survivors:
            connection.transition(ConnectionState.DEGRADED)
            connection.up_at = self.sim.now
            span.set_tag("outcome", "degraded").finish()
            self.metrics.inc("connection.setup_degraded")
            self._notify("setup-degraded", {"connection": connection})
        else:
            self._release_nte_claims(
                connection.nte_interfaces, connection.connection_id
            )
            connection.nte_interfaces = []
            self._release_steering(connection)
            self.admission.release(connection.customer, connection.rate_bps)
            connection.blocked_reason = f"setup failed: {connection.setup_error}"
            connection.transition(ConnectionState.BLOCKED)
            span.set_tag("outcome", "setup-failed").finish()
            self.metrics.inc("connection.setup_failed")
            self._notify("setup-failed", {"connection": connection})

    def _drop_aborted_lightpath(self, connection, lightpath, position) -> None:
        """Remove one rolled-back lightpath from a connection's claims."""
        owner = connection.connection_id
        lp_id = lightpath.lightpath_id
        if lp_id in connection.lightpath_ids:
            connection.lightpath_ids.remove(lp_id)
        self._lightpath_conn.pop(lp_id, None)
        for ot_id in lightpath.ot_ids:
            site = ot_id.split(":")[1]
            fxc = self.inventory.fxcs.get(site)
            if fxc is None:
                continue
            try:
                port = fxc.find_port(ot_id)
            except GriphonError:
                continue
            peer = fxc.peer_of(port)
            fxc.disconnect(port, owner)
            fxc.label_port(port, "")
            if peer is not None:
                fxc.label_port(peer, "")
            dropped = {port, peer}
            connection.fxc_ports = [
                (s, p)
                for s, p in connection.fxc_ports
                if not (s == site and p in dropped)
            ]
        self._release_positional_nte(connection, "wave", position)

    def _drop_aborted_circuit(self, connection, circuit, position) -> None:
        """Remove one aborted ODU circuit from a connection's claims."""
        owner = connection.connection_id
        if circuit.circuit_id in connection.circuit_ids:
            connection.circuit_ids.remove(circuit.circuit_id)
        # Each circuit claimed one client port per end PoP, in order.
        ports = connection.otn_client_ports[2 * position : 2 * position + 2]
        for node, port in ports:
            switch = self.inventory.otn_switches.get(node)
            if switch is not None:
                try:
                    switch.release_client_port(port, owner)
                except GriphonError:
                    pass  # already released
            fxc = self.inventory.fxcs.get(node)
            if fxc is None:
                continue
            try:
                fxc_port = fxc.find_port(f"OTN:{node}:client{port}")
            except GriphonError:
                continue
            peer = fxc.peer_of(fxc_port)
            fxc.disconnect(fxc_port, owner)
            fxc.label_port(fxc_port, "")
            if peer is not None:
                fxc.label_port(peer, "")
            dropped = {fxc_port, peer}
            connection.fxc_ports = [
                (s, p)
                for s, p in connection.fxc_ports
                if not (s == node and p in dropped)
            ]
        connection.otn_client_ports = (
            connection.otn_client_ports[: 2 * position]
            + connection.otn_client_ports[2 * position + 2 :]
        )
        self._release_positional_nte(connection, "sub", position)

    def _release_positional_nte(self, connection, kind, position) -> None:
        """Release the NTE claims of the component at ``position``.

        Claims of one kind were made in component order at each
        premises, so the component's claim is the one whose per-premises
        rank equals its position.
        """
        owner = connection.connection_id
        kept = []
        rank: Dict[str, int] = {}
        for claim in connection.nte_interfaces:
            if claim[0] != kind:
                kept.append(claim)
                continue
            premises = claim[1]
            seen = rank.get(premises, 0)
            rank[premises] = seen + 1
            if seen != position:
                kept.append(claim)
                continue
            nte = self.inventory.ntes[premises]
            if kind == "wave":
                nte.release_interface(claim[2], owner)
            else:
                nte.release_subchannel(claim[2], claim[3], owner)
        connection.nte_interfaces = kept

    def _abort_line_lightpath(self, lightpath) -> None:
        """Handle a rolled-back carrier lightpath for a new OTN line.

        The line it was meant to carry becomes failed infrastructure;
        circuits groomed onto it abort during their own setup (their
        cross-connect programming finds the line dead).
        """
        lp_id = lightpath.lightpath_id
        for line_id, mapped in list(self._line_lightpath.items()):
            if mapped != lp_id:
                continue
            del self._line_lightpath[line_id]
            self._fail_otn_line(line_id)
        self.metrics.inc("otn.line.lightpath_aborted")

    def _teardown_workflow(self, connection):
        span = self.tracer.span(
            "connection.teardown",
            trace_id=connection.trace_id,
            connection=connection.connection_id,
        )
        started = self.sim.now
        for evc_id in list(connection.evc_ids):
            yield self.latency.sample("ip.evc.remove")
            if self.ip_layer is not None and any(
                evc.evc_id == evc_id for evc in self.ip_layer.evcs
            ):
                self.ip_layer.release_evc(evc_id)
            self._evc_conn.pop(evc_id, None)
        connection.evc_ids = []
        for circuit_id in list(connection.circuit_ids):
            circuit = self.inventory.circuits.get(circuit_id)
            if circuit is None:
                continue
            yield self.latency.sample("controller.release")
            for _ in circuit.line_ids:
                yield self.latency.sample("otn.crossconnect.remove")
            circuit.transition(OduCircuitState.RELEASED)
            self.grooming.release_circuit(circuit)
        for lightpath_id in list(connection.lightpath_ids):
            lightpath = self.inventory.lightpaths.get(lightpath_id)
            if lightpath is None:
                continue
            yield from self.provisioner.teardown_workflow(
                lightpath, parent_span=span
            )
            self._lightpath_conn.pop(lightpath_id, None)
        if connection.nte_interfaces:
            yield self.latency.sample("nte.release")
            self._release_nte_claims(
                connection.nte_interfaces, connection.connection_id
            )
            connection.nte_interfaces = []
        self._release_steering(connection)
        connection.transition(ConnectionState.RELEASED)
        connection.released_at = self.sim.now
        self.admission.release(connection.customer, connection.rate_bps)
        span.finish()
        self.metrics.inc("connection.released")
        self.metrics.observe("connection.teardown_s", self.sim.now - started)
        self._notify("released", {"connection": connection})

    def _bridge_and_roll_workflow(
        self, connection, old, bridge, on_done, span=None,
        lock_holder=None, on_settled=None,
    ):
        if span is None:
            span = self.tracer.span(
                "bridge_and_roll", connection=connection.connection_id
            )

        def settle(outcome: str, summary: Optional[dict] = None) -> None:
            # Release the migration lock before notifying, so a settle
            # callback can immediately start the connection's next move.
            if lock_holder is not None:
                self.unlock_migration(connection.connection_id, lock_holder)
            if on_settled is not None:
                payload = {
                    "connection_id": connection.connection_id,
                    "outcome": outcome,
                }
                if summary:
                    payload.update(summary)
                on_settled(payload)

        bridge_started = self.sim.now
        # Bridge: bring the new path up while the old one carries traffic.
        yield from self.provisioner.setup_workflow(
            bridge, include_fxc=False, parent_span=span
        )
        bridge_s = self.sim.now - bridge_started
        # The customer may have torn the connection down (or a failure
        # may have taken it, or another bridge-and-roll already moved
        # the connection off the old path) while the bridge was being
        # built; in that case the roll is pointless — release the
        # bridge and stop.
        if (
            connection.state is not ConnectionState.UP
            or old.lightpath_id not in self.inventory.lightpaths
            or old.lightpath_id not in connection.lightpath_ids
            or bridge.state is not LightpathState.UP
        ):
            if bridge.state is LightpathState.UP:
                yield from self.provisioner.teardown_workflow(
                    bridge, include_fxc=False, parent_span=span
                )
            elif bridge.lightpath_id in self.inventory.lightpaths:
                self.provisioner.release(bridge)
            span.set_tag("outcome", "aborted").finish()
            self.metrics.inc("bridge_and_roll.aborted")
            self._notify(
                "bridge-and-roll-aborted",
                {"connection_id": connection.connection_id},
            )
            settle("aborted")
            return
        # Roll: steer the FXCs to the new transponders.  Traffic takes a
        # brief hit while the client signal moves.
        with span.child("roll.hit"):
            connection.begin_outage(self.sim.now)
            yield ROLL_HIT_S
            connection.end_outage(self.sim.now)
        if (
            connection.state is not ConnectionState.UP
            or old.lightpath_id not in connection.lightpath_ids
        ):
            # A teardown (or failure, or a competing roll) landed
            # during the roll hit.  The old path now belongs to
            # whoever settled it — only the bridge is left to release.
            if bridge.state is LightpathState.UP:
                yield from self.provisioner.teardown_workflow(
                    bridge, include_fxc=False, parent_span=span
                )
            elif bridge.lightpath_id in self.inventory.lightpaths:
                self.provisioner.release(bridge)
            span.set_tag("outcome", "aborted").finish()
            self.metrics.inc("bridge_and_roll.aborted")
            self._notify(
                "bridge-and-roll-aborted",
                {"connection_id": connection.connection_id},
            )
            settle("aborted")
            return
        connection.lightpath_ids = [bridge.lightpath_id]
        self._lightpath_conn.pop(old.lightpath_id, None)
        self._lightpath_conn[bridge.lightpath_id] = connection.connection_id
        self._relabel_steering(old, bridge)
        # Release the old path in the background.
        yield from self.provisioner.teardown_workflow(
            old, include_fxc=False, parent_span=span
        )
        span.set_tag("outcome", "completed").finish()
        self.metrics.inc("bridge_and_roll.completed")
        self.metrics.observe("bridge_and_roll.bridge_s", bridge_s)
        summary = {
            "connection_id": connection.connection_id,
            "bridge_s": bridge_s,
            "hit_s": ROLL_HIT_S,
            "new_path": list(bridge.path),
        }
        self._notify("bridge-and-roll", summary)
        if on_done is not None:
            on_done(summary)
        settle("completed", summary)

    # -- order decomposition --------------------------------------------------------

    def decompose_order(
        self, connection, kind: Optional[ConnectionKind]
    ) -> Optional[Tuple[List[float], int]]:
        """Resolve an order into ``(wavelength rates, 1G circuit count)``.

        Returns ``None`` when the order rides the IP layer as an EVC
        (sub-1G guaranteed bandwidth, Fig. 2, or a forced PACKET kind).
        Pure: nothing is claimed, so the pipeline calls this ahead of a
        round's batched planning to learn which wavelengths each order
        will ask for — the claim path then recomputes it identically.

        Raises:
            ResourceError: when no installed layer can realize the rate.
        """
        rates = self.wavelength_rates()
        # Fig. 2: guaranteed bandwidth below 1 Gbps rides the IP layer
        # as an EVC (when an IP layer exists and no layer was forced).
        if (
            kind is None
            and connection.rate_bps < SUBWAVELENGTH_CLIENT_BPS
            and self.ip_layer is not None
        ):
            return None
        if kind is ConnectionKind.PACKET:
            if self.ip_layer is None:
                raise ResourceError(
                    "packet service requested but no IP layer exists"
                )
            return None
        if kind is ConnectionKind.WAVELENGTH:
            fitting = [r for r in rates if r >= connection.rate_bps]
            if not fitting:
                raise ResourceError(
                    "no installed transponder rate can carry "
                    f"{connection.rate_bps / GBPS:g}G as a single wavelength"
                )
            waves, circuits_needed = [min(fitting)], 0
        elif kind is ConnectionKind.SUBWAVELENGTH:
            waves, circuits_needed = [], int(
                math.ceil(connection.rate_bps / SUBWAVELENGTH_CLIENT_BPS - 1e-9)
            )
        else:
            waves, circuits_needed = decompose_rate(connection.rate_bps, rates)
        if circuits_needed and not self.inventory.otn_switches:
            if waves and kind is None:
                # No OTN layer: round the remainder up to one more wavelength.
                waves.append(min(rates))
                circuits_needed = 0
            else:
                raise ResourceError(
                    "sub-wavelength service requested but no OTN layer exists"
                )
        return waves, circuits_needed

    def _claim_components(
        self,
        connection,
        kind,
        parent_span: Optional[Span] = None,
        planner: Optional[Callable] = None,
    ):
        """Claim all resources for an order; returns its components.

        ``planner`` (same call shape as :meth:`RwaEngine.plan`) replaces
        the live per-wave planning when the pipeline already planned the
        round as a batch.
        """
        pop_a = self.inventory.pop_of(connection.premises_a)
        pop_b = self.inventory.pop_of(connection.premises_b)
        decomposition = self.decompose_order(connection, kind)
        if decomposition is None:
            return self._claim_evc(connection, pop_a, pop_b)
        waves, circuits_needed = decomposition
        connection.kind = self._classify(waves, circuits_needed)
        plan_wave = self.rwa.plan if planner is None else planner
        owner = connection.connection_id
        lightpaths: List[Lightpath] = []
        circuits = []
        self._new_line_lightpaths = []
        claimed_nte: List[Tuple[str, int]] = []
        try:
            for rate in waves:
                plan = plan_wave(pop_a, pop_b, rate, parent_span=parent_span)
                lightpath = self.provisioner.claim(plan)
                lightpaths.append(lightpath)
                self._lightpath_conn[lightpath.lightpath_id] = owner
            for _ in range(circuits_needed):
                circuit = self.grooming.claim_circuit(
                    pop_a, pop_b, ODU_LEVELS["ODU0"], protect=True
                )
                circuits.append(circuit)
            for premises in (connection.premises_a, connection.premises_b):
                nte = self.inventory.ntes[premises]
                # Each wavelength component terminates on its own
                # un-channelized interface; each 1G circuit takes one
                # sub-channel of a shared channelized interface (the
                # 1/10G multiplexer of the testbed).
                for _ in lightpaths:
                    index = nte.claim_interface(owner, channelized=False)
                    claimed_nte.append(("wave", premises, index))
                for circuit in circuits:
                    index, sub = nte.claim_subchannel(owner)
                    claimed_nte.append(("sub", premises, index, sub))
            self._claim_steering(connection, lightpaths, circuits)
        except GriphonError:
            for lightpath in lightpaths:
                self._lightpath_conn.pop(lightpath.lightpath_id, None)
                self.provisioner.release(lightpath)
            for circuit in circuits:
                self.grooming.release_circuit(circuit)
            self._release_nte_claims(claimed_nte, owner)
            self._release_steering(connection)
            # OTN lines created while claiming stay in the inventory:
            # they are carrier infrastructure, immediately reusable by
            # future grooming (and reclaimable if they stay idle).
            raise
        connection.lightpath_ids = [lp.lightpath_id for lp in lightpaths]
        connection.circuit_ids = [ckt.circuit_id for ckt in circuits]
        connection.nte_interfaces = claimed_nte
        line_lightpaths = self._new_line_lightpaths
        self._new_line_lightpaths = []
        return lightpaths, circuits, line_lightpaths

    def _claim_evc(self, connection, pop_a: str, pop_b: str):
        """Claim an IP-layer EVC (plus NTE sub-channels) for an order."""
        owner = connection.connection_id
        evc = self.ip_layer.provision_evc(pop_a, pop_b, connection.rate_bps)
        self._evc_conn[evc.evc_id] = owner
        claimed_nte = []
        try:
            for premises in (connection.premises_a, connection.premises_b):
                index, sub = self.inventory.ntes[premises].claim_subchannel(
                    owner
                )
                claimed_nte.append(("sub", premises, index, sub))
        except GriphonError:
            self.ip_layer.release_evc(evc.evc_id)
            self._evc_conn.pop(evc.evc_id, None)
            self._release_nte_claims(claimed_nte, owner)
            raise
        connection.kind = ConnectionKind.PACKET
        connection.evc_ids = [evc.evc_id]
        connection.nte_interfaces = claimed_nte
        return [], [], []

    def _claim_steering(self, connection, lightpaths, circuits) -> None:
        """Program the FXC steering of Fig. 3 (state, not time).

        At each end PoP the customer signal is cross-connected either to
        the lightpath's transponder (wavelength service) or into an OTN
        switch client port (sub-wavelength service).  The time cost of
        these operations is already part of the setup workflows; this
        records the *state* so ports are genuinely consumed and audited.
        """
        owner = connection.connection_id
        pops = (
            self.inventory.pop_of(connection.premises_a),
            self.inventory.pop_of(connection.premises_b),
        )
        for lightpath in lightpaths:
            for pop, ot_id in zip(pops, lightpath.ot_ids):
                self._steer(pop, owner, f"access:{owner}", ot_id, connection)
        for circuit in circuits:
            for pop in pops:
                switch = self.inventory.otn_switches[pop]
                port = switch.claim_client_port(owner)
                connection.otn_client_ports.append((pop, port))
                self._steer(
                    pop,
                    owner,
                    f"access:{owner}",
                    f"OTN:{pop}:client{port}",
                    connection,
                )

    def _steer(self, pop, owner, label_a, label_b, connection) -> None:
        fxc = self.inventory.fxcs.get(pop)
        if fxc is None:
            return  # a PoP without an FXC is hard-wired
        free = fxc.free_ports()
        if len(free) < 2:
            raise ResourceError(f"FXC at {pop} has no free port pair")
        a, b = free[0], free[1]
        fxc.connect(a, b, owner)
        fxc.label_port(a, label_a)
        fxc.label_port(b, label_b)
        connection.fxc_ports.append((pop, a))

    def _relabel_steering(self, old_lightpath, new_lightpath) -> None:
        """After a roll or restoration, point the FXC labels at the new
        transponders so the steering record matches reality."""
        for old_ot, new_ot in zip(old_lightpath.ot_ids, new_lightpath.ot_ids):
            if old_ot == new_ot:
                continue
            node = old_ot.split(":")[1]
            fxc = self.inventory.fxcs.get(node)
            if fxc is None:
                continue
            try:
                port = fxc.find_port(old_ot)
            except GriphonError:
                continue
            fxc.label_port(port, new_ot)

    def _release_steering(self, connection) -> None:
        """Undo FXC cross-connects and OTN client ports (bookkeeping)."""
        owner = connection.connection_id
        for site, port in connection.fxc_ports:
            fxc = self.inventory.fxcs.get(site)
            if fxc is not None and fxc.peer_of(port) is not None:
                peer = fxc.peer_of(port)
                fxc.disconnect(port, owner)
                fxc.label_port(port, "")
                fxc.label_port(peer, "")
        connection.fxc_ports = []
        for node, port in connection.otn_client_ports:
            switch = self.inventory.otn_switches.get(node)
            if switch is not None:
                try:
                    switch.release_client_port(port, owner)
                except GriphonError:
                    pass  # already released
        connection.otn_client_ports = []

    def _release_nte_claims(self, claims, owner: str) -> None:
        """Release tagged NTE claims (bookkeeping only)."""
        for claim in claims:
            premises = claim[1]
            nte = self.inventory.ntes[premises]
            if claim[0] == "wave":
                nte.release_interface(claim[2], owner)
            else:
                nte.release_subchannel(claim[2], claim[3], owner)

    @staticmethod
    def _classify(waves: List[float], circuits: int) -> ConnectionKind:
        if waves and circuits:
            return ConnectionKind.COMPOSITE
        if waves:
            return ConnectionKind.WAVELENGTH
        return ConnectionKind.SUBWAVELENGTH

    # -- OTN line factory --------------------------------------------------------

    def _create_otn_line(self, a: str, b: str):
        """Stand up a new OTN line a-b by claiming a fresh wavelength."""
        rates = self.wavelength_rates()
        if not rates:
            raise ResourceError("no transponders installed anywhere")
        line_rate = min(r for r in rates if r >= 10 * GBPS) if any(
            r >= 10 * GBPS for r in rates
        ) else max(rates)
        plan = self.rwa.plan(a, b, line_rate)
        lightpath = self.provisioner.claim(plan)
        level = "ODU2" if line_rate <= 10 * GBPS else "ODU3"
        line = self.inventory.create_otn_line(a, b, level=ODU_LEVELS[level])
        self.protection.add_line(line)
        self._line_lightpath[line.line_id] = lightpath.lightpath_id
        self._new_line_lightpaths.append(lightpath)
        return line

    # -- failure handling ------------------------------------------------------------

    def _handle_link_failure(self, link_key, affected_owners):
        """Fiber-cut handler: localize, fail, and (optionally) restore."""
        self.tracer.event("failure.fiber_cut", link=f"{link_key[0]}={link_key[1]}")
        self.metrics.inc("failure.fiber_cut")
        self._notify("fiber-cut", {"link": link_key, "owners": set(affected_owners)})
        # IP layer: the adjacency riding this span fails; the IGP
        # reconverges and EVCs reroute in a couple hundred milliseconds.
        if self.ip_layer is not None:
            self._handle_ip_adjacency_failure(link_key)
        # Wavelength layer: fail lightpaths riding the link.
        for lightpath in self.inventory.lightpaths_using_link(*link_key):
            if lightpath.state is not LightpathState.UP:
                continue
            lightpath.transition(LightpathState.FAILED)
            conn_id = self._lightpath_conn.get(lightpath.lightpath_id)
            if conn_id is not None:
                self._fail_connection_component(self.connection(conn_id))
            # OTN lines riding this lightpath fail too.
            for line_id, lp_id in list(self._line_lightpath.items()):
                if lp_id == lightpath.lightpath_id:
                    self._fail_otn_line(line_id)
        # OTN circuits restore via shared mesh (sub-second), wavelength
        # connections via re-provisioning (about a minute).
        if self.auto_restore:
            for connection in list(self.connections.values()):
                if connection.state is ConnectionState.FAILED:
                    self._attempt_restoration(connection)

    def _retry_down_evcs(self) -> None:
        """After a repair, bring DOWN EVCs back up."""
        from repro.iplayer.evc import EvcState

        for evc in self.ip_layer.evcs:
            if evc.state is not EvcState.DOWN:
                continue
            conn_id = self._evc_conn.get(evc.evc_id)
            connection = (
                self.connections.get(conn_id) if conn_id is not None else None
            )
            try:
                outage = self.ip_layer.reroute_evc(evc.evc_id)
            except GriphonError:
                continue
            if connection is not None:
                if connection.state is ConnectionState.FAILED:
                    connection.transition(ConnectionState.UP)
                self.sim.schedule(
                    outage,
                    connection.end_outage,
                    self.sim.now + outage,
                    label=f"evc-retry:{evc.evc_id}",
                )

    def _handle_ip_adjacency_failure(self, link_key) -> None:
        a, b = link_key
        try:
            affected = self.ip_layer.fail_adjacency(a, b)
        except GriphonError:
            return  # no adjacency rides this span
        for evc in affected:
            conn_id = self._evc_conn.get(evc.evc_id)
            connection = (
                self.connections.get(conn_id) if conn_id is not None else None
            )
            if connection is not None:
                connection.begin_outage(self.sim.now)
            try:
                outage = self.ip_layer.reroute_evc(evc.evc_id)
            except GriphonError:
                # No surviving capacity: stays down until repair.
                if connection is not None and connection.state in (
                    ConnectionState.UP,
                    ConnectionState.DEGRADED,
                ):
                    connection.transition(ConnectionState.FAILED)
                continue
            if connection is not None:
                self.sim.schedule(
                    outage,
                    connection.end_outage,
                    self.sim.now + outage,
                    label=f"evc-reroute:{evc.evc_id}",
                )

    def _fail_connection_component(self, connection):
        if connection.state in (ConnectionState.UP, ConnectionState.DEGRADED):
            connection.begin_outage(self.sim.now)
            connection.transition(ConnectionState.FAILED)
            self._notify("connection-failed", {"connection": connection})

    def _fail_otn_line(self, line_id: str) -> None:
        line = self.inventory.otn_lines.get(line_id)
        if line is None or line.failed:
            return
        affected = line.fail()
        for circuit_id in affected:
            circuit = self.inventory.circuits.get(circuit_id)
            if circuit is None or circuit.state is not OduCircuitState.UP:
                continue
            circuit.transition(OduCircuitState.FAILED)
            try:
                switch_time = self.protection.restore(circuit_id)
            except GriphonError:
                continue  # no shared capacity left; stays failed
            circuit.restored_at = self.sim.now + switch_time
            conn_id = self._circuit_connection(circuit_id)
            trace_id = (
                self.connections[conn_id].trace_id if conn_id is not None else None
            )
            self.tracer.record(
                "otn.mesh_restore",
                start=self.sim.now,
                end=self.sim.now + switch_time,
                trace_id=trace_id,
                circuit=circuit_id,
            )
            if conn_id is not None:
                connection = self.connection(conn_id)
                connection.begin_outage(self.sim.now)
                self.sim.schedule(
                    switch_time,
                    connection.end_outage,
                    self.sim.now + switch_time,
                    label=f"mesh-restore:{circuit_id}",
                )

    def _circuit_connection(self, circuit_id: str) -> Optional[str]:
        for connection in self.connections.values():
            if circuit_id in connection.circuit_ids:
                return connection.connection_id
        return None

    def _attempt_restoration(self, connection):
        """Re-provision a failed wavelength connection on a new route."""
        if not connection.lightpath_ids:
            return
        old_id = connection.lightpath_ids[0]
        old = self.inventory.lightpaths.get(old_id)
        if old is None or old.state is not LightpathState.FAILED:
            return
        span = self.tracer.span(
            "restoration",
            trace_id=connection.trace_id,
            connection=connection.connection_id,
        )
        with span.child("restoration.localize"):
            failed_links = set(self.inventory.plant.failed_links())
        try:
            with span.child("restoration.plan") as plan_span:
                plan = self.rwa.plan(
                    old.source,
                    old.destination,
                    old.rate_bps,
                    excluded_links=failed_links,
                    parent_span=plan_span,
                )
        except GriphonError as exc:
            span.set_tag("outcome", "blocked").finish()
            self.metrics.inc("restoration.blocked")
            self._notify(
                "restoration-blocked",
                {"connection": connection, "reason": str(exc)},
            )
            return
        # Release the dead path, then claim and set up the new one.
        self.provisioner.release(old)
        self._lightpath_conn.pop(old_id, None)
        try:
            with span.child("restoration.claim"):
                replacement = self.provisioner.claim(plan)
        except GriphonError as exc:
            span.set_tag("outcome", "blocked").finish()
            self.metrics.inc("restoration.blocked")
            self._notify(
                "restoration-blocked",
                {"connection": connection, "reason": str(exc)},
            )
            return
        connection.transition(ConnectionState.RESTORING)
        connection.lightpath_ids = [replacement.lightpath_id]
        self._lightpath_conn[replacement.lightpath_id] = connection.connection_id
        self._relabel_steering(old, replacement)
        Process(
            self.sim,
            self._restoration_workflow(connection, replacement, span),
            label=f"restore:{connection.connection_id}",
        )

    def _restoration_workflow(self, connection, replacement, span=None):
        if span is None:
            span = self.tracer.span(
                "restoration", connection=connection.connection_id
            )
        started = self.sim.now
        yield from self.provisioner.setup_workflow(
            replacement, include_fxc=False, parent_span=span
        )
        if replacement.state is LightpathState.RELEASED:
            # The resilient layer gave up mid-restore and the saga
            # rolled the replacement back; the connection stays FAILED
            # (no auto-retry — the same faults would hit again) until a
            # repair event or teardown.
            connection.setup_error = replacement.setup_error
            connection.lightpath_ids = []
            self._lightpath_conn.pop(replacement.lightpath_id, None)
            connection.transition(ConnectionState.FAILED)
            span.set_tag("outcome", "aborted").finish()
            self.metrics.inc("restoration.aborted")
            self._notify("restoration-aborted", {"connection": connection})
            return
        if replacement.state is LightpathState.FAILED:
            # Another cut landed while we were restoring; try again.
            span.set_tag("outcome", "re-failed").finish()
            connection.transition(ConnectionState.FAILED)
            self._attempt_restoration(connection)
            return
        connection.transition(ConnectionState.UP)
        connection.end_outage(self.sim.now)
        span.set_tag("outcome", "restored").finish()
        self.metrics.inc("restoration.success")
        self.metrics.observe("restoration.reprovision_s", self.sim.now - started)
        self._notify("restored", {"connection": connection})

    # -- misc -----------------------------------------------------------------------

    def _notify(self, event: str, payload: dict) -> None:
        self.metrics.inc(f"events.{event}")
        for observer in self.observers:
            observer(event, payload)
