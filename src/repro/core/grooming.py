"""OTN grooming: routing sub-wavelength circuits into packed wavelengths.

"Compared to using muxponders in the DWDM layer to provide
sub-wavelength connections, the OTN layer with its switching capability
can achieve more efficient packing of wavelengths in the transport
network." (paper §2.1)

The engine routes ODU circuits hop by hop through the OTN switch mesh.
At each hop it prefers the **fullest existing line that still fits**
(best-fit packing); only when no line fits does it ask its line factory
to stand up a new OTN line — which costs a fresh wavelength.  The
number of lines created under a demand mix, versus the muxponder
baseline, is exactly experiment X3.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.inventory import InventoryDatabase
from repro.errors import CapacityExceededError, NoPathError, ResourceError
from repro.otn.circuit import OduCircuit
from repro.otn.line import OtnLine
from repro.otn.mesh_restoration import SharedMeshProtection
from repro.units import OduLevel

#: Creates a new OTN line between two adjacent switch nodes, or raises
#: ResourceError when no wavelength is available.  Wired by the
#: controller to wavelength provisioning; tests can use a stub.
LineFactory = Callable[[str, str], OtnLine]


class GroomingEngine:
    """Routes and packs ODU circuits over the OTN line mesh."""

    def __init__(
        self,
        inventory: InventoryDatabase,
        protection: Optional[SharedMeshProtection] = None,
        line_factory: Optional[LineFactory] = None,
    ) -> None:
        self._inventory = inventory
        self._protection = protection
        self._line_factory = line_factory

    # -- routing -----------------------------------------------------------------

    def switch_path(
        self,
        source: str,
        destination: str,
        excluded_links: Tuple = (),
        excluded_nodes: Tuple = (),
    ) -> List[str]:
        """Shortest path that stays on nodes hosting OTN switches.

        Raises:
            NoPathError: if the switch mesh does not connect the endpoints.
        """
        switchless = [
            node.name
            for node in self._inventory.graph.nodes
            if node.name not in self._inventory.otn_switches
            and node.name not in (source, destination)
        ]
        return self._inventory.graph.shortest_path(
            source,
            destination,
            excluded_links=excluded_links,
            excluded_nodes=tuple(switchless) + tuple(excluded_nodes),
        )

    def ensure_line(self, a: str, b: str, slots_needed: int) -> OtnLine:
        """A working line a->b with room, creating one if needed and possible.

        Raises:
            CapacityExceededError: if no line fits and none can be created.
        """
        switch = self._inventory.otn_switches[a]
        line = switch.best_line_toward(b, slots_needed)
        if line is not None:
            return line
        if self._line_factory is None:
            raise CapacityExceededError(
                f"no OTN line {a}->{b} with {slots_needed} free slots and "
                f"no line factory configured"
            )
        try:
            return self._line_factory(a, b)
        except ResourceError as exc:
            raise CapacityExceededError(
                f"cannot create OTN line {a}->{b}: {exc}"
            ) from exc

    # -- circuits ----------------------------------------------------------------

    def claim_circuit(
        self,
        source: str,
        destination: str,
        level: OduLevel,
        protect: bool = False,
    ) -> OduCircuit:
        """Route, pack, and allocate an ODU circuit (bookkeeping only).

        Args:
            protect: Also plan a link-disjoint backup path and register
                it with shared-mesh protection.

        Raises:
            NoPathError / CapacityExceededError: when routing or packing
                fails; partial slot allocations are rolled back.
        """
        path = self.switch_path(source, destination)
        circuit = OduCircuit(
            self._inventory.next_circuit_id(), level, path
        )
        allocated: List[OtnLine] = []
        try:
            for u, v in zip(path, path[1:]):
                line = self.ensure_line(u, v, circuit.slots_needed)
                line.allocate(circuit.slots_needed, circuit.circuit_id)
                allocated.append(line)
                circuit.line_ids.append(line.line_id)
            if protect:
                self._plan_protection(circuit)
        except (CapacityExceededError, NoPathError):
            for line in allocated:
                line.release_owner(circuit.circuit_id)
            raise
        self._inventory.register_circuit(circuit)
        return circuit

    def release_circuit(self, circuit: OduCircuit) -> None:
        """Free a circuit's working (and any active backup) slots."""
        for line_id in circuit.line_ids:
            line = self._inventory.otn_lines.get(line_id)
            if line is not None and circuit.circuit_id in line.owners():
                line.release_owner(circuit.circuit_id)
        for line_id in circuit.backup_line_ids:
            line = self._inventory.otn_lines.get(line_id)
            if line is not None and circuit.circuit_id in line.owners():
                line.release_owner(circuit.circuit_id)
        if self._protection is not None and circuit.backup_path is not None:
            try:
                self._protection.unregister(circuit.circuit_id)
            except ResourceError:
                pass  # was never registered (unprotected circuit)
        self._inventory.forget_circuit(circuit.circuit_id)

    def wavelengths_consumed(self) -> int:
        """Total OTN lines (each costs one wavelength) currently standing."""
        return len(self._inventory.otn_lines)

    def mean_line_fill(self) -> float:
        """Average slot utilization across standing lines (0 if none)."""
        lines = list(self._inventory.otn_lines.values())
        if not lines:
            return 0.0
        return sum(line.utilization() for line in lines) / len(lines)

    # -- internals ------------------------------------------------------------

    def _plan_protection(self, circuit: OduCircuit) -> None:
        if self._protection is None:
            raise CapacityExceededError(
                "protection requested but no shared-mesh manager configured"
            )
        working_links = [
            ((u, v) if u <= v else (v, u))
            for u, v in zip(circuit.path, circuit.path[1:])
        ]
        backup = self.switch_path(
            circuit.source,
            circuit.destination,
            excluded_links=tuple(working_links),
            excluded_nodes=tuple(circuit.path[1:-1]),
        )
        backup_line_ids = []
        for u, v in zip(backup, backup[1:]):
            line = self.ensure_line(u, v, circuit.slots_needed)
            backup_line_ids.append(line.line_id)
        circuit.backup_path = backup
        self._protection.register(circuit, backup_line_ids)
