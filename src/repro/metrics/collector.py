"""Counters and sample series for experiment measurement."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class Summary:
    """Summary statistics of a sample series.

    ``p99`` defaults to 0.0 for compatibility with callers constructing
    summaries positionally; :func:`summarize` always fills it.
    """

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float = 0.0

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} min={self.minimum:.4g} "
            f"p50={self.p50:.4g} p95={self.p95:.4g} p99={self.p99:.4g} "
            f"max={self.maximum:.4g}"
        )


def _percentile(ordered: List[float], fraction: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not ordered:
        raise ValueError("cannot take a percentile of no samples")
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    weight = position - low
    value = ordered[low] * (1 - weight) + ordered[high] * weight
    # Clamp: float rounding in the interpolation must never push the
    # result past the neighboring order statistics.
    return min(max(value, ordered[low]), ordered[high])


def summarize(samples: List[float]) -> Summary:
    """Summary statistics of ``samples``.

    Raises:
        ValueError: for an empty list.
    """
    if not samples:
        raise ValueError("cannot summarize zero samples")
    ordered = sorted(samples)
    return Summary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        minimum=ordered[0],
        maximum=ordered[-1],
        p50=_percentile(ordered, 0.50),
        p95=_percentile(ordered, 0.95),
        p99=_percentile(ordered, 0.99),
    )


class MetricsCollector:
    """Named counters and sample series for one experiment run."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._series: Dict[str, List[float]] = {}

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def record(self, name: str, value: float) -> None:
        """Append ``value`` to sample series ``name``."""
        self._series.setdefault(name, []).append(value)

    def samples(self, name: str) -> List[float]:
        """A copy of the sample series (empty if none)."""
        return list(self._series.get(name, []))

    def summary(self, name: str) -> Summary:
        """Summary statistics of series ``name``.

        Raises:
            ValueError: if the series is empty or unknown.
        """
        return summarize(self._series.get(name, []))

    def names(self) -> Dict[str, str]:
        """All metric names, tagged 'counter' or 'series'."""
        result = {name: "counter" for name in self._counters}
        result.update({name: "series" for name in self._series})
        return result
