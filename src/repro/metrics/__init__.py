"""Measurement utilities for experiments.

* :class:`~repro.metrics.collector.MetricsCollector` — counters, gauges,
  and sample series with summary statistics;
* :func:`~repro.metrics.collector.summarize` — mean / percentiles of a
  sample list, used by the benchmark harnesses to print table rows.
"""

from repro.metrics.availability import (
    availability_from_mtbf_mttr,
    downtime_minutes_per_year,
    fleet_availability,
    measured_availability,
    nines,
)
from repro.metrics.collector import MetricsCollector, Summary, summarize
from repro.metrics.textchart import bar_chart, histogram, sparkline

__all__ = [
    "availability_from_mtbf_mttr",
    "downtime_minutes_per_year",
    "fleet_availability",
    "measured_availability",
    "nines",
    "MetricsCollector",
    "Summary",
    "summarize",
    "bar_chart",
    "histogram",
    "sparkline",
]
