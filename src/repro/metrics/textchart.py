"""Tiny text charts for experiment reports.

The benchmarks and examples print their regenerated tables; for series
with a visual trend (the Table 2 growth, the speedup frontier, blocking
curves) a horizontal bar chart reads better than numbers alone.  Pure
ASCII, no dependencies.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple, Union

from repro.errors import ConfigurationError

Number = Union[int, float]


def bar_chart(
    series: Sequence[Tuple[str, Number]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Render labeled values as horizontal bars.

    Args:
        series: ``(label, value)`` pairs, drawn in order.
        width: Character width of the longest bar.
        unit: Suffix appended to each printed value.

    Raises:
        ConfigurationError: for an empty series, negative values, or a
            non-positive width.
    """
    if not series:
        raise ConfigurationError("need at least one data point")
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    values = [float(value) for _, value in series]
    if any(value < 0 for value in values):
        raise ConfigurationError("bar charts need non-negative values")
    peak = max(values) or 1.0
    label_width = max(len(label) for label, _ in series)
    lines = []
    for (label, _), value in zip(series, values):
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(
            f"{label.ljust(label_width)}  {bar.ljust(width)}  "
            f"{value:g}{unit}"
        )
    return "\n".join(lines)


def histogram(
    samples: Sequence[Number],
    bins: int = 10,
    width: int = 40,
) -> str:
    """Render a sample distribution as an ASCII histogram.

    Raises:
        ConfigurationError: for no samples or a non-positive bin count.
    """
    if not samples:
        raise ConfigurationError("need at least one sample")
    if bins < 1:
        raise ConfigurationError(f"bins must be >= 1, got {bins}")
    values = sorted(float(s) for s in samples)
    low, high = values[0], values[-1]
    if high == low:
        return bar_chart([(f"{low:g}", len(values))], width=width)
    span = (high - low) / bins
    counts: Dict[int, int] = {}
    for value in values:
        index = min(bins - 1, int((value - low) / span))
        counts[index] = counts.get(index, 0) + 1
    series = []
    for index in range(bins):
        left = low + index * span
        right = left + span
        series.append((f"[{left:.3g}, {right:.3g})", counts.get(index, 0)))
    return bar_chart(series, width=width)


def sparkline(samples: Sequence[Number]) -> str:
    """A one-line trend rendering using block characters.

    Raises:
        ConfigurationError: for an empty series.
    """
    if not samples:
        raise ConfigurationError("need at least one sample")
    blocks = " .:-=+*#%@"
    values = [float(s) for s in samples]
    low, high = min(values), max(values)
    if high == low:
        return blocks[len(blocks) // 2] * len(values)
    scale = (len(blocks) - 1) / (high - low)
    return "".join(blocks[int((v - low) * scale)] for v in values)
