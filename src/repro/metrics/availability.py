"""Connection availability: the reliability arithmetic behind Table 1.

Availability of a repairable system is ``MTBF / (MTBF + MTTR)``.  For an
inter-DC connection the failure rate is set by fiber cuts (physics), but
the MTTR is set by the *restoration mechanism* — 50 ms for 1+1, about a
minute for GRIPhoN re-provisioning, 4–12 hours for manual repair.  These
helpers compute both the analytic figure and the empirically measured
availability of simulated connections.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.connection import Connection
from repro.errors import ConfigurationError


def availability_from_mtbf_mttr(mtbf_s: float, mttr_s: float) -> float:
    """Steady-state availability of a repairable system.

    Raises:
        ConfigurationError: for non-positive MTBF or negative MTTR.
    """
    if mtbf_s <= 0:
        raise ConfigurationError(f"MTBF must be positive, got {mtbf_s}")
    if mttr_s < 0:
        raise ConfigurationError(f"MTTR must be >= 0, got {mttr_s}")
    return mtbf_s / (mtbf_s + mttr_s)


def downtime_minutes_per_year(availability: float) -> float:
    """The ops-friendly rendering of an availability figure.

    Raises:
        ConfigurationError: for availability outside [0, 1].
    """
    if not 0 <= availability <= 1:
        raise ConfigurationError(
            f"availability must be in [0, 1], got {availability}"
        )
    return (1.0 - availability) * 365.25 * 24 * 60


def nines(availability: float) -> float:
    """How many nines an availability figure has (e.g. 0.999 -> 3.0).

    Raises:
        ConfigurationError: for availability outside [0, 1).
    """
    import math

    if not 0 <= availability < 1:
        raise ConfigurationError(
            f"availability must be in [0, 1), got {availability}"
        )
    if availability == 0:
        return 0.0
    return -math.log10(1.0 - availability)


def measured_availability(
    connection: Connection, observed_from: float, observed_until: float
) -> float:
    """A connection's empirical availability over an observation window.

    Uses the connection's accumulated outage seconds (closing any open
    outage at the window end).

    Raises:
        ConfigurationError: for an empty window.
    """
    duration = observed_until - observed_from
    if duration <= 0:
        raise ConfigurationError(
            f"window must be non-empty, got [{observed_from}, {observed_until}]"
        )
    outage = connection.total_outage_s
    if connection.outage_started_at is not None:
        outage += observed_until - connection.outage_started_at
    outage = min(outage, duration)
    return 1.0 - outage / duration


def fleet_availability(
    connections: Iterable[Connection],
    observed_from: float,
    observed_until: float,
) -> float:
    """Mean availability across a set of connections.

    Raises:
        ConfigurationError: for an empty set.
    """
    values = [
        measured_availability(conn, observed_from, observed_until)
        for conn in connections
    ]
    if not values:
        raise ConfigurationError("need at least one connection")
    return sum(values) / len(values)
