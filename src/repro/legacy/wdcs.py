"""The Wideband Digital Cross-connect System (W-DCS) layer.

The W-DCS layer sits above SONET and "cross-connects at greater than DS0
but below DS3 rates", providing n x DS1 (1.5 Mbps) TDM connections
(paper §2.1).  It only matters to this reproduction as the lowest rung
of the Fig. 1 service ladder, so the model is a straightforward
capacity-tracked cross-connect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import CapacityExceededError, ConfigurationError, ResourceError
from repro.units import DS1_RATE


@dataclass(frozen=True)
class Ds1Connection:
    """An n x DS1 connection through a W-DCS."""

    connection_id: str
    a: str
    b: str
    ds1_count: int

    @property
    def rate_bps(self) -> float:
        """Aggregate rate of the bundled DS1s."""
        return self.ds1_count * DS1_RATE


class WidebandDcs:
    """A W-DCS node cross-connecting DS1s between attached facilities.

    Capacity is expressed in DS1 terminations; each connection consumes
    one termination per endpoint facility.
    """

    def __init__(self, dcs_id: str, ds1_capacity: int = 672) -> None:
        if ds1_capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1 DS1, got {ds1_capacity}"
            )
        self.dcs_id = dcs_id
        self.ds1_capacity = ds1_capacity
        self._used = 0
        self._connections: Dict[str, Ds1Connection] = {}
        self._counter = 0

    @property
    def ds1_free(self) -> int:
        """Free DS1 terminations."""
        return self.ds1_capacity - self._used

    def connect(self, a: str, b: str, ds1_count: int = 1) -> Ds1Connection:
        """Cross-connect ``ds1_count`` DS1s between facilities ``a`` and ``b``.

        Raises:
            ConfigurationError: for a == b or a non-positive count.
            CapacityExceededError: if terminations are exhausted.
        """
        if a == b:
            raise ConfigurationError("facilities must differ")
        if ds1_count < 1:
            raise ConfigurationError(f"ds1_count must be >= 1, got {ds1_count}")
        needed = 2 * ds1_count
        if needed > self.ds1_free:
            raise CapacityExceededError(
                f"{self.dcs_id}: need {needed} DS1 terminations, "
                f"have {self.ds1_free}"
            )
        connection_id = f"DS1:{self.dcs_id}:{self._counter}"
        self._counter += 1
        connection = Ds1Connection(connection_id, a, b, ds1_count)
        self._connections[connection_id] = connection
        self._used += needed
        return connection

    def disconnect(self, connection_id: str) -> None:
        """Release a connection's terminations.

        Raises:
            ResourceError: for an unknown connection.
        """
        connection = self._connections.pop(connection_id, None)
        if connection is None:
            raise ResourceError(f"unknown connection {connection_id!r}")
        self._used -= 2 * connection.ds1_count

    def connections(self) -> List[Ds1Connection]:
        """All live connections."""
        return list(self._connections.values())
