"""SONET rings with sub-second automatic protection switching.

The SONET layer "provides an automatic protection/restoration mechanism
to switch traffic from working circuits to backup circuits in less than
a second" (paper §2.1).  We model a bidirectional line-switched ring
(BLSR-style): half of each span's STS-1 timeslots carry working traffic,
the other half are reserved for protection.  A span failure loops
affected circuits the long way around the ring within tens of
milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.errors import (
    CapacityExceededError,
    ConfigurationError,
    ResourceError,
)

#: SONET APS completes within 50 ms (plus detection); we use 60 ms total.
PROTECTION_SWITCH_TIME_S = 0.060


@dataclass
class SonetCircuit:
    """One STS-n circuit on a ring.

    Attributes:
        circuit_id: Unique id.
        a: Source node.
        b: Destination node.
        sts: STS level (number of STS-1 timeslots consumed per span).
        spans: Indices of ring spans the working path crosses.
        on_protection: True while looped onto protection capacity.
    """

    circuit_id: str
    a: str
    b: str
    sts: int
    spans: List[int] = field(default_factory=list)
    on_protection: bool = False


class SonetRing:
    """A BLSR-style SONET ring.

    Args:
        ring_id: Name of the ring.
        nodes: ADM nodes in ring order; span ``i`` joins ``nodes[i]`` and
            ``nodes[(i+1) % len(nodes)]``.
        line_sts: Total STS-1 capacity of each span (e.g. 192 for OC-192).
            Half is working capacity, half protection.
    """

    def __init__(self, ring_id: str, nodes: List[str], line_sts: int = 192) -> None:
        if len(nodes) < 2:
            raise ConfigurationError(f"a ring needs >= 2 nodes, got {len(nodes)}")
        if len(set(nodes)) != len(nodes):
            raise ConfigurationError("ring nodes must be unique")
        if line_sts < 2 or line_sts % 2:
            raise ConfigurationError(
                f"line capacity must be a positive even STS count, got {line_sts}"
            )
        self.ring_id = ring_id
        self.nodes = list(nodes)
        self.line_sts = line_sts
        self._working_used: List[int] = [0] * len(nodes)
        self._protection_used: List[int] = [0] * len(nodes)
        self._circuits: Dict[str, SonetCircuit] = {}
        self._failed_spans: Set[int] = set()
        self._counter = 0

    @property
    def span_count(self) -> int:
        """Number of spans (equals the node count)."""
        return len(self.nodes)

    @property
    def working_capacity(self) -> int:
        """Working STS-1 timeslots per span (half the line rate)."""
        return self.line_sts // 2

    def working_free(self, span: int) -> int:
        """Free working timeslots on ``span``."""
        self._validate_span(span)
        return self.working_capacity - self._working_used[span]

    def circuits(self) -> List[SonetCircuit]:
        """All provisioned circuits."""
        return list(self._circuits.values())

    # -- provisioning -----------------------------------------------------------

    def provision(self, a: str, b: str, sts: int = 1) -> SonetCircuit:
        """Provision an STS-``sts`` circuit between two ring nodes.

        The circuit takes the ring direction with more free capacity on
        its bottleneck span (ties broken toward the shorter arc).

        Raises:
            ConfigurationError: for unknown nodes, a == b, or sts < 1.
            CapacityExceededError: if neither direction has room.
        """
        if sts < 1:
            raise ConfigurationError(f"sts must be >= 1, got {sts}")
        if a == b:
            raise ConfigurationError("endpoints must differ")
        for name in (a, b):
            if name not in self.nodes:
                raise ConfigurationError(
                    f"{name!r} is not on ring {self.ring_id}"
                )
        clockwise = self._arc_spans(a, b)
        counter = self._arc_spans(b, a)
        options = []
        for spans in (clockwise, counter):
            if any(s in self._failed_spans for s in spans):
                continue
            free = min(self.working_free(s) for s in spans)
            if free >= sts:
                options.append((free, -len(spans), spans))
        if not options:
            raise CapacityExceededError(
                f"ring {self.ring_id}: no direction has {sts} free STS-1 "
                f"between {a} and {b}"
            )
        options.sort(reverse=True)
        spans = options[0][2]
        circuit_id = f"STS:{self.ring_id}:{self._counter}"
        self._counter += 1
        circuit = SonetCircuit(circuit_id, a, b, sts, spans=list(spans))
        for span in spans:
            self._working_used[span] += sts
        self._circuits[circuit_id] = circuit
        return circuit

    def release(self, circuit_id: str) -> None:
        """Tear down a circuit and free its timeslots.

        Raises:
            ResourceError: for an unknown circuit.
        """
        circuit = self._circuits.pop(circuit_id, None)
        if circuit is None:
            raise ResourceError(f"unknown circuit {circuit_id!r}")
        used = self._protection_used if circuit.on_protection else self._working_used
        spans = (
            self._complement_spans(circuit.spans)
            if circuit.on_protection
            else circuit.spans
        )
        for span in spans:
            used[span] -= circuit.sts

    # -- protection ----------------------------------------------------------------

    def fail_span(self, span: int) -> List[SonetCircuit]:
        """Cut a span; loop affected circuits onto protection capacity.

        Returns the circuits that were protection-switched.  Circuits
        that cannot fit on protection capacity (e.g. double failure)
        stay failed — callers can detect them via ``on_protection``.
        """
        self._validate_span(span)
        if span in self._failed_spans:
            return []
        self._failed_spans.add(span)
        switched = []
        for circuit in self._circuits.values():
            if span not in circuit.spans or circuit.on_protection:
                continue
            other_way = self._complement_spans(circuit.spans)
            if any(s in self._failed_spans for s in other_way):
                continue
            if any(
                self.line_sts // 2 - self._protection_used[s] < circuit.sts
                for s in other_way
            ):
                continue
            for s in circuit.spans:
                self._working_used[s] -= circuit.sts
            for s in other_way:
                self._protection_used[s] += circuit.sts
            circuit.on_protection = True
            switched.append(circuit)
        return switched

    def repair_span(self, span: int) -> List[SonetCircuit]:
        """Repair a span; revert its protection-switched circuits.

        Returns the circuits that reverted to their working path.
        """
        self._validate_span(span)
        self._failed_spans.discard(span)
        reverted = []
        for circuit in self._circuits.values():
            if not circuit.on_protection or span not in circuit.spans:
                continue
            if any(s in self._failed_spans for s in circuit.spans):
                continue
            other_way = self._complement_spans(circuit.spans)
            for s in other_way:
                self._protection_used[s] -= circuit.sts
            for s in circuit.spans:
                self._working_used[s] += circuit.sts
            circuit.on_protection = False
            reverted.append(circuit)
        return reverted

    @property
    def failed_spans(self) -> Set[int]:
        """Currently failed span indices."""
        return set(self._failed_spans)

    # -- internals ------------------------------------------------------------

    def _arc_spans(self, a: str, b: str) -> List[int]:
        """Span indices walking from ``a`` forward (in node order) to ``b``."""
        start = self.nodes.index(a)
        end = self.nodes.index(b)
        spans = []
        i = start
        while i != end:
            spans.append(i)
            i = (i + 1) % len(self.nodes)
        return spans

    def _complement_spans(self, spans: List[int]) -> List[int]:
        """The spans of the opposite ring direction."""
        return [s for s in range(self.span_count) if s not in spans]

    def _validate_span(self, span: int) -> None:
        if not 0 <= span < self.span_count:
            raise ConfigurationError(
                f"ring {self.ring_id} has no span {span} "
                f"(spans: 0..{self.span_count - 1})"
            )

    def __repr__(self) -> str:
        return (
            f"SonetRing({self.ring_id}, nodes={len(self.nodes)}, "
            f"OC-{self.line_sts}, circuits={len(self._circuits)})"
        )
