"""Ethernet private lines over virtually concatenated SONET channels.

"Ethernet private lines are links between customer routers or Ethernet
switches, usually consisting of Gigabit Ethernet interfaces at customer
ends and then encapsulated and rate-limited into pipes consisting of
virtually concatenated SONET STS-1s" (paper §2.1).  Circuit-based BoD
services today use virtual concatenation (VCAT) of channels from a
dedicated access pipe — this module provides that model, including the
classic result that a 1 GbE needs an STS-1-21v (21 timeslots).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.legacy.sonet import SonetCircuit, SonetRing
from repro.units import MBPS

#: Usable payload of one STS-1 after SONET overhead, in bps.
STS1_PAYLOAD_BPS = 49.536 * MBPS


def sts1_count_for_rate(rate_bps: float) -> int:
    """STS-1 members a VCAT group needs to carry ``rate_bps``.

    A Gigabit Ethernet client (1 Gbps) yields the textbook STS-1-21v.

    Raises:
        ConfigurationError: for a non-positive rate.
    """
    if rate_bps <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate_bps}")
    return math.ceil(rate_bps / STS1_PAYLOAD_BPS)


@dataclass
class EthernetPrivateLine:
    """A rate-limited Ethernet service over a VCAT group.

    Attributes:
        epl_id: Unique id.
        rate_bps: The committed Ethernet rate.
        vcat_members: Number of STS-1 members in the VCAT group.
        circuit: The underlying SONET circuit, once provisioned.
    """

    epl_id: str
    rate_bps: float
    vcat_members: int
    circuit: Optional[SonetCircuit] = None

    @property
    def provisioned(self) -> bool:
        """True once the underlying SONET circuit exists."""
        return self.circuit is not None

    @property
    def transport_overhead(self) -> float:
        """Fraction of transport capacity spent beyond the service rate.

        E.g. a 1 Gbps EPL on 21 STS-1s consumes ~1.088 Gbps of SONET
        line, an overhead of ~4 percent (plus SONET's own framing).
        """
        transport = self.vcat_members * STS1_PAYLOAD_BPS
        return (transport - self.rate_bps) / self.rate_bps


def provision_epl(
    ring: SonetRing, epl_id: str, a: str, b: str, rate_bps: float
) -> EthernetPrivateLine:
    """Provision an Ethernet private line between two ring nodes.

    Computes the VCAT group size for the requested rate and takes that
    many STS-1 timeslots on the ring.

    Raises:
        ConfigurationError / CapacityExceededError: from the ring, e.g.
            when the requested rate does not fit.
    """
    members = sts1_count_for_rate(rate_bps)
    circuit = ring.provision(a, b, sts=members)
    return EthernetPrivateLine(epl_id, rate_bps, members, circuit)
