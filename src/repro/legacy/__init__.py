"""Today's transport layers: SONET rings, W-DCS, and Ethernet-over-VCAT.

These are the Fig. 1 "current services & network layers": the layers the
carrier offers BoD on *today* (SONET only, at rates well below a full
wavelength).  They serve two purposes in the reproduction: they make the
Fig. 1 stack executable, and they provide the "today's reality" column
of Table 1 — sub-second SONET protection versus the 4–12 hour manual
restoration of unprotected wavelengths.
"""

from repro.legacy.evc import EthernetPrivateLine, provision_epl, sts1_count_for_rate
from repro.legacy.sonet import SonetCircuit, SonetRing
from repro.legacy.wdcs import WidebandDcs

__all__ = [
    "EthernetPrivateLine",
    "provision_epl",
    "sts1_count_for_rate",
    "SonetCircuit",
    "SonetRing",
    "WidebandDcs",
]
