"""Exception hierarchy for the GRIPhoN reproduction.

Every error raised by the library derives from :class:`GriphonError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing resource exhaustion from programming mistakes.
"""

from __future__ import annotations


class GriphonError(Exception):
    """Base class for all errors raised by this library."""


class TopologyError(GriphonError):
    """The network graph is malformed or a referenced node/link is unknown."""


class ResourceError(GriphonError):
    """A required network resource could not be allocated."""


class NoPathError(ResourceError):
    """No route satisfying the request's constraints exists."""


class WavelengthBlockedError(ResourceError):
    """A route exists but no common wavelength is free along it."""


class TransponderUnavailableError(ResourceError):
    """No free optical transponder (or regenerator) at a required node."""


class MigrationLockedError(ResourceError):
    """The connection is already mid-migration under another holder.

    Raised by :meth:`GriphonController.bridge_and_roll` when a caller
    that identifies itself with ``lock_holder`` (the re-grooming engine,
    the global re-optimization executor) finds the per-connection
    migration lock held by someone else.  Lock-oblivious callers are
    unaffected — the roll-time abort guards still arbitrate races for
    them.
    """


class CapacityExceededError(ResourceError):
    """A link, port, or multiplexing structure has no remaining capacity."""


class AdmissionError(GriphonError):
    """The request violates an admission-control or isolation policy."""


class ConnectionStateError(GriphonError):
    """An operation is invalid for the connection's current state."""


class EquipmentError(GriphonError):
    """A network element rejected a configuration command.

    Carries optional structured fields identifying the failing element so
    fault localization and :class:`~repro.core.service.FaultReport` can
    render it without string parsing.  ``str()`` is unchanged: only the
    message appears.

    Attributes:
        site: The node/premises hosting the element ('' if unknown).
        element: The specific element addressed ('' if unknown).
        command: The EMS command that failed ('' if unknown).
    """

    def __init__(
        self,
        message: str = "",
        *,
        site: str = "",
        element: str = "",
        command: str = "",
    ) -> None:
        super().__init__(message)
        self.site = site
        self.element = element
        self.command = command


class CommandTimeoutError(EquipmentError):
    """An EMS command did not complete within its sim-time timeout."""


class CommandFailedError(EquipmentError):
    """An EMS command failed permanently (retries exhausted or hard fault).

    Attributes:
        attempts: Command attempts made before giving up.
        retryable: False for hard element failures where retrying is
            pointless (the resilient executor fails fast on these).
    """

    def __init__(
        self,
        message: str = "",
        *,
        site: str = "",
        element: str = "",
        command: str = "",
        attempts: int = 0,
        retryable: bool = True,
    ) -> None:
        super().__init__(message, site=site, element=element, command=command)
        self.attempts = attempts
        self.retryable = retryable


class CircuitBreakerOpenError(EquipmentError):
    """A command was rejected fast because the EMS circuit breaker is open."""


class SignalError(GriphonError):
    """An optical signal violates reach, tuning, or framing constraints."""


class SimulationError(GriphonError):
    """The discrete-event simulation kernel was misused."""


class ConfigurationError(GriphonError):
    """Invalid user-supplied configuration values."""


class SweepTimeoutError(GriphonError):
    """A parallel sweep did not finish within its deadline.

    Raised by the sweep engine's watchdog so a deadlocked worker pool
    fails the run (e.g. a CI job) instead of hanging it forever.
    """


class WorkerCrashed(GriphonError):
    """A shard worker process died mid-RPC (or never came up).

    Raised by :class:`repro.shard.workers.ShardWorkerPool` when a
    worker's pipe breaks or a reply never arrives.  Distinct from the
    planning errors a *healthy* worker reports back — those are rebuilt
    as their original types — so callers can treat a crash as an
    infrastructure event (respawn and replay) rather than a plan
    outcome.
    """
