"""Random element-failure injection: the network's weather.

Long-haul fiber gets cut — backhoes, squirrels, ship anchors — at a
roughly Poisson rate per route-kilometer, and physical repair takes
hours.  Transponder cards die, amplifiers fail, OTN switch fabrics
brick.  The injectors drive those processes against a controller so
availability studies can measure how much each restoration mechanism
buys over a long horizon.

All injectors share the :class:`FailureInjector` engine (Poisson
inter-failure gaps, exponential repairs with a floor, per-kind metrics
counters); each subclass supplies the target discovery and the
fail/repair controller calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.controller import GriphonController
from repro.errors import ConfigurationError
from repro.sim.randomness import RandomStreams
from repro.units import HOUR


@dataclass
class CutRecord:
    """One injected fiber cut."""

    link: Tuple[str, str]
    cut_at: float
    repaired_at: Optional[float] = None

    @property
    def repair_duration(self) -> Optional[float]:
        """Hours on the ground fixing fiber, or None while open."""
        if self.repaired_at is None:
            return None
        return self.repaired_at - self.cut_at


@dataclass
class FailureRecord:
    """One injected element failure (non-fiber kinds)."""

    target: object
    failed_at: float
    repaired_at: Optional[float] = None

    @property
    def repair_duration(self) -> Optional[float]:
        """Seconds until the element was repaired, or None while open."""
        if self.repaired_at is None:
            return None
        return self.repaired_at - self.failed_at


def _core_link_keys(controller: GriphonController) -> List[Tuple[str, str]]:
    """Core (ROADM-to-ROADM) link keys — access tails don't get cut."""
    return [
        link.key
        for link in controller.inventory.graph.links
        if not (
            link.a.startswith("PREMISES")
            or link.b.startswith("PREMISES")
            or link.a.startswith("DC-")
            or link.b.startswith("DC-")
        )
    ]


class FailureInjector:
    """Shared Poisson failure/repair engine.

    Args:
        controller: The controller whose network degrades (its failure
            handling runs automatically).
        streams: Random substreams.
        mean_time_between_failures_s: Network-wide MTBF of this kind.
        mean_repair_s: Mean repair time (exponential, floored at
            ``min_repair_s`` — crews and spares need travel time).
        stop_at: No failures injected after this simulation time.
        stream_name: Base name of the random substreams drawn from.
    """

    #: Metric suffix: ``failure.injected.<kind>`` / ``failure.repaired.<kind>``.
    kind = "generic"

    def __init__(
        self,
        controller: GriphonController,
        streams: RandomStreams,
        mean_time_between_failures_s: float,
        mean_repair_s: float,
        stop_at: Optional[float] = None,
        stream_name: str = "failures",
        min_repair_s: float = 1 * HOUR,
    ) -> None:
        if mean_time_between_failures_s <= 0 or mean_repair_s <= 0:
            raise ConfigurationError("MTBF and repair time must be positive")
        self._controller = controller
        self._streams = streams
        self._mtbf = mean_time_between_failures_s
        self._mean_repair = mean_repair_s
        self._stop_at = stop_at
        self._stream_name = stream_name
        self._min_repair = min_repair_s
        self.records: List = []
        targets = self._discover_targets()
        if not targets:
            raise ConfigurationError(self._no_targets_message())
        self._targets = targets
        self._schedule_next()

    # -- engine ---------------------------------------------------------------

    def _schedule_next(self) -> None:
        gap = self._streams.exponential(self._stream_name, self._mtbf)
        when = self._controller.sim.now + gap
        if self._stop_at is not None and when > self._stop_at:
            return
        self._controller.sim.schedule(gap, self._fire, label=self._fire_label())

    def _fire(self) -> None:
        sim = self._controller.sim
        healthy = self._healthy_targets()
        if healthy:
            target = self._streams.choice(self._choice_stream(), healthy)
            record = self._make_record(target, sim.now)
            self.records.append(record)
            self._fail_target(target)
            self._controller.metrics.inc(f"failure.injected.{self.kind}")
            repair_in = max(
                self._min_repair,
                self._streams.exponential(
                    f"{self._stream_name}:repair", self._mean_repair
                ),
            )
            sim.schedule(
                repair_in, self._repair, record, label=self._repair_label(record)
            )
        self._schedule_next()

    def _repair(self, record) -> None:
        record.repaired_at = self._controller.sim.now
        self._repair_target(record)
        self._controller.metrics.inc(f"failure.repaired.{self.kind}")

    @property
    def open_failures(self) -> List:
        """Failures not yet repaired."""
        return [r for r in self.records if r.repaired_at is None]

    # -- subclass hooks -------------------------------------------------------

    def _discover_targets(self) -> List:
        raise NotImplementedError

    def _no_targets_message(self) -> str:
        return f"topology has no targets for {self.kind} failures"

    def _healthy_targets(self) -> List:
        raise NotImplementedError

    def _choice_stream(self) -> str:
        return f"{self._stream_name}:target"

    def _fire_label(self) -> str:
        return f"{self.kind}-failure"

    def _repair_label(self, record) -> str:
        return f"{self.kind}-repair"

    def _make_record(self, target, now: float):
        return FailureRecord(target, failed_at=now)

    def _fail_target(self, target) -> None:
        raise NotImplementedError

    def _repair_target(self, record) -> None:
        raise NotImplementedError


class FiberCutInjector(FailureInjector):
    """Injects Poisson fiber cuts with hours-long physical repairs.

    Args:
        controller: The controller whose plant gets cut (its failure
            handling runs automatically).
        streams: Random substreams.
        mean_time_between_cuts_s: Network-wide MTBF of cuts.
        mean_repair_s: Mean physical repair time (exponential, floored
            at one hour — crews need travel time).
        stop_at: No cuts injected after this simulation time.
    """

    kind = "fiber_cut"

    def __init__(
        self,
        controller: GriphonController,
        streams: RandomStreams,
        mean_time_between_cuts_s: float,
        mean_repair_s: float = 6 * HOUR,
        stop_at: Optional[float] = None,
        stream_name: str = "fiber-cuts",
    ) -> None:
        super().__init__(
            controller,
            streams,
            mean_time_between_cuts_s,
            mean_repair_s,
            stop_at=stop_at,
            stream_name=stream_name,
        )

    def _discover_targets(self) -> List[Tuple[str, str]]:
        return _core_link_keys(self._controller)

    def _no_targets_message(self) -> str:
        return "topology has no core links to cut"

    def _healthy_targets(self) -> List[Tuple[str, str]]:
        failed = self._controller.inventory.plant.failed_links()
        return [key for key in self._targets if key not in failed]

    def _choice_stream(self) -> str:
        return f"{self._stream_name}:link"

    def _fire_label(self) -> str:
        return "fiber-cut"

    def _repair_label(self, record) -> str:
        return f"fiber-repair:{record.link[0]}={record.link[1]}"

    def _make_record(self, target, now: float) -> CutRecord:
        return CutRecord(target, cut_at=now)

    def _fail_target(self, target) -> None:
        self._controller.cut_link(*target)

    def _repair_target(self, record) -> None:
        self._controller.repair_link(*record.link)

    @property
    def open_cuts(self) -> List[CutRecord]:
        """Cuts not yet repaired."""
        return [r for r in self.records if r.repaired_at is None]


class TransponderFailureInjector(FailureInjector):
    """Random transponder-card deaths with card-replacement repairs."""

    kind = "transponder"

    def __init__(
        self,
        controller: GriphonController,
        streams: RandomStreams,
        mean_time_between_failures_s: float,
        mean_repair_s: float = 4 * HOUR,
        stop_at: Optional[float] = None,
        stream_name: str = "ot-failures",
    ) -> None:
        super().__init__(
            controller,
            streams,
            mean_time_between_failures_s,
            mean_repair_s,
            stop_at=stop_at,
            stream_name=stream_name,
        )

    def _discover_targets(self) -> List[str]:
        return sorted(
            ot.ot_id
            for pool in self._controller.inventory.transponders.values()
            for ot in pool.transponders
        )

    def _no_targets_message(self) -> str:
        return "no transponders installed to fail"

    def _healthy_targets(self) -> List[str]:
        inv = self._controller.inventory
        healthy = []
        for ot_id in self._targets:
            node = ot_id.split(":")[1]
            if not inv.transponders[node].get(ot_id).failed:
                healthy.append(ot_id)
        return healthy

    def _fire_label(self) -> str:
        return "ot-failure"

    def _repair_label(self, record) -> str:
        return f"ot-repair:{record.target}"

    def _fail_target(self, target) -> None:
        self._controller.fail_transponder(target)

    def _repair_target(self, record) -> None:
        self._controller.repair_transponder(record.target)


class AmplifierFailureInjector(FailureInjector):
    """Random amplifier deaths; a dead amplifier darkens its span."""

    kind = "amplifier"

    def __init__(
        self,
        controller: GriphonController,
        streams: RandomStreams,
        mean_time_between_failures_s: float,
        mean_repair_s: float = 3 * HOUR,
        stop_at: Optional[float] = None,
        stream_name: str = "amp-failures",
    ) -> None:
        super().__init__(
            controller,
            streams,
            mean_time_between_failures_s,
            mean_repair_s,
            stop_at=stop_at,
            stream_name=stream_name,
        )

    def _discover_targets(self) -> List[Tuple[str, str]]:
        return _core_link_keys(self._controller)

    def _no_targets_message(self) -> str:
        return "topology has no amplified spans to fail"

    def _healthy_targets(self) -> List[Tuple[str, str]]:
        failed = self._controller.inventory.plant.failed_links()
        return [key for key in self._targets if key not in failed]

    def _fire_label(self) -> str:
        return "amp-failure"

    def _repair_label(self, record) -> str:
        return f"amp-repair:{record.target[0]}={record.target[1]}"

    def _fail_target(self, target) -> None:
        self._controller.fail_amplifier(*target)

    def _repair_target(self, record) -> None:
        self._controller.repair_amplifier(*record.target)


class OtnSwitchFailureInjector(FailureInjector):
    """Random OTN switch-fabric failures; mesh restoration earns its keep."""

    kind = "otn_switch"

    def __init__(
        self,
        controller: GriphonController,
        streams: RandomStreams,
        mean_time_between_failures_s: float,
        mean_repair_s: float = 2 * HOUR,
        stop_at: Optional[float] = None,
        stream_name: str = "otn-failures",
    ) -> None:
        super().__init__(
            controller,
            streams,
            mean_time_between_failures_s,
            mean_repair_s,
            stop_at=stop_at,
            stream_name=stream_name,
        )

    def _discover_targets(self) -> List[str]:
        return sorted(self._controller.inventory.otn_switches)

    def _no_targets_message(self) -> str:
        return "no OTN switches installed to fail"

    def _healthy_targets(self) -> List[str]:
        down = {r.target for r in self.open_failures}
        return [node for node in self._targets if node not in down]

    def _fire_label(self) -> str:
        return "otn-failure"

    def _repair_label(self, record) -> str:
        return f"otn-repair:{record.target}"

    def _fail_target(self, target) -> None:
        self._controller.fail_otn_switch(target)

    def _repair_target(self, record) -> None:
        self._controller.repair_otn_switch(record.target)
