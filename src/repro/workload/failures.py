"""Random fiber-cut injection: the network's weather.

Long-haul fiber gets cut — backhoes, squirrels, ship anchors — at a
roughly Poisson rate per route-kilometer, and physical repair takes
hours.  The injector drives that process against a controller so
availability studies can measure how much each restoration mechanism
buys over a long horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.controller import GriphonController
from repro.errors import ConfigurationError
from repro.sim.randomness import RandomStreams
from repro.units import HOUR


@dataclass
class CutRecord:
    """One injected fiber cut."""

    link: Tuple[str, str]
    cut_at: float
    repaired_at: Optional[float] = None

    @property
    def repair_duration(self) -> Optional[float]:
        """Hours on the ground fixing fiber, or None while open."""
        if self.repaired_at is None:
            return None
        return self.repaired_at - self.cut_at


class FiberCutInjector:
    """Injects Poisson fiber cuts with hours-long physical repairs.

    Args:
        controller: The controller whose plant gets cut (its failure
            handling runs automatically).
        streams: Random substreams.
        mean_time_between_cuts_s: Network-wide MTBF of cuts.
        mean_repair_s: Mean physical repair time (exponential, floored
            at one hour — crews need travel time).
        stop_at: No cuts injected after this simulation time.
    """

    def __init__(
        self,
        controller: GriphonController,
        streams: RandomStreams,
        mean_time_between_cuts_s: float,
        mean_repair_s: float = 6 * HOUR,
        stop_at: Optional[float] = None,
        stream_name: str = "fiber-cuts",
    ) -> None:
        if mean_time_between_cuts_s <= 0 or mean_repair_s <= 0:
            raise ConfigurationError("MTBF and repair time must be positive")
        self._controller = controller
        self._streams = streams
        self._mtbf = mean_time_between_cuts_s
        self._mean_repair = mean_repair_s
        self._stop_at = stop_at
        self._stream_name = stream_name
        self.records: List[CutRecord] = []
        self._core_links = [
            link.key
            for link in controller.inventory.graph.links
            if not (
                link.a.startswith("PREMISES")
                or link.b.startswith("PREMISES")
                or link.a.startswith("DC-")
                or link.b.startswith("DC-")
            )
        ]
        if not self._core_links:
            raise ConfigurationError("topology has no core links to cut")
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self._streams.exponential(self._stream_name, self._mtbf)
        when = self._controller.sim.now + gap
        if self._stop_at is not None and when > self._stop_at:
            return
        self._controller.sim.schedule(gap, self._cut, label="fiber-cut")

    def _cut(self) -> None:
        sim = self._controller.sim
        healthy = [
            key
            for key in self._core_links
            if key not in self._controller.inventory.plant.failed_links()
        ]
        if healthy:
            link = self._streams.choice(f"{self._stream_name}:link", healthy)
            record = CutRecord(link, cut_at=sim.now)
            self.records.append(record)
            self._controller.cut_link(*link)
            repair_in = max(
                1 * HOUR,
                self._streams.exponential(
                    f"{self._stream_name}:repair", self._mean_repair
                ),
            )
            sim.schedule(
                repair_in,
                self._repair,
                record,
                label=f"fiber-repair:{link[0]}={link[1]}",
            )
        self._schedule_next()

    def _repair(self, record: CutRecord) -> None:
        record.repaired_at = self._controller.sim.now
        self._controller.repair_link(*record.link)

    @property
    def open_cuts(self) -> List[CutRecord]:
        """Cuts not yet repaired."""
        return [r for r in self.records if r.repaired_at is None]
