"""Interactive inter-DC traffic: diurnal bandwidth-demand curves.

Interactive traffic does not tear connections up and down per job; it is
a continuous bandwidth requirement that swings with the day.  For the
provisioning-economics experiment we only need the demand *curve* —
capacity planning compares a statically peak-provisioned pipe against a
BoD pipe resized to track the curve.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.units import GBPS, HOUR
from repro.workload.arrivals import DiurnalProfile


class InteractiveDemand:
    """A diurnal bandwidth demand between one premises pair.

    Args:
        pair: The (src, dst) premises names.
        base_gbps: Mean demand in Gbps.
        amplitude: Diurnal swing fraction (see :class:`DiurnalProfile`).
        peak_hour: Hour of peak demand.
    """

    def __init__(
        self,
        pair: Tuple[str, str],
        base_gbps: float = 4.0,
        amplitude: float = 0.6,
        peak_hour: float = 20.0,
    ) -> None:
        self.pair = pair
        self._profile = DiurnalProfile(
            base_gbps * GBPS, amplitude=amplitude, peak_hour=peak_hour
        )

    def demand_bps(self, t: float) -> float:
        """Instantaneous demand at simulation time ``t``."""
        return self._profile.rate(t)

    def peak_bps(self) -> float:
        """The daily peak demand."""
        return self._profile.peak()

    def hourly_series(self, hours: int = 24) -> List[float]:
        """Demand sampled at each hour boundary, for ``hours`` hours.

        Raises:
            ConfigurationError: for a non-positive horizon.
        """
        if hours < 1:
            raise ConfigurationError(f"hours must be >= 1, got {hours}")
        return [self.demand_bps(h * HOUR) for h in range(hours)]

    def capacity_hours_static(self, hours: int = 24) -> float:
        """Capacity-hours consumed by peak-provisioned static capacity."""
        return self.peak_bps() * hours

    def capacity_hours_tracking(
        self, hours: int = 24, granularity_bps: float = 1 * GBPS
    ) -> float:
        """Capacity-hours when BoD resizes hourly to the demand ceiling.

        Capacity is quantized upward to ``granularity_bps`` (you lease
        whole 1G circuits), sampled at hour start.
        """
        if granularity_bps <= 0:
            raise ConfigurationError("granularity must be positive")
        total = 0.0
        for demand in self.hourly_series(hours):
            steps = int(-(-demand // granularity_bps))  # ceil division
            total += steps * granularity_bps
        return total
