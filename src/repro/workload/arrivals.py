"""Arrival processes: Poisson streams and diurnal rate profiles."""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.randomness import RandomStreams
from repro.units import DAY, HOUR


class DiurnalProfile:
    """A 24-hour sinusoidal rate profile.

    ``rate(t)`` peaks at ``peak_hour`` and bottoms out half a day away.
    Used both for interactive-traffic demand and to modulate bulk-job
    arrival rates (operators schedule backups off-peak).

    Args:
        base: Mean level of the profile.
        amplitude: Fractional swing, in [0, 1]; 0.5 means the peak is
            1.5x the base and the trough 0.5x.
        peak_hour: Local hour (0-24) of the maximum.
    """

    def __init__(self, base: float, amplitude: float = 0.5, peak_hour: float = 14.0):
        if base <= 0:
            raise ConfigurationError(f"base must be positive, got {base}")
        if not 0 <= amplitude <= 1:
            raise ConfigurationError(
                f"amplitude must be within [0, 1], got {amplitude}"
            )
        self.base = base
        self.amplitude = amplitude
        self.peak_hour = peak_hour % 24.0

    def rate(self, t: float) -> float:
        """The profile value at simulation time ``t`` (seconds)."""
        hour = (t % DAY) / HOUR
        phase = 2 * math.pi * (hour - self.peak_hour) / 24.0
        return self.base * (1.0 + self.amplitude * math.cos(phase))

    def peak(self) -> float:
        """The maximum of the profile."""
        return self.base * (1.0 + self.amplitude)

    def trough(self) -> float:
        """The minimum of the profile."""
        return self.base * (1.0 - self.amplitude)


class PoissonArrivals:
    """A (possibly time-varying) Poisson arrival process on a simulator.

    Each arrival invokes ``on_arrival(sim.now)``.  A time-varying rate is
    supported by thinning against ``max_rate``.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        on_arrival: Callable[[float], None],
        rate_per_s: Optional[float] = None,
        rate_fn: Optional[Callable[[float], float]] = None,
        max_rate: Optional[float] = None,
        stream_name: str = "arrivals",
        stop_at: Optional[float] = None,
        pregenerate: bool = False,
    ) -> None:
        if (rate_per_s is None) == (rate_fn is None):
            raise ConfigurationError(
                "exactly one of rate_per_s or rate_fn must be given"
            )
        if rate_fn is not None and max_rate is None:
            raise ConfigurationError("rate_fn requires max_rate for thinning")
        if rate_per_s is not None and rate_per_s <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate_per_s}")
        if pregenerate and stop_at is None:
            raise ConfigurationError("pregenerate requires stop_at")
        self._sim = sim
        self._streams = streams
        self._on_arrival = on_arrival
        self._rate = rate_per_s
        self._rate_fn = rate_fn
        self._max_rate = max_rate if max_rate is not None else rate_per_s
        self._stream_name = stream_name
        self._stop_at = stop_at
        self.arrival_count = 0
        if pregenerate:
            self._pregenerate()
        else:
            self._schedule_next()

    def _pregenerate(self) -> None:
        """Draw the whole arrival timeline up front and batch-schedule it.

        Draws the identical inter-arrival sequence from the identical
        substream as the incremental mode, then loads all candidate
        fire times with one :meth:`~repro.sim.kernel.Simulator.schedule_many`
        call (a single O(n) heap merge) instead of a schedule per fire.
        Thinning draws still happen at fire time, from their own
        substream, so accept/reject decisions are unchanged too.
        """
        label = f"arrival:{self._stream_name}"
        mean_gap = 1.0 / self._max_rate
        entries = []
        when = self._sim.now
        while True:
            when += self._streams.exponential(self._stream_name, mean_gap)
            if when > self._stop_at:
                break
            entries.append((when, self._fire_at, (), label))
        self._sim.schedule_many(entries)

    def _fire_at(self) -> None:
        """A pregenerated firing: like :meth:`_fire`, minus rescheduling."""
        accept = True
        if self._rate_fn is not None:
            current = self._rate_fn(self._sim.now)
            accept = (
                self._streams.uniform(f"{self._stream_name}:thin", 0.0, 1.0)
                < current / self._max_rate
            )
        if accept:
            self.arrival_count += 1
            self._on_arrival(self._sim.now)

    def _schedule_next(self) -> None:
        gap = self._streams.exponential(self._stream_name, 1.0 / self._max_rate)
        when = self._sim.now + gap
        if self._stop_at is not None and when > self._stop_at:
            return
        self._sim.schedule(gap, self._fire, label=f"arrival:{self._stream_name}")

    def _fire(self) -> None:
        accept = True
        if self._rate_fn is not None:
            current = self._rate_fn(self._sim.now)
            accept = (
                self._streams.uniform(f"{self._stream_name}:thin", 0.0, 1.0)
                < current / self._max_rate
            )
        if accept:
            self.arrival_count += 1
            self._on_arrival(self._sim.now)
        self._schedule_next()
