"""Bulk replication jobs driven through a BoD service.

Each job replicates a heavy-tailed volume of data between two premises:
it requests a connection at a job-appropriate rate, waits for the setup
to complete, transfers, and tears the connection down — the paper's
intended usage pattern for the BoD service.  Completion records feed the
BoD-versus-static economics experiment (X4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.connection import Connection, ConnectionState
from repro.core.service import BodService
from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.randomness import RandomStreams
from repro.units import GBPS, TERABYTE, transfer_time


@dataclass
class TransferRecord:
    """Outcome of one bulk replication job.

    Attributes:
        job_id: Sequential job number.
        src / dst: Premises pair.
        volume_bits: Data volume replicated.
        rate_bps: The connection rate used.
        requested_at: When the job arrived.
        started_at: When the connection came up (None if blocked).
        completed_at: When the transfer finished (None if blocked).
        blocked: True if the BoD request was rejected.
    """

    job_id: int
    src: str
    dst: str
    volume_bits: float
    rate_bps: float
    requested_at: float
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    blocked: bool = False

    @property
    def completion_time(self) -> Optional[float]:
        """Request-to-finish latency, or None while running/blocked."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.requested_at


class BulkTransferWorkload:
    """Generates and runs bulk replication jobs on a BoD service.

    Args:
        sim: The shared simulator.
        streams: Random substreams (sizes, pair choice).
        service: The customer's BoD service handle.
        premises: Premises to replicate among (pairs chosen uniformly).
        mean_volume_bits: Mean transfer size; sizes are Pareto-distributed
            (shape 1.5) so most jobs are small and a few are huge.
        rate_policy: ``'wavelength'`` always asks for 10G; ``'adaptive'``
            asks 40G for jobs over 10 TB, 10G for over 1 TB, 1G below.
    """

    PARETO_SHAPE = 1.5

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        service: BodService,
        premises: List[str],
        mean_volume_bits: float = 5 * TERABYTE,
        rate_policy: str = "adaptive",
    ) -> None:
        if len(premises) < 2:
            raise ConfigurationError("need at least two premises")
        if rate_policy not in ("adaptive", "wavelength"):
            raise ConfigurationError(f"unknown rate policy {rate_policy!r}")
        if mean_volume_bits <= 0:
            raise ConfigurationError("mean volume must be positive")
        self._sim = sim
        self._streams = streams
        self._service = service
        self._premises = list(premises)
        self._mean_volume = mean_volume_bits
        self._rate_policy = rate_policy
        self.records: List[TransferRecord] = []
        self._job_seq = 0

    # -- job generation -------------------------------------------------------

    def submit_job(self, _now: Optional[float] = None) -> TransferRecord:
        """Create and start one replication job (arrival-process callback)."""
        src, dst = self._pick_pair()
        volume = self._pick_volume()
        rate = self._pick_rate(volume)
        record = TransferRecord(
            self._job_seq,
            src,
            dst,
            volume,
            rate,
            requested_at=self._sim.now,
        )
        self._job_seq += 1
        self.records.append(record)
        connection = self._service.request_connection(
            src, dst, rate_gbps=rate / GBPS
        )
        if connection.state is ConnectionState.BLOCKED:
            record.blocked = True
            return record
        self._watch(connection, record)
        return record

    # -- reporting --------------------------------------------------------------

    def completed(self) -> List[TransferRecord]:
        """Records of finished transfers."""
        return [r for r in self.records if r.completed_at is not None]

    def blocked(self) -> List[TransferRecord]:
        """Records of rejected transfers."""
        return [r for r in self.records if r.blocked]

    def blocking_ratio(self) -> float:
        """Fraction of jobs rejected (0 if none submitted)."""
        if not self.records:
            return 0.0
        return len(self.blocked()) / len(self.records)

    # -- internals ------------------------------------------------------------

    def _pick_pair(self) -> Tuple[str, str]:
        src = self._streams.choice("bulk:src", self._premises)
        others = [p for p in self._premises if p != src]
        return src, self._streams.choice("bulk:dst", others)

    def _pick_volume(self) -> float:
        # Pareto with mean = scale * shape / (shape - 1).
        scale = self._mean_volume * (self.PARETO_SHAPE - 1) / self.PARETO_SHAPE
        return self._streams.pareto("bulk:volume", self.PARETO_SHAPE, scale)

    def _pick_rate(self, volume_bits: float) -> float:
        if self._rate_policy == "wavelength":
            return 10 * GBPS
        if volume_bits >= 10 * TERABYTE:
            return 40 * GBPS
        if volume_bits >= 1 * TERABYTE:
            return 10 * GBPS
        return 1 * GBPS

    def _watch(self, connection: Connection, record: TransferRecord) -> None:
        """Poll for the connection to come up, then run the transfer."""
        if connection.state is ConnectionState.UP:
            record.started_at = self._sim.now
            duration = transfer_time(record.volume_bits, record.rate_bps)
            self._sim.schedule(
                duration,
                self._finish,
                connection,
                record,
                label=f"transfer-done:{record.job_id}",
            )
            return
        if connection.state is ConnectionState.BLOCKED:
            record.blocked = True
            return
        self._sim.schedule(
            1.0, self._watch, connection, record, label="transfer-wait"
        )

    def _finish(self, connection: Connection, record: TransferRecord) -> None:
        record.completed_at = self._sim.now
        if connection.state is ConnectionState.UP:
            self._service.teardown_connection(connection.connection_id)
