"""Inter-data-center workloads.

The paper motivates BoD with two traffic classes (§1): non-interactive
**bulk transfers** (backup/replication, terabytes to petabytes, run by
cloud operators, tolerant of scheduling) and **interactive** end-user
traffic (diurnal, latency-sensitive).  This package generates both:

* :mod:`repro.workload.arrivals` — Poisson and diurnal arrival processes;
* :mod:`repro.workload.bulk` — heavy-tailed bulk replication jobs driven
  through a BoD service;
* :mod:`repro.workload.interactive` — diurnal bandwidth-demand curves;
* :mod:`repro.workload.traces` — synthetic inter-DC traffic matrices
  (gravity-model, bulk-dominated as in Chen et al.'s Yahoo! study);
* :mod:`repro.workload.tenants` — heavy-tailed (Zipf) tenant
  populations with lazy profile registration, for the service-frontend
  load benchmarks.
"""

from repro.workload.arrivals import DiurnalProfile, PoissonArrivals
from repro.workload.failures import (
    AmplifierFailureInjector,
    CutRecord,
    FailureInjector,
    FailureRecord,
    FiberCutInjector,
    OtnSwitchFailureInjector,
    TransponderFailureInjector,
)
from repro.workload.bulk import BulkTransferWorkload, TransferRecord
from repro.workload.interactive import InteractiveDemand
from repro.workload.tenants import TenantPopulation, zipf_share
from repro.workload.traces import TrafficMatrix, synthesize_traffic_matrix

__all__ = [
    "DiurnalProfile",
    "PoissonArrivals",
    "AmplifierFailureInjector",
    "CutRecord",
    "FailureInjector",
    "FailureRecord",
    "FiberCutInjector",
    "OtnSwitchFailureInjector",
    "TransponderFailureInjector",
    "BulkTransferWorkload",
    "TransferRecord",
    "InteractiveDemand",
    "TenantPopulation",
    "zipf_share",
    "TrafficMatrix",
    "synthesize_traffic_matrix",
]
