"""Tenant populations with heavy-tailed demand for frontend load tests.

A BoD carrier's customer base is not uniform: a handful of hyperscale
CSPs generate most orders while a long tail of small tenants orders
rarely.  :class:`TenantPopulation` models that with Zipf-distributed
submission weight over ``size`` tenants — tenant ``i`` (0-based rank)
submits proportionally to ``1 / (i + 1) ** zipf_s``.

Everything is lazy: sampling uses a precomputed cumulative-weight array
and :func:`bisect.bisect`, and a tenant's :class:`~repro.core.admission.
CustomerProfile` is registered with the admission ledger only on first
touch — so a one-million-tenant population costs memory proportional to
the tenants that actually submitted, which is what makes the 1M-customer
benchmark tier feasible.
"""

from __future__ import annotations

import random
from bisect import bisect
from itertools import accumulate
from typing import List

from repro.core.admission import AdmissionControl, CustomerProfile
from repro.errors import ConfigurationError
from repro.units import GBPS


class TenantPopulation:
    """``size`` tenants with Zipf-ranked submission weight.

    Args:
        size: Number of tenants (>= 1).
        zipf_s: Zipf exponent (> 0); larger = heavier head.  1.1 gives
            the classic few-giants-long-tail shape.
        name_prefix: Tenant names are ``f"{name_prefix}{rank}"``.
        max_connections: Per-tenant simultaneous-connection quota.
        max_total_rate_gbps: Per-tenant committed-rate quota.
    """

    def __init__(
        self,
        size: int,
        zipf_s: float = 1.1,
        name_prefix: str = "tenant-",
        max_connections: int = 4,
        max_total_rate_gbps: float = 40.0,
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"population size must be >= 1, got {size}")
        if zipf_s <= 0:
            raise ConfigurationError(f"zipf_s must be > 0, got {zipf_s}")
        self.size = size
        self.zipf_s = zipf_s
        self.name_prefix = name_prefix
        self.max_connections = max_connections
        self.max_total_rate_gbps = max_total_rate_gbps
        # Cumulative Zipf weights for O(log n) rank sampling.  ~8 bytes
        # per tenant: 1M tenants cost one 8 MB array, built once.
        self._cumulative: List[float] = list(
            accumulate((index + 1) ** -zipf_s for index in range(size))
        )
        self._registered: set = set()

    @property
    def total_weight(self) -> float:
        """The Zipf normalization constant (sum of all weights)."""
        return self._cumulative[-1]

    def name_of(self, rank: int) -> str:
        """The tenant name at 0-based Zipf rank ``rank``."""
        if not 0 <= rank < self.size:
            raise ConfigurationError(
                f"rank {rank} outside population of {self.size}"
            )
        return f"{self.name_prefix}{rank}"

    def sample(self, rng: random.Random) -> str:
        """Draw one tenant name, Zipf-weighted, from ``rng``."""
        position = rng.random() * self._cumulative[-1]
        return self.name_of(
            min(bisect(self._cumulative, position), self.size - 1)
        )

    def profile(self, name: str) -> CustomerProfile:
        """The tenant's quota profile (uniform across the population)."""
        return CustomerProfile(
            name,
            max_connections=self.max_connections,
            max_total_rate_bps=self.max_total_rate_gbps * GBPS,
            premises=[],
        )

    def ensure_registered(
        self, admission: AdmissionControl, name: str
    ) -> None:
        """Register the tenant's profile on first touch (idempotent).

        Tracks registration locally, so a million-tenant population
        registers only the tenants that actually submit.
        """
        if name in self._registered:
            return
        admission.register_customer(self.profile(name))
        self._registered.add(name)

    @property
    def registered_count(self) -> int:
        """How many tenants have been lazily registered so far."""
        return len(self._registered)

    def __len__(self) -> int:
        return self.size


def zipf_share(size: int, zipf_s: float, top: int) -> float:
    """The submission share of the ``top`` heaviest tenants.

    A pure helper for sizing experiments: e.g. with ``zipf_s=1.1`` the
    top 100 of 1M tenants carry roughly a third of all submissions.
    """
    if top < 0 or size < 1:
        raise ConfigurationError(f"invalid zipf_share({size}, {top})")
    weights = [(index + 1) ** -zipf_s for index in range(size)]
    return sum(weights[: min(top, size)]) / sum(weights)


__all__ = ["TenantPopulation", "zipf_share"]
