"""Synthetic inter-data-center traffic matrices.

Chen et al. (IEEE INFOCOM 2011) characterized Yahoo!'s inter-DC traffic
as dominated by background, non-interactive bulk transfers, with volumes
strongly skewed toward a few heavy site pairs.  We synthesize matrices
with the same flavor: a gravity model over per-site weights plus an
80/20-style bulk/interactive split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.sim.randomness import RandomStreams
from repro.units import GBPS


@dataclass
class TrafficMatrix:
    """Per-pair mean demands in bps, split by traffic class.

    Attributes:
        bulk: (src, dst) -> mean bulk-transfer demand.
        interactive: (src, dst) -> mean interactive demand.
    """

    bulk: Dict[Tuple[str, str], float]
    interactive: Dict[Tuple[str, str], float]

    @property
    def pairs(self) -> List[Tuple[str, str]]:
        """All ordered site pairs in the matrix."""
        return sorted(self.bulk)

    def total_bulk_bps(self) -> float:
        """Aggregate mean bulk demand."""
        return sum(self.bulk.values())

    def total_interactive_bps(self) -> float:
        """Aggregate mean interactive demand."""
        return sum(self.interactive.values())

    def bulk_fraction(self) -> float:
        """Share of total demand that is bulk (the dominant class)."""
        total = self.total_bulk_bps() + self.total_interactive_bps()
        if total == 0:
            return 0.0
        return self.total_bulk_bps() / total


def synthesize_traffic_matrix(
    sites: List[str],
    streams: RandomStreams,
    total_gbps: float = 100.0,
    bulk_share: float = 0.8,
) -> TrafficMatrix:
    """Build a gravity-model traffic matrix over ``sites``.

    Each site gets a random weight (lognormal, so a few sites dominate);
    pair demand is proportional to the weight product.  ``bulk_share``
    of each pair's demand is bulk, the rest interactive.

    Raises:
        ConfigurationError: for fewer than two sites or bad shares.
    """
    if len(sites) < 2:
        raise ConfigurationError("need at least two sites")
    if not 0 <= bulk_share <= 1:
        raise ConfigurationError(f"bulk_share must be in [0, 1], got {bulk_share}")
    if total_gbps <= 0:
        raise ConfigurationError(f"total_gbps must be positive, got {total_gbps}")
    weights = {
        site: streams.lognormal("traffic:weight", mean=1.0, cv=1.0)
        for site in sites
    }
    gravity: Dict[Tuple[str, str], float] = {}
    for src in sites:
        for dst in sites:
            if src == dst:
                continue
            gravity[(src, dst)] = weights[src] * weights[dst]
    scale = total_gbps * GBPS / sum(gravity.values())
    bulk = {pair: value * scale * bulk_share for pair, value in gravity.items()}
    interactive = {
        pair: value * scale * (1 - bulk_share) for pair, value in gravity.items()
    }
    return TrafficMatrix(bulk, interactive)
