"""The unified typed order API: one closed set of order outcomes.

Until this module existed, a caller following an order end to end had
to import from three packages: :class:`~repro.core.connection.Connection`
records (blocked/active results) from ``repro.core.connection``, ticket
states from ``repro.pipeline``, and the typed refusals
(``QueueFull``/``Deferred``/``SetupFailed``/``ServiceDegraded``) from
``repro.core.service``.  ``repro.api`` consolidates the surface:

* the **terminal outcomes** — :data:`OrderOutcome` — are a closed union
  of eight types (:class:`Active`, :class:`Blocked`, :class:`QueueFull`,
  :class:`Deferred`, :class:`SetupFailed`, :class:`ServiceDegraded`,
  :class:`SlaBreached`, :class:`Rejected`); match on
  :data:`TERMINAL_OUTCOMES` and the set is complete;
* :class:`Accepted` is the one non-terminal status (resources claimed,
  setup in flight); :data:`OrderStatus` is ``Accepted | OrderOutcome``;
* :class:`OrderIntake` is the protocol every order backend implements
  (the monolithic :class:`~repro.pipeline.OrderPipeline` and the
  sharded :class:`~repro.shard.intake.ShardIntake`), so the async
  frontend — and any other caller — is backend-agnostic.

``BodService.order_outcome`` and the frontend's status stream both
return values from this union.  The historical import paths
(``repro.core.service.QueueFull`` and friends) keep working through
deprecation shims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.core.connection import ConnectionState

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.connection import Connection, ConnectionKind
    from repro.core.service import FaultReport
    from repro.pipeline.engine import OrderTicket


class _ConnectionOutcome:
    """Shared delegation for outcomes that wrap a connection record.

    The wrapped ``connection`` may be a monolithic
    :class:`~repro.core.connection.Connection` or a sharded
    :class:`~repro.shard.network.ShardOrder`; both expose the state and
    reason surface these properties forward to, so callers match on the
    outcome type without caring which backend produced it.
    """

    connection: Any

    @property
    def connection_id(self) -> str:
        """The underlying record's id (works for shard orders too)."""
        record = self.connection
        existing = getattr(record, "connection_id", None)
        return existing if existing is not None else record.order_id

    @property
    def customer(self) -> str:
        """The ordering customer."""
        return self.connection.customer

    @property
    def state(self) -> ConnectionState:
        """The record's live service state."""
        return self.connection.state

    @property
    def trace_id(self) -> Optional[str]:
        """The record's trace id, for span correlation (may be None)."""
        return getattr(self.connection, "trace_id", None)


@dataclass(frozen=True)
class Accepted(_ConnectionOutcome):
    """Non-terminal status: resources claimed, the order is in flight.

    Covers every post-claim, pre-settlement service state — SETTING_UP
    most importantly, but also the whole post-ACTIVE lifecycle
    (restoring, tearing down, released) when a caller polls an old
    ticket.  ``connection`` is the live record; read ``.state`` for the
    precise phase.
    """

    connection: Any

    def __str__(self) -> str:
        return f"{self.connection_id}: {self.state.value}"


@dataclass(frozen=True)
class Active(_ConnectionOutcome):
    """Terminal outcome: the order is carrying traffic (state UP)."""

    connection: Any

    @property
    def up_at(self) -> Optional[float]:
        """Sim time the connection entered service."""
        return getattr(self.connection, "up_at", None)

    def __str__(self) -> str:
        return f"{self.connection_id}: active"


@dataclass(frozen=True)
class Blocked(_ConnectionOutcome):
    """Terminal outcome: the order was refused (quota or capacity).

    The serial path, the pipeline, and the sharded network all settle
    refusals as BLOCKED records; this wrapper carries the record plus
    the one-line reason.
    """

    connection: Any

    @property
    def blocked_reason(self) -> str:
        """Why the order was refused."""
        return self.connection.blocked_reason

    #: Alias so ``Blocked`` and the other refusals read uniformly.
    @property
    def reason(self) -> str:
        """Alias for :attr:`blocked_reason`."""
        return self.connection.blocked_reason

    def __str__(self) -> str:
        return f"{self.connection_id}: blocked - {self.blocked_reason}"


@dataclass(frozen=True)
class QueueFull:
    """Typed outcome for an order refused by intake backpressure.

    The pipeline's bounded queue was full at submission: nothing was
    recorded against the customer's quota and no connection record
    exists.  Resubmit after the backlog drains.

    Attributes:
        order_id: The refused submission's ticket id.
        capacity: The queue bound that was hit.
        reason: The one-line refusal message.
    """

    order_id: str
    capacity: int
    reason: str

    def __str__(self) -> str:
        return f"{self.order_id}: queue full - {self.reason}"


@dataclass(frozen=True)
class Deferred:
    """Typed outcome for an order that kept losing wavelength contention.

    Every round the pipeline processed the order, earlier orders in the
    same round won the wavelengths it needed; after the retry budget the
    order was withdrawn.  Quota was returned and no connection record
    remains — the network may well have capacity for a resubmission
    once the contending orders are in service or torn down.

    Attributes:
        order_id: The withdrawn submission's ticket id.
        rounds_deferred: How many rounds the order was retried.
        reason: The last contention failure, one line.
    """

    order_id: str
    rounds_deferred: int
    reason: str

    def __str__(self) -> str:
        return (
            f"{self.order_id}: deferred after {self.rounds_deferred} "
            f"round(s) - {self.reason}"
        )


@dataclass(frozen=True)
class SetupFailed:
    """Typed outcome for an order that failed entirely during setup.

    Every claimed resource was released by the compensating saga; the
    connection record is BLOCKED with ``blocked_reason`` set.

    Attributes:
        connection_id: The failed order.
        error: The equipment error that exhausted its retries.
        fault: The connection's :class:`~repro.core.service.FaultReport`
            at reporting time (None when the caller had no fault view,
            e.g. backend-level classification).
        trace_id: For correlating with the tracer's spans.
    """

    connection_id: str
    error: Exception
    fault: Optional["FaultReport"] = None
    trace_id: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.connection_id}: setup failed - {self.error}"


@dataclass(frozen=True)
class ServiceDegraded:
    """Typed outcome for an order that came up with fewer components.

    Some wavelength/circuit components aborted during setup and were
    rolled back; the survivors carry (reduced) traffic.

    Attributes:
        connection_id: The degraded connection.
        error: The equipment error behind the first aborted component.
        fault: The connection's :class:`~repro.core.service.FaultReport`
            at reporting time (None for backend-level classification).
        trace_id: For correlating with the tracer's spans.
        up_components: How many components (lightpaths + circuits +
            EVCs) made it into service.
    """

    connection_id: str
    error: Exception
    fault: Optional["FaultReport"] = None
    trace_id: Optional[str] = None
    up_components: int = 0

    def __str__(self) -> str:
        return (
            f"{self.connection_id}: degraded "
            f"({self.up_components} component(s) up) - {self.error}"
        )


@dataclass(frozen=True)
class SlaBreached:
    """Typed outcome for a connection gray-degraded past its SLA.

    The SLO engine detected sustained OSNR-margin erosion (or another
    policy breach), could not remediate — no alternate path under the
    utilization gate, no maintenance window to defer into — and
    escalated the connection to DEGRADED.  Traffic still flows, but
    below the committed signal quality; the engine keeps monitoring and
    reverts the escalation automatically when the SLA recovers.

    Attributes:
        connection_id: The breached connection.
        policy: Name of the :class:`~repro.slo.SloPolicy` that fired.
        margin_db: The connection's OSNR margin at escalation time.
        cause: The degradation cause (e.g. ``"osnr-drift:NYC=CHI"``).
        trace_id: For correlating with the tracer's spans.
    """

    connection_id: str
    policy: str
    margin_db: float
    cause: str = ""
    trace_id: Optional[str] = None

    def __str__(self) -> str:
        return (
            f"{self.connection_id}: SLA breached "
            f"({self.policy}, margin {self.margin_db:.1f} dB) - {self.cause}"
        )


#: Edge-refusal codes carried by :class:`Rejected`.
REJECT_SHED = "shed"
REJECT_RATE_LIMIT = "rate-limit"
REJECT_QUOTA = "quota"


@dataclass(frozen=True)
class Rejected:
    """Typed outcome for an order refused at the service edge.

    The async frontend refuses work *before* intake ever sees it; a
    rejected order spent no quota and holds no queue slot.  ``code``
    is one of :data:`REJECT_SHED` (overload backpressure),
    :data:`REJECT_RATE_LIMIT` (the tenant's token bucket was empty), or
    :data:`REJECT_QUOTA` (the non-mutating edge-quota probe refused).

    Attributes:
        request_id: The frontend request id.
        code: The refusal class (shed / rate-limit / quota).
        reason: The one-line refusal message.
        tenant: The submitting tenant.
    """

    request_id: str
    code: str
    reason: str
    tenant: str = ""

    def __str__(self) -> str:
        return f"{self.request_id}: rejected ({self.code}) - {self.reason}"


#: The closed set of terminal order outcomes.  Matching on these eight
#: types is exhaustive for every backend (serial, pipeline, sharded)
#: and for the async frontend's edge refusals.
OrderOutcome = Union[
    Active,
    Blocked,
    QueueFull,
    Deferred,
    SetupFailed,
    ServiceDegraded,
    SlaBreached,
    Rejected,
]

#: Terminal outcome classes, for ``isinstance`` matching.
TERMINAL_OUTCOMES: Tuple[type, ...] = (
    Active,
    Blocked,
    QueueFull,
    Deferred,
    SetupFailed,
    ServiceDegraded,
    SlaBreached,
    Rejected,
)

#: Everything an order status query can return: the non-terminal
#: :class:`Accepted` plus any terminal outcome.
OrderStatus = Union[Accepted, OrderOutcome]


def classify_record(
    record: Any, fault: Optional["FaultReport"] = None
) -> OrderStatus:
    """Map a live connection (or shard order) record onto the union.

    The shared classification used by ``BodService.order_outcome``,
    ``OrderPipeline.outcome``, and ``ShardIntake.outcome``:

    * UP → :class:`Active`;
    * BLOCKED with a recorded ``setup_error`` → :class:`SetupFailed`
      (the compensating saga rolled the whole order back);
    * BLOCKED otherwise → :class:`Blocked`;
    * DEGRADED with a ``degradation_cause`` → :class:`SlaBreached`
      (the SLO engine escalated a gray failure it could not remediate);
    * DEGRADED with a ``setup_error`` → :class:`ServiceDegraded`;
    * anything else → :class:`Accepted` (in flight or post-lifecycle).
    """
    state = record.state
    setup_error = getattr(record, "setup_error", None)
    if state is ConnectionState.UP:
        return Active(record)
    if state is ConnectionState.BLOCKED:
        if setup_error is not None:
            return SetupFailed(
                connection_id=_record_id(record),
                error=setup_error,
                fault=fault,
                trace_id=getattr(record, "trace_id", None),
            )
        return Blocked(record)
    if state is ConnectionState.DEGRADED and getattr(
        record, "degradation_cause", ""
    ):
        margin = getattr(record, "degradation_margin_db", None)
        return SlaBreached(
            connection_id=_record_id(record),
            policy=getattr(record, "degradation_policy", ""),
            margin_db=margin if margin is not None else 0.0,
            cause=record.degradation_cause,
            trace_id=getattr(record, "trace_id", None),
        )
    if state is ConnectionState.DEGRADED and setup_error is not None:
        return ServiceDegraded(
            connection_id=_record_id(record),
            error=setup_error,
            fault=fault,
            trace_id=getattr(record, "trace_id", None),
            up_components=_up_components(record),
        )
    return Accepted(record)


def _record_id(record: Any) -> str:
    existing = getattr(record, "connection_id", None)
    return existing if existing is not None else record.order_id


def _up_components(record: Any) -> int:
    return (
        len(getattr(record, "lightpath_ids", ()))
        + len(getattr(record, "circuit_ids", ()))
        + len(getattr(record, "evc_ids", ()))
    )


@runtime_checkable
class OrderIntake(Protocol):
    """The order-intake contract every backend exposes.

    ``submit`` returns an :class:`~repro.pipeline.OrderTicket`
    immediately (backpressure settles it QUEUE_FULL on the spot);
    ``outcome`` maps a ticket onto the typed union above; listeners see
    every lifecycle edge.  The async frontend targets exactly this
    protocol, which is what makes the monolithic pipeline and the
    sharded network swappable behind it.
    """

    def submit(
        self,
        customer: str,
        premises_a: str,
        premises_b: str,
        rate_bps: float,
        kind: Optional["ConnectionKind"] = None,
    ) -> "OrderTicket":
        """Queue an order; return its ticket immediately."""
        ...

    def outcome(self, ticket: "OrderTicket") -> Optional[OrderStatus]:
        """The ticket's current typed status (None while queued)."""
        ...

    def queue_depth(self) -> int:
        """Orders currently waiting for processing."""
        ...

    @property
    def capacity(self) -> int:
        """The bounded intake queue size."""
        ...

    def add_listener(
        self, listener: Callable[["OrderTicket", str], None]
    ) -> None:
        """Subscribe to ticket lifecycle events.

        The listener is called with ``(ticket, event)`` where ``event``
        is ``"settled"`` (the ticket reached a terminal intake state:
        accepted / blocked / deferred / queue-full), then — for
        accepted orders — ``"active"``, ``"degraded"``, or ``"failed"``
        when setup concludes, and ``"released"`` after teardown.
        """
        ...

    def teardown(self, ticket: "OrderTicket") -> None:
        """Tear down an accepted ticket's connection."""
        ...


__all__ = [
    "Accepted",
    "Active",
    "Blocked",
    "QueueFull",
    "Deferred",
    "SetupFailed",
    "ServiceDegraded",
    "SlaBreached",
    "Rejected",
    "REJECT_SHED",
    "REJECT_RATE_LIMIT",
    "REJECT_QUOTA",
    "OrderOutcome",
    "OrderStatus",
    "TERMINAL_OUTCOMES",
    "OrderIntake",
    "classify_record",
]
