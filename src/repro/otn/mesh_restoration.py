"""Shared-mesh restoration for the OTN layer.

The OTN layer "can provide automatic sub-second shared-mesh restoration
similar to today's SONET layer" (paper §2.1).  In shared-mesh protection
each circuit pre-plans a backup path that is link-disjoint from its
working path, and backup capacity is *shared*: two circuits whose working
paths cannot fail together (no common link) may reserve the same backup
slots.  The manager here tracks those reservations per single-link
failure scenario, guaranteeing that any single fiber cut can be restored
without oversubscribing a backup line.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CapacityExceededError, ConfigurationError, ResourceError
from repro.obs.registry import MetricsRegistry
from repro.otn.circuit import OduCircuit, OduCircuitState
from repro.otn.line import OtnLine

#: Restoration switch timing: detection plus per-hop cross-connect, in
#: seconds.  Tuned so typical circuits restore in 50-300 ms (sub-second,
#: as the paper requires of the OTN layer).
DETECTION_TIME_S = 0.030
PER_HOP_SWITCH_S = 0.025


class SharedMeshProtection:
    """Pre-planned, capacity-shared backup paths for ODU circuits."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._metrics = metrics
        self._lines: Dict[str, OtnLine] = {}
        # backup line id -> failure scenario (working link key) -> slots.
        self._reserved: Dict[str, Dict[Tuple[str, str], int]] = {}
        # circuit id -> (circuit, working link keys, backup line ids).
        self._registry: Dict[str, Tuple[OduCircuit, List[Tuple[str, str]], List[str]]] = {}

    def add_line(self, line: OtnLine) -> None:
        """Make a line available as backup capacity.

        Raises:
            ConfigurationError: on duplicate line ids.
        """
        if line.line_id in self._lines:
            raise ConfigurationError(f"line {line.line_id} already added")
        self._lines[line.line_id] = line
        self._reserved[line.line_id] = {}

    def line(self, line_id: str) -> OtnLine:
        """Look up a managed line.

        Raises:
            ConfigurationError: for an unknown id.
        """
        try:
            return self._lines[line_id]
        except KeyError:
            raise ConfigurationError(f"unknown line {line_id!r}") from None

    # -- registration -----------------------------------------------------------

    def register(self, circuit: OduCircuit, backup_line_ids: List[str]) -> None:
        """Register a circuit's pre-planned backup route.

        Args:
            circuit: The circuit; its ``backup_path`` must be set and
                link-disjoint from its working path.
            backup_line_ids: One managed line id per backup-path hop.

        Raises:
            ConfigurationError: if the backup plan is malformed.
            CapacityExceededError: if sharing cannot absorb the new
                reservation under some single-failure scenario.
        """
        if circuit.backup_path is None or len(circuit.backup_path) < 2:
            raise ConfigurationError(
                f"circuit {circuit.circuit_id} has no backup path"
            )
        if len(backup_line_ids) != len(circuit.backup_path) - 1:
            raise ConfigurationError(
                f"circuit {circuit.circuit_id}: backup path has "
                f"{len(circuit.backup_path) - 1} hops but "
                f"{len(backup_line_ids)} line ids were given"
            )
        if circuit.circuit_id in self._registry:
            raise ConfigurationError(
                f"circuit {circuit.circuit_id} already registered"
            )
        working_links = _link_keys(circuit.path)
        backup_links = set(_link_keys(circuit.backup_path))
        overlap = set(working_links) & backup_links
        if overlap:
            raise ConfigurationError(
                f"circuit {circuit.circuit_id}: backup path shares links "
                f"{sorted(overlap)} with the working path"
            )
        # Feasibility: under each single working-link failure, the total
        # backup demand on every backup line must fit its capacity.
        for line_id in backup_line_ids:
            line = self.line(line_id)
            scenarios = self._reserved[line_id]
            for failure in working_links:
                demanded = scenarios.get(failure, 0) + circuit.slots_needed
                if demanded > line.free_slot_count():
                    raise CapacityExceededError(
                        f"backup line {line_id} cannot absorb circuit "
                        f"{circuit.circuit_id} under failure of {failure}: "
                        f"needs {demanded}, has {line.free_slot_count()}"
                    )
        for line_id in backup_line_ids:
            scenarios = self._reserved[line_id]
            for failure in working_links:
                scenarios[failure] = (
                    scenarios.get(failure, 0) + circuit.slots_needed
                )
        self._registry[circuit.circuit_id] = (
            circuit,
            working_links,
            list(backup_line_ids),
        )

    def unregister(self, circuit_id: str) -> None:
        """Remove a circuit's backup reservations.

        Raises:
            ResourceError: for an unknown circuit.
        """
        entry = self._registry.pop(circuit_id, None)
        if entry is None:
            raise ResourceError(f"circuit {circuit_id!r} is not registered")
        circuit, working_links, backup_line_ids = entry
        for line_id in backup_line_ids:
            scenarios = self._reserved[line_id]
            for failure in working_links:
                scenarios[failure] -= circuit.slots_needed
                if scenarios[failure] <= 0:
                    del scenarios[failure]

    def reserved_slots(self, line_id: str) -> int:
        """Worst-case (max over failure scenarios) reservation on a line."""
        scenarios = self._reserved.get(line_id)
        if not scenarios:
            return 0
        return max(scenarios.values())

    # -- restoration ------------------------------------------------------------

    def circuits_hit_by(self, failed_link: Tuple[str, str]) -> List[OduCircuit]:
        """Registered circuits whose *working* path rides ``failed_link``."""
        key = _canonical(failed_link)
        return [
            circuit
            for circuit, working_links, _ in self._registry.values()
            if key in working_links
        ]

    def restore(self, circuit_id: str) -> float:
        """Switch a circuit to its backup path; returns the switch time.

        Allocates real slots on every backup line and moves the circuit
        to ``ON_BACKUP``.  The returned duration models failure detection
        plus per-hop cross-connection and is always sub-second for
        reasonable path lengths.

        Raises:
            ResourceError: for an unregistered circuit.
            CapacityExceededError: if a backup line lost capacity since
                registration (e.g. double failure).
        """
        entry = self._registry.get(circuit_id)
        if entry is None:
            raise ResourceError(f"circuit {circuit_id!r} is not registered")
        circuit, _, backup_line_ids = entry
        allocated = []
        try:
            for line_id in backup_line_ids:
                line = self.line(line_id)
                line.allocate(circuit.slots_needed, circuit.circuit_id)
                allocated.append(line)
        except (CapacityExceededError, ResourceError):
            # Double failure or stolen capacity: roll back the partial
            # allocation so nothing leaks, then report the failure.
            for line in allocated:
                line.release_owner(circuit.circuit_id)
            if self._metrics is not None:
                self._metrics.inc("otn.mesh.blocked")
            raise
        circuit.backup_line_ids = list(backup_line_ids)
        circuit.transition(OduCircuitState.ON_BACKUP)
        hops = len(backup_line_ids)
        switch_time = DETECTION_TIME_S + hops * PER_HOP_SWITCH_S
        if self._metrics is not None:
            self._metrics.inc("otn.mesh.restored")
            self._metrics.observe("otn.mesh.switch_s", switch_time)
        return switch_time

    def revert(self, circuit_id: str) -> None:
        """Return a restored circuit to its (repaired) working path."""
        entry = self._registry.get(circuit_id)
        if entry is None:
            raise ResourceError(f"circuit {circuit_id!r} is not registered")
        circuit, _, backup_line_ids = entry
        if circuit.state is not OduCircuitState.ON_BACKUP:
            raise ResourceError(
                f"circuit {circuit_id} is {circuit.state.value}, not on backup"
            )
        for line_id in backup_line_ids:
            self.line(line_id).release_owner(circuit.circuit_id)
        circuit.backup_line_ids = []
        circuit.transition(OduCircuitState.UP)


def _canonical(key: Tuple[str, str]) -> Tuple[str, str]:
    a, b = key
    return (a, b) if a <= b else (b, a)


def _link_keys(path: List[str]) -> List[Tuple[str, str]]:
    return [_canonical((u, v)) for u, v in zip(path, path[1:])]
