"""OTN lines: tributary-slot capacity between two OTN switches.

An OTN line is a wavelength (e.g. an ODU2 over a 10G lightpath) whose
payload is divided into 1.25G tributary slots.  ODU0 circuits take one
slot, ODU1 two, and so on.  Unlike the photonic layer there is no
continuity constraint — each line allocates slots independently because
the switches regenerate electrically.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.errors import CapacityExceededError, ConfigurationError, ResourceError
from repro.units import ODU_LEVELS, OduLevel


class OtnLine:
    """One wavelength's worth of tributary slots between two switches.

    Attributes:
        line_id: Unique id, e.g. ``'OTNLINE:NYC=CHI:0'``.
        a: One endpoint node.
        b: Other endpoint node.
        level: The line's ODU level (typically ODU2 or ODU3).
    """

    def __init__(self, line_id: str, a: str, b: str, level: OduLevel = None) -> None:
        if a == b:
            raise ConfigurationError(f"OTN line endpoints must differ, got {a}")
        self.line_id = line_id
        self.a = a
        self.b = b
        self.level = level or ODU_LEVELS["ODU2"]
        self._slot_owner: Dict[int, str] = {}
        self._failed = False

    @property
    def key(self) -> Tuple[str, str]:
        """Canonical endpoint pair."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    @property
    def slot_count(self) -> int:
        """Total tributary slots on the line."""
        return self.level.tributary_slots

    @property
    def failed(self) -> bool:
        """True while the underlying wavelength is down."""
        return self._failed

    def free_slots(self) -> List[int]:
        """Indices of unallocated tributary slots."""
        return [s for s in range(self.slot_count) if s not in self._slot_owner]

    def free_slot_count(self) -> int:
        """Number of unallocated slots."""
        return self.slot_count - len(self._slot_owner)

    def owner_of(self, slot: int) -> str:
        """Owner of ``slot`` or empty string when free."""
        self._validate(slot)
        return self._slot_owner.get(slot, "")

    def allocate(self, slots_needed: int, owner: str) -> List[int]:
        """Allocate ``slots_needed`` slots to ``owner``; returns the indices.

        Raises:
            CapacityExceededError: if not enough slots are free.
            ResourceError: if the line is failed.
        """
        if slots_needed < 1:
            raise ConfigurationError(f"need >= 1 slot, got {slots_needed}")
        if self._failed:
            raise ResourceError(f"line {self.line_id} is failed")
        free = self.free_slots()
        if len(free) < slots_needed:
            raise CapacityExceededError(
                f"line {self.line_id} has {len(free)} free slots, "
                f"need {slots_needed}"
            )
        taken = free[:slots_needed]
        for slot in taken:
            self._slot_owner[slot] = owner
        return taken

    def release_owner(self, owner: str) -> int:
        """Free every slot held by ``owner``; returns how many were freed.

        Raises:
            ResourceError: if the owner holds no slots on this line.
        """
        mine = [s for s, holder in self._slot_owner.items() if holder == owner]
        if not mine:
            raise ResourceError(
                f"{owner!r} holds no slots on line {self.line_id}"
            )
        for slot in mine:
            del self._slot_owner[slot]
        return len(mine)

    def owners(self) -> Set[str]:
        """All owners with at least one slot on the line."""
        return set(self._slot_owner.values())

    def fail(self) -> Set[str]:
        """Mark the line down; returns the affected owners."""
        self._failed = True
        return self.owners()

    def repair(self) -> None:
        """Bring the line back up."""
        self._failed = False

    def utilization(self) -> float:
        """Fraction of slots allocated, in [0, 1]."""
        return len(self._slot_owner) / self.slot_count

    def _validate(self, slot: int) -> None:
        if not 0 <= slot < self.slot_count:
            raise ConfigurationError(
                f"line {self.line_id} has no slot {slot} "
                f"(slots: 0..{self.slot_count - 1})"
            )

    def __repr__(self) -> str:
        return (
            f"OtnLine({self.line_id}, {self.level.name}, "
            f"{self.free_slot_count()}/{self.slot_count} free)"
        )
