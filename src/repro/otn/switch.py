"""OTN switches: electrical cross-connects at ODU0 granularity.

An OTN switch sits at a node with *client ports* (where the FXC delivers
customer signals) and *line attachments* (OTN lines toward neighboring
switches).  It cross-connects client signals into tributary slots and
slots between lines — the grooming capability the FXC lacks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CapacityExceededError, ConfigurationError, EquipmentError
from repro.otn.line import OtnLine


class OtnSwitch:
    """The OTN switch at one node."""

    def __init__(self, node: str, client_port_count: int = 16) -> None:
        if client_port_count < 1:
            raise ConfigurationError(
                f"need >= 1 client port, got {client_port_count}"
            )
        self.node = node
        self.client_port_count = client_port_count
        self._client_owner: Dict[int, str] = {}
        self._lines: Dict[str, OtnLine] = {}

    # -- client ports -----------------------------------------------------------

    def claim_client_port(self, owner: str) -> int:
        """Claim the lowest free client port; returns its index.

        Raises:
            CapacityExceededError: if every port is taken.
        """
        for port in range(self.client_port_count):
            if port not in self._client_owner:
                self._client_owner[port] = owner
                return port
        raise CapacityExceededError(
            f"OTN switch at {self.node} has no free client port"
        )

    def release_client_port(self, port: int, owner: str) -> None:
        """Release a client port.

        Raises:
            EquipmentError: if the port is idle, unknown, or not ``owner``'s.
        """
        if not 0 <= port < self.client_port_count:
            raise EquipmentError(
                f"OTN switch at {self.node} has no client port {port}"
            )
        current = self._client_owner.get(port)
        if current is None:
            raise EquipmentError(
                f"OTN switch at {self.node} client port {port} is idle"
            )
        if current != owner:
            raise EquipmentError(
                f"OTN switch at {self.node} client port {port} is held by "
                f"{current!r}, not {owner!r}"
            )
        del self._client_owner[port]

    def free_client_ports(self) -> List[int]:
        """Indices of idle client ports."""
        return [
            p for p in range(self.client_port_count) if p not in self._client_owner
        ]

    def client_port_owners(self) -> Dict[int, str]:
        """Current client-port ownership (port -> owner), for auditing."""
        return dict(self._client_owner)

    # -- lines ----------------------------------------------------------------

    def attach_line(self, line: OtnLine) -> None:
        """Attach an OTN line that terminates at this switch.

        Raises:
            ConfigurationError: if the line does not terminate here or a
                line with the same id is already attached.
        """
        if self.node not in (line.a, line.b):
            raise ConfigurationError(
                f"line {line.line_id} ({line.a}-{line.b}) does not "
                f"terminate at {self.node}"
            )
        if line.line_id in self._lines:
            raise ConfigurationError(f"line {line.line_id} already attached")
        self._lines[line.line_id] = line

    @property
    def lines(self) -> List[OtnLine]:
        """All attached lines."""
        return list(self._lines.values())

    def lines_toward(self, neighbor: str) -> List[OtnLine]:
        """Attached lines whose far end is ``neighbor``."""
        return [
            line
            for line in self._lines.values()
            if neighbor in (line.a, line.b) and line.a != line.b
            and self.node in (line.a, line.b)
            and (line.a == neighbor or line.b == neighbor)
        ]

    def best_line_toward(
        self, neighbor: str, slots_needed: int
    ) -> Optional[OtnLine]:
        """The most-filled working line toward ``neighbor`` that still fits.

        Best-fit packing concentrates circuits on already-used wavelengths,
        which is exactly the packing efficiency the paper credits the OTN
        layer with (§2.1).  Returns ``None`` if no line fits.
        """
        candidates = [
            line
            for line in self.lines_toward(neighbor)
            if not line.failed and line.free_slot_count() >= slots_needed
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda line: (line.utilization(), line.line_id))

    def __repr__(self) -> str:
        return (
            f"OtnSwitch({self.node}, clients="
            f"{len(self._client_owner)}/{self.client_port_count}, "
            f"lines={len(self._lines)})"
        )
