"""The OTN sub-wavelength layer (ITU-T G.709).

GRIPhoN's OTN layer rides on top of the DWDM layer and provides
sub-wavelength connections: OTN switches cross-connect at ODU0
(1.25 Gbps) granularity, pack client signals into wavelength-rate line
ODUs via tributary slots, and offer automatic sub-second shared-mesh
restoration similar to today's SONET layer (paper §2.1).

* :mod:`repro.otn.line` — tributary-slot capacity of one OTN line;
* :mod:`repro.otn.switch` — OTN switches with client and line ports;
* :mod:`repro.otn.circuit` — ODU circuit records and state machine;
* :mod:`repro.otn.mesh_restoration` — shared-mesh protection manager.
"""

from repro.otn.circuit import OduCircuit, OduCircuitState
from repro.otn.line import OtnLine
from repro.otn.mesh_restoration import SharedMeshProtection
from repro.otn.switch import OtnSwitch

__all__ = [
    "OduCircuit",
    "OduCircuitState",
    "OtnLine",
    "SharedMeshProtection",
    "OtnSwitch",
]
