"""ODU circuits: sub-wavelength connections through the OTN layer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConnectionStateError
from repro.units import OduLevel


class OduCircuitState(enum.Enum):
    """Life cycle of an ODU circuit."""

    PLANNED = "planned"
    SETTING_UP = "setting_up"
    UP = "up"
    ON_BACKUP = "on_backup"
    FAILED = "failed"
    RELEASED = "released"


_ALLOWED = {
    OduCircuitState.PLANNED: {OduCircuitState.SETTING_UP, OduCircuitState.RELEASED},
    OduCircuitState.SETTING_UP: {OduCircuitState.UP, OduCircuitState.RELEASED},
    OduCircuitState.UP: {
        OduCircuitState.ON_BACKUP,
        OduCircuitState.FAILED,
        OduCircuitState.RELEASED,
    },
    OduCircuitState.ON_BACKUP: {
        OduCircuitState.UP,
        OduCircuitState.FAILED,
        OduCircuitState.RELEASED,
    },
    OduCircuitState.FAILED: {
        OduCircuitState.UP,
        OduCircuitState.ON_BACKUP,
        OduCircuitState.RELEASED,
    },
    OduCircuitState.RELEASED: set(),
}


@dataclass
class OduCircuit:
    """One sub-wavelength connection.

    Attributes:
        circuit_id: Unique id (the *owner* string on line slots).
        level: The ODU container level (ODU0 for a 1G client).
        path: Node path through OTN switches.
        line_ids: Per-hop line ids the circuit rides (working path).
        backup_path: Optional precomputed restoration path (node list).
        backup_line_ids: Per-hop line ids on the backup path, filled in
            when shared-mesh restoration activates.
    """

    circuit_id: str
    level: OduLevel
    path: List[str]
    line_ids: List[str] = field(default_factory=list)
    backup_path: Optional[List[str]] = None
    backup_line_ids: List[str] = field(default_factory=list)
    state: OduCircuitState = OduCircuitState.PLANNED
    setup_started_at: Optional[float] = None
    up_at: Optional[float] = None
    restored_at: Optional[float] = None

    @property
    def source(self) -> str:
        """First node of the working path."""
        return self.path[0]

    @property
    def destination(self) -> str:
        """Last node of the working path."""
        return self.path[-1]

    @property
    def slots_needed(self) -> int:
        """Tributary slots the circuit consumes on every line it rides."""
        return self.level.tributary_slots

    @property
    def active_path(self) -> List[str]:
        """The path currently carrying traffic (backup while restored)."""
        if self.state is OduCircuitState.ON_BACKUP and self.backup_path:
            return self.backup_path
        return self.path

    def transition(self, new_state: OduCircuitState) -> None:
        """Move the state machine to ``new_state``.

        Raises:
            ConnectionStateError: for a disallowed transition.
        """
        if new_state not in _ALLOWED[self.state]:
            raise ConnectionStateError(
                f"circuit {self.circuit_id}: cannot go "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def __str__(self) -> str:
        route = " - ".join(self.active_path)
        return f"{self.circuit_id} [{self.state.value}] {self.level.name} {route}"
