"""The IP layer network: routers, adjacencies, EVC routing, reroute.

Adjacencies carry committed EVC bandwidth with a statistical
oversubscription factor (packet multiplexing lets the carrier sell more
committed rate than raw capacity, unlike the rigid TDM layers below).
On an adjacency failure the layer reconverges IGP-style — a couple
hundred milliseconds — and reroutes affected EVCs onto surviving
capacity where it exists.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.errors import (
    CapacityExceededError,
    ConfigurationError,
    NoPathError,
    ResourceError,
)
from repro.iplayer.evc import Evc, EvcState

#: IGP detection + SPF reconvergence time, in seconds.
RECONVERGENCE_TIME_S = 0.200


@dataclass
class Adjacency:
    """A router-to-router link with committed-bandwidth accounting.

    Attributes:
        a / b: Endpoint routers.
        capacity_bps: Raw transport capacity underneath.
        oversubscription: Committed-rate multiplier the carrier allows.
    """

    a: str
    b: str
    capacity_bps: float
    oversubscription: float = 2.0
    up: bool = True
    owners: Dict[str, float] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, str]:
        """Canonical endpoint pair."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    @property
    def sellable_bps(self) -> float:
        """Total committed rate the adjacency may carry."""
        return self.capacity_bps * self.oversubscription

    @property
    def reserved_bps(self) -> float:
        """Committed rate currently reserved (derived from the per-EVC
        ledger, so it can never drift out of sync)."""
        return sum(self.owners.values())

    @property
    def free_bps(self) -> float:
        """Committed rate still available for new EVCs."""
        return self.sellable_bps - self.reserved_bps

    def reserve(self, evc_id: str, rate_bps: float) -> None:
        """Reserve committed rate for an EVC.

        Raises:
            CapacityExceededError: if the adjacency cannot sell more.
            ResourceError: if the adjacency is down or the EVC already
                holds a reservation here.
        """
        if not self.up:
            raise ResourceError(f"adjacency {self.key} is down")
        if evc_id in self.owners:
            raise ResourceError(f"{evc_id} already reserved on {self.key}")
        if rate_bps > self.free_bps + 1e-9:
            raise CapacityExceededError(
                f"adjacency {self.key}: need {rate_bps}, free {self.free_bps}"
            )
        self.owners[evc_id] = rate_bps

    def release(self, evc_id: str) -> None:
        """Release an EVC's reservation.

        Raises:
            ResourceError: if the EVC holds nothing here.
        """
        if evc_id not in self.owners:
            raise ResourceError(f"{evc_id} holds nothing on {self.key}")
        del self.owners[evc_id]


class IpLayer:
    """Routers, adjacencies, and EVC management."""

    def __init__(self) -> None:
        self._routers: Set[str] = set()
        self._adjacencies: Dict[Tuple[str, str], Adjacency] = {}
        self._evcs: Dict[str, Evc] = {}
        self._seq = itertools.count()

    # -- construction --------------------------------------------------------

    def add_router(self, node: str) -> None:
        """Install a router at ``node``."""
        if node in self._routers:
            raise ConfigurationError(f"router already installed at {node}")
        self._routers.add(node)

    def add_adjacency(
        self,
        a: str,
        b: str,
        capacity_bps: float,
        oversubscription: float = 2.0,
    ) -> Adjacency:
        """Create an adjacency between two installed routers."""
        for node in (a, b):
            if node not in self._routers:
                raise ConfigurationError(f"no router at {node}")
        if a == b:
            raise ConfigurationError("adjacency endpoints must differ")
        if capacity_bps <= 0 or oversubscription < 1.0:
            raise ConfigurationError(
                "capacity must be positive and oversubscription >= 1"
            )
        adjacency = Adjacency(a, b, capacity_bps, oversubscription)
        if adjacency.key in self._adjacencies:
            raise ConfigurationError(f"duplicate adjacency {adjacency.key}")
        self._adjacencies[adjacency.key] = adjacency
        return adjacency

    def adjacency(self, a: str, b: str) -> Adjacency:
        """Look up the adjacency between two routers.

        Raises:
            ConfigurationError: if none exists.
        """
        key = (a, b) if a <= b else (b, a)
        try:
            return self._adjacencies[key]
        except KeyError:
            raise ConfigurationError(f"no adjacency {key}") from None

    @property
    def routers(self) -> List[str]:
        """All router nodes."""
        return sorted(self._routers)

    @property
    def evcs(self) -> List[Evc]:
        """All live EVCs."""
        return list(self._evcs.values())

    # -- routing --------------------------------------------------------------

    def route(
        self,
        a: str,
        b: str,
        rate_bps: float,
        excluded: Tuple[Tuple[str, str], ...] = (),
    ) -> List[str]:
        """Widest-shortest path with at least ``rate_bps`` free per hop.

        Dijkstra on hop count, tie-broken by bottleneck free bandwidth.

        Raises:
            NoPathError: if no feasible path exists.
        """
        if a not in self._routers or b not in self._routers:
            raise ConfigurationError(f"unknown router in {a!r} -> {b!r}")
        banned = {((x, y) if x <= y else (y, x)) for x, y in excluded}
        # (hops, -bottleneck, counter, node)
        counter = itertools.count()
        best: Dict[str, Tuple[int, float]] = {a: (0, float("inf"))}
        previous: Dict[str, str] = {}
        frontier = [(0, 0.0, next(counter), a)]
        visited: Set[str] = set()
        while frontier:
            hops, neg_bottleneck, _, current = heapq.heappop(frontier)
            if current in visited:
                continue
            visited.add(current)
            if current == b:
                path = [b]
                while path[-1] != a:
                    path.append(previous[path[-1]])
                path.reverse()
                return path
            for adjacency in self._adjacencies.values():
                if current not in (adjacency.a, adjacency.b):
                    continue
                if not adjacency.up or adjacency.key in banned:
                    continue
                if adjacency.free_bps < rate_bps:
                    continue
                neighbor = (
                    adjacency.b if current == adjacency.a else adjacency.a
                )
                if neighbor in visited:
                    continue
                bottleneck = min(-neg_bottleneck, adjacency.free_bps)
                candidate = (hops + 1, -bottleneck)
                if neighbor not in best or candidate < (
                    best[neighbor][0],
                    -best[neighbor][1],
                ):
                    best[neighbor] = (hops + 1, bottleneck)
                    previous[neighbor] = current
                    heapq.heappush(
                        frontier,
                        (hops + 1, -bottleneck, next(counter), neighbor),
                    )
        raise NoPathError(
            f"no IP path {a} -> {b} with {rate_bps} bps free"
        )

    # -- EVC management ----------------------------------------------------------

    def provision_evc(self, a: str, b: str, rate_bps: float) -> Evc:
        """Route and reserve an EVC; returns it.

        Raises:
            NoPathError: if no feasible path exists (nothing reserved).
        """
        if rate_bps <= 0:
            raise ConfigurationError("EVC rate must be positive")
        path = self.route(a, b, rate_bps)
        evc = Evc(f"evc-{next(self._seq)}", a, b, rate_bps, path=path)
        for u, v in zip(path, path[1:]):
            self.adjacency(u, v).reserve(evc.evc_id, rate_bps)
        self._evcs[evc.evc_id] = evc
        return evc

    def release_evc(self, evc_id: str) -> None:
        """Tear down an EVC and free its reservations.

        Raises:
            ResourceError: for an unknown EVC.
        """
        evc = self._evcs.pop(evc_id, None)
        if evc is None:
            raise ResourceError(f"unknown EVC {evc_id!r}")
        for u, v in zip(evc.path, evc.path[1:]):
            adjacency = self.adjacency(u, v)
            if evc_id in adjacency.owners:
                adjacency.release(evc_id)
        evc.transition(EvcState.RELEASED)

    # -- failures -------------------------------------------------------------

    def fail_adjacency(self, a: str, b: str) -> List[Evc]:
        """Take an adjacency down; returns EVCs that were riding it."""
        adjacency = self.adjacency(a, b)
        adjacency.up = False
        key = adjacency.key
        return [
            evc
            for evc in self._evcs.values()
            if key in {
                ((u, v) if u <= v else (v, u))
                for u, v in zip(evc.path, evc.path[1:])
            }
        ]

    def repair_adjacency(self, a: str, b: str) -> None:
        """Bring an adjacency back up."""
        self.adjacency(a, b).up = True

    def reroute_evc(self, evc_id: str) -> float:
        """Move an EVC off failed adjacencies; returns the outage time.

        The outage is IGP reconvergence; the EVC keeps its reservation
        semantics on the new path.

        Raises:
            ResourceError: for an unknown EVC.
            NoPathError: if no surviving path has capacity (the EVC is
                left DOWN with its old reservations released).
        """
        evc = self._evcs.get(evc_id)
        if evc is None:
            raise ResourceError(f"unknown EVC {evc_id!r}")
        # Release old reservations first (the old path is broken anyway).
        for u, v in zip(evc.path, evc.path[1:]):
            adjacency = self.adjacency(u, v)
            if evc_id in adjacency.owners:
                adjacency.release(evc_id)
        if evc.state is EvcState.UP:
            evc.transition(EvcState.REROUTING)
        try:
            path = self.route(evc.a, evc.b, evc.rate_bps)
        except NoPathError:
            evc.path = []
            if evc.state is not EvcState.DOWN:
                evc.transition(EvcState.DOWN)
            raise
        for u, v in zip(path, path[1:]):
            self.adjacency(u, v).reserve(evc_id, evc.rate_bps)
        evc.path = path
        evc.reroute_count += 1
        evc.transition(EvcState.UP)
        return RECONVERGENCE_TIME_S
