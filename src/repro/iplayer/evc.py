"""Ethernet virtual circuits: committed-rate packet services."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConnectionStateError


class EvcState(enum.Enum):
    """Life cycle of an EVC."""

    UP = "up"
    REROUTING = "rerouting"
    DOWN = "down"
    RELEASED = "released"


_ALLOWED = {
    EvcState.UP: {EvcState.REROUTING, EvcState.DOWN, EvcState.RELEASED},
    EvcState.REROUTING: {EvcState.UP, EvcState.DOWN, EvcState.RELEASED},
    EvcState.DOWN: {EvcState.REROUTING, EvcState.UP, EvcState.RELEASED},
    EvcState.RELEASED: set(),
}


@dataclass
class Evc:
    """One Ethernet virtual circuit.

    Attributes:
        evc_id: Unique id (the reservation owner on adjacencies).
        a / b: Endpoint router nodes.
        rate_bps: Committed information rate.
        path: Current router path.
        reroute_count: How many times the EVC has been moved.
    """

    evc_id: str
    a: str
    b: str
    rate_bps: float
    path: List[str] = field(default_factory=list)
    state: EvcState = EvcState.UP
    reroute_count: int = 0
    total_outage_s: float = 0.0
    outage_started_at: Optional[float] = None

    def transition(self, new_state: EvcState) -> None:
        """Move the state machine.

        Raises:
            ConnectionStateError: for a disallowed transition.
        """
        if new_state not in _ALLOWED[self.state]:
            raise ConnectionStateError(
                f"EVC {self.evc_id}: cannot go "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def begin_outage(self, now: float) -> None:
        """Open an unavailability period."""
        if self.outage_started_at is None:
            self.outage_started_at = now

    def end_outage(self, now: float) -> None:
        """Close and accumulate the current unavailability period."""
        if self.outage_started_at is not None:
            self.total_outage_s += now - self.outage_started_at
            self.outage_started_at = None
