"""The IP layer: Ethernet virtual circuits below 1 Gbps.

Fig. 2's service categorization sends guaranteed-bandwidth connections
below 1 Gbps over the IP layer as EVCs — packet services with committed
rates riding router adjacencies, which in turn ride the transport
layers.  The model captures what matters to GRIPhoN: per-adjacency
bandwidth accounting with statistical oversubscription, widest-shortest
routing, and fast IGP-style rerouting when an underlying fiber cut takes
an adjacency down.

* :mod:`repro.iplayer.evc` — EVC records and state machine;
* :mod:`repro.iplayer.network` — routers, adjacencies, routing, reroute.
"""

from repro.iplayer.evc import Evc, EvcState
from repro.iplayer.network import Adjacency, IpLayer

__all__ = ["Evc", "EvcState", "Adjacency", "IpLayer"]
