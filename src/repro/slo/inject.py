"""Deterministic gray-failure injection against the optical state.

The injector ticks on the simulator and, for every active
:class:`~repro.faults.plan.DegradationSpec`, mutates the impairment
state the controller's margin helpers read:

* ``osnr-drift`` — a linear OSNR-penalty ramp over the first quarter of
  the window, then a hold at ``magnitude_db``;
* ``amp-flap`` — a square wave on the link's amplifier-chain gain
  (``period_s`` per half-cycle); while the gain deviates, a matching
  ``amp-flap:*`` degradation cause is registered on the link so the
  penalty is visible *and* the invariant auditor can tell a flapping
  amp from a remediation bug that forgot to reset the gain;
* ``attenuation-creep`` — a monotonic ``rate_db_per_hour`` climb capped
  at ``magnitude_db``.

All randomness (per-tick jitter) comes from the plan's seeded
substream, drawn exactly once per active (spec, tick) pair, so two runs
with the same master seed replay byte-identical degradation traces.
When every spec's window has closed the injector restores all state it
touched and its process ends — an attached injector never keeps the
simulator alive past the plan horizon.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.faults.plan import DegradationPlan, DegradationSpec
from repro.sim.process import Process


class DegradationInjector:
    """Replays a :class:`DegradationPlan` onto a controller's plant."""

    def __init__(
        self,
        controller,
        plan: DegradationPlan,
        tick_s: float = 30.0,
    ) -> None:
        if tick_s <= 0:
            raise ConfigurationError(f"tick_s must be positive, got {tick_s}")
        self._controller = controller
        self._plan = plan.bind(controller.streams)
        self._tick_s = tick_s
        self._done: List[bool] = [False] * len(plan)
        self._activated: List[bool] = [False] * len(plan)
        self._process: Optional[Process] = None
        self._tick = 0

    @property
    def plan(self) -> DegradationPlan:
        """The plan being replayed."""
        return self._plan

    @property
    def finished(self) -> bool:
        """True once every spec's window has closed and been restored."""
        return all(self._done) if self._done else True

    def start(self) -> Optional[Process]:
        """Begin injecting; returns the driving process (None if empty).

        An empty plan schedules nothing at all, preserving byte-identical
        event streams for networks that never degrade.
        """
        if self._plan.empty:
            return None
        if self._process is not None:
            raise ConfigurationError("injector already started")
        self._process = Process(
            self._controller.sim, self._run(), label="slo-inject"
        )
        return self._process

    # -- internals ------------------------------------------------------------

    def _run(self):
        sim = self._controller.sim
        horizon = self._plan.horizon_s
        while sim.now < horizon:
            self._apply(sim.now)
            yield min(self._tick_s, horizon - sim.now)
        # Final tick at the horizon restores everything still active.
        self._apply(sim.now)

    def _cause(self, index: int, spec: DegradationSpec) -> str:
        return f"{spec.mode}:{index}"

    def _apply(self, now: float) -> None:
        self._tick += 1
        for index, spec in enumerate(self._plan.specs):
            if self._done[index] or now < spec.start_s:
                continue
            if now >= spec.end_s:
                self._finish(index, spec)
                continue
            if not self._activated[index]:
                self._activated[index] = True
                self._controller.metrics.inc(f"slo.injected.{spec.mode}")
            elapsed = now - spec.start_s
            if spec.mode == "amp-flap":
                self._apply_flap(index, spec, elapsed)
            else:
                penalty = self._base_penalty(spec, elapsed)
                penalty = max(0.0, penalty + self._plan.jitter(index, self._tick))
                self._set_penalty(index, spec, penalty)

    def _base_penalty(self, spec: DegradationSpec, elapsed: float) -> float:
        if spec.mode == "osnr-drift":
            ramp_s = spec.duration_s / 4.0
            return spec.magnitude_db * min(1.0, elapsed / ramp_s)
        # attenuation-creep
        return min(
            spec.magnitude_db, spec.rate_db_per_hour * elapsed / 3600.0
        )

    def _apply_flap(
        self, index: int, spec: DegradationSpec, elapsed: float
    ) -> None:
        a, b = spec.endpoints
        chain = self._controller.roadm_ems.chain(a, b)
        flap_on = math.floor(elapsed / spec.period_s) % 2 == 0
        if flap_on:
            chain.set_gain(chain.target_gain_db - spec.magnitude_db)
            penalty = max(
                0.0, spec.magnitude_db + self._plan.jitter(index, self._tick)
            )
            self._set_penalty(index, spec, penalty)
        else:
            chain.reset_gain()
            self._clear_penalty(index, spec)

    def _set_penalty(
        self, index: int, spec: DegradationSpec, penalty_db: float
    ) -> None:
        a, b = spec.endpoints
        dwdm = self._controller.inventory.plant.dwdm_link(a, b)
        dwdm.set_degradation(self._cause(index, spec), penalty_db)

    def _clear_penalty(self, index: int, spec: DegradationSpec) -> None:
        a, b = spec.endpoints
        dwdm = self._controller.inventory.plant.dwdm_link(a, b)
        dwdm.clear_degradation(self._cause(index, spec))

    def _finish(self, index: int, spec: DegradationSpec) -> None:
        self._clear_penalty(index, spec)
        if spec.mode == "amp-flap":
            a, b = spec.endpoints
            self._controller.roadm_ems.chain(a, b).reset_gain()
        self._done[index] = True
        self._controller.metrics.inc(f"slo.cleared.{spec.mode}")
