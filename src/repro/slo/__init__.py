"""SLA-aware autonomous operations: gray failures and remediation.

Hard faults (fiber cuts, element failures) trip restoration; *gray*
failures — OSNR drift, flapping amplifiers, creeping attenuation — erode
service quality without tripping anything.  This package closes the
detect → impact → remediate → monitor → restore loop over them:

* :mod:`repro.slo.inject` — :class:`DegradationInjector` replays a
  seeded :class:`~repro.faults.plan.DegradationPlan` against the
  optical impairment state (link OSNR penalties, amplifier gains);
* :mod:`repro.slo.monitor` — :class:`SlaMonitor` samples per-connection
  OSNR margins (plus global latency/error streams) against declarative
  :class:`SloPolicy` objects with multi-window burn-rate detection;
* :mod:`repro.slo.engine` — :class:`RemediationEngine`, the runbook
  executor: defer to a scheduled maintenance window, reroute via
  bridge-and-roll only when the alternate path has utilization headroom,
  escalate to DEGRADED with a typed
  :class:`~repro.api.SlaBreached` otherwise, and auto-revert when the
  SLA recovers;
* :mod:`repro.slo.bench` — the policy-on/off benchmark trial behind
  ``BENCH_slo.json`` and the ``sweep slo`` study.

Attach it all with ``net.enable_slo(plan, policies)``; an empty plan
with no policies schedules nothing, leaving the event stream
byte-identical to a network without the subsystem.
"""

from repro.slo.engine import RemediationEngine, RemediationRecord
from repro.slo.inject import DegradationInjector
from repro.slo.monitor import SlaMonitor, SloPolicy, default_policies

__all__ = [
    "DegradationInjector",
    "RemediationEngine",
    "RemediationRecord",
    "SlaMonitor",
    "SloPolicy",
    "default_policies",
]
