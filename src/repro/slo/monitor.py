"""Declarative SLO policies and the burn-rate SLA monitor.

An :class:`SloPolicy` states what "healthy" means for one metric; the
:class:`SlaMonitor` samples the metric streams on the sim clock and
fires breach/clear events using the multi-window burn-rate structure
from SRE alerting practice: a *short* window catches fast erosion, a
*long* window rejects blips, and a breach fires only when both exceed
their burn fractions.  Recovery requires a fully clean clear window.

Per-connection OSNR margins are sampled through the controller's
link-budget helpers; setup/restore latencies and error-burst counters
are watched as network-wide streams from the metrics registry.

Independent of any policy, the monitor accrues **SLA violation
minutes** — sim minutes a connection spends with its margin below the
violation threshold — which is the currency ``BENCH_slo.json`` compares
policy-on against policy-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.windows import WindowedSeries
from repro.sim.process import Process

#: Policy scopes: watched per connection, or network-wide.
POLICY_SCOPES = ("connection", "global")

#: Breach orientations: a sample breaches when it falls *below* the
#: threshold (margins) or rises *above* it (latencies, error bursts).
POLICY_ORIENTATIONS = ("below", "above")


@dataclass(frozen=True)
class SloPolicy:
    """One declarative service-level objective.

    Attributes:
        name: Policy name, carried on every alert and outcome.
        metric: ``osnr_margin_db`` (per-connection, via the controller's
            margin helpers) or any metrics-registry sample/counter name
            (network-wide, e.g. ``restoration.restore_s`` or
            ``resilient.faults.injected``).
        threshold: The healthy/breaching boundary for one sample.
        scope: ``connection`` or ``global``.
        orientation: ``below`` (breach when sample < threshold) or
            ``above`` (breach when sample > threshold).
        short_window_s / short_burn: Fast-reaction window and the
            breaching-sample fraction that trips it.
        long_window_s / long_burn: Sustained-erosion window and its
            fraction; both windows must trip for a breach to fire.
        clear_window_s: The SLA has recovered when this window contains
            no breaching samples at all.
    """

    name: str
    metric: str = "osnr_margin_db"
    threshold: float = 2.0
    scope: str = "connection"
    orientation: str = "below"
    short_window_s: float = 120.0
    short_burn: float = 0.5
    long_window_s: float = 600.0
    long_burn: float = 0.25
    clear_window_s: float = 300.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("policy name must not be empty")
        if self.scope not in POLICY_SCOPES:
            raise ConfigurationError(
                f"unknown scope {self.scope!r} (known: {', '.join(POLICY_SCOPES)})"
            )
        if self.orientation not in POLICY_ORIENTATIONS:
            raise ConfigurationError(
                f"unknown orientation {self.orientation!r} "
                f"(known: {', '.join(POLICY_ORIENTATIONS)})"
            )
        if self.short_window_s <= 0 or self.long_window_s <= 0:
            raise ConfigurationError("windows must be positive")
        if self.long_window_s < self.short_window_s:
            raise ConfigurationError(
                "long window must be at least the short window"
            )
        if not 0 < self.short_burn <= 1 or not 0 < self.long_burn <= 1:
            raise ConfigurationError("burn fractions must be in (0, 1]")
        if self.clear_window_s <= 0:
            raise ConfigurationError("clear window must be positive")

    def breaching(self, value: float) -> bool:
        """Whether one sample violates the objective."""
        if self.orientation == "below":
            return value < self.threshold
        return value > self.threshold

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON policy files (``griphon slo``)."""
        return {
            "name": self.name,
            "metric": self.metric,
            "threshold": self.threshold,
            "scope": self.scope,
            "orientation": self.orientation,
            "short_window_s": self.short_window_s,
            "short_burn": self.short_burn,
            "long_window_s": self.long_window_s,
            "long_burn": self.long_burn,
            "clear_window_s": self.clear_window_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SloPolicy":
        """Build a policy from its plain-dict form; unknown keys raise."""
        known = {
            "name", "metric", "threshold", "scope", "orientation",
            "short_window_s", "short_burn", "long_window_s", "long_burn",
            "clear_window_s",
        }
        extra = set(data) - known
        if extra:
            raise ConfigurationError(
                f"unknown SloPolicy keys: {', '.join(sorted(extra))}"
            )
        return cls(**data)


def default_policies() -> Tuple[SloPolicy, ...]:
    """The stock policy set: margin erosion plus global health alerts."""
    return (
        SloPolicy(name="osnr-margin"),
        SloPolicy(
            name="restore-latency",
            metric="restoration.restore_s",
            threshold=120.0,
            scope="global",
            orientation="above",
            short_window_s=600.0,
            long_window_s=1800.0,
            short_burn=0.5,
            long_burn=0.25,
            clear_window_s=600.0,
        ),
        SloPolicy(
            name="error-burst",
            metric="resilient.faults.injected",
            threshold=4.0,
            scope="global",
            orientation="above",
            short_window_s=300.0,
            long_window_s=900.0,
            short_burn=0.5,
            long_burn=0.34,
            clear_window_s=600.0,
        ),
    )


class SlaMonitor:
    """Samples SLO metrics on the sim clock and fires breach events.

    The monitor is a bounded process: it samples every
    ``sample_interval_s`` until ``stop_at`` and then ends, so attaching
    it never keeps the simulator alive forever.

    Event wiring (the remediation engine registers itself):

    * ``on_breach(connection_id, policy, value, now)`` — fired once per
      breach activation; ``connection_id`` is ``""`` for global scopes;
    * ``on_clear(connection_id, policy, value, now)`` — fired once when
      an active breach's clear window comes back fully healthy;
    * ``on_tick(now)`` — fired after every sampling pass.
    """

    def __init__(
        self,
        controller,
        policies: Sequence[SloPolicy] = (),
        sample_interval_s: float = 15.0,
        stop_at: float = 0.0,
        violation_threshold_db: float = 0.0,
        max_samples: int = 4096,
    ) -> None:
        if sample_interval_s <= 0:
            raise ConfigurationError(
                f"sample interval must be positive, got {sample_interval_s}"
            )
        if stop_at <= 0:
            raise ConfigurationError(
                f"stop_at must be a positive sim time, got {stop_at}"
            )
        self._controller = controller
        self._policies = tuple(policies)
        self._interval = sample_interval_s
        self._stop_at = stop_at
        self._violation_threshold_db = violation_threshold_db
        self._max_samples = max_samples
        #: conn id -> margin series (plus one "" series per global metric).
        self._series: Dict[Tuple[str, str], WindowedSeries] = {}
        #: (policy name, conn id) -> breach currently active.
        self._active: Dict[Tuple[str, str], bool] = {}
        #: Per-connection accrued seconds below the violation threshold.
        self.violation_seconds: Dict[str, float] = {}
        #: Cursor into each global metric's registry sample list.
        self._sample_cursor: Dict[str, int] = {}
        #: Last counter value per global counter metric.
        self._counter_last: Dict[str, float] = {}
        self.on_breach: List[Callable[[str, SloPolicy, float, float], None]] = []
        self.on_clear: List[Callable[[str, SloPolicy, float, float], None]] = []
        self.on_tick: List[Callable[[float], None]] = []
        self._process: Optional[Process] = None

    @property
    def policies(self) -> Tuple[SloPolicy, ...]:
        """The declarative objectives being watched."""
        return self._policies

    @property
    def violation_minutes(self) -> float:
        """Total SLA-violation minutes accrued across connections."""
        return sum(self.violation_seconds.values()) / 60.0

    def active_breaches(self) -> List[Tuple[str, str]]:
        """(policy name, connection id) pairs currently breaching."""
        return sorted(key for key, active in self._active.items() if active)

    def start(self) -> Process:
        """Begin sampling; returns the driving bounded process."""
        if self._process is not None:
            raise ConfigurationError("monitor already started")
        self._process = Process(
            self._controller.sim, self._run(), label="slo-monitor"
        )
        return self._process

    # -- internals ------------------------------------------------------------

    def _run(self):
        sim = self._controller.sim
        while sim.now < self._stop_at:
            self._sample(sim.now)
            yield min(self._interval, self._stop_at - sim.now)
        self._sample(sim.now)

    def _series_for(self, policy_metric: str, conn_id: str) -> WindowedSeries:
        key = (policy_metric, conn_id)
        if key not in self._series:
            self._series[key] = WindowedSeries(max_samples=self._max_samples)
        return self._series[key]

    def _sample(self, now: float) -> None:
        margins = self._sample_margins(now)
        self._sample_global_streams(now)
        self._evaluate(now, margins)
        for callback in self.on_tick:
            callback(now)

    def _sample_margins(self, now: float) -> Dict[str, float]:
        controller = self._controller
        margins: Dict[str, float] = {}
        for conn_id in sorted(controller.connections):
            margin = controller.connection_osnr_margin_db(conn_id)
            if margin is None:
                continue
            margins[conn_id] = margin
            self._series_for("osnr_margin_db", conn_id).record(now, margin)
            controller.metrics.observe("slo.osnr_margin_db", margin)
            if margin < self._violation_threshold_db:
                accrued = self.violation_seconds.get(conn_id, 0.0)
                self.violation_seconds[conn_id] = accrued + self._interval
                controller.metrics.inc(
                    "slo.violation_minutes", self._interval / 60.0
                )
        return margins

    def _sample_global_streams(self, now: float) -> None:
        metrics = self._controller.metrics
        for policy in self._policies:
            if policy.scope != "global":
                continue
            series = self._series_for(policy.metric, "")
            samples = metrics.samples(policy.metric)
            if samples:
                cursor = self._sample_cursor.get(policy.metric, 0)
                for value in samples[cursor:]:
                    series.record(now, value)
                self._sample_cursor[policy.metric] = len(samples)
            else:
                # Counter metric: watch the per-interval delta.
                current = metrics.counter(policy.metric)
                last = self._counter_last.get(policy.metric)
                if last is not None:
                    series.record(now, current - last)
                self._counter_last[policy.metric] = current

    def _evaluate(self, now: float, margins: Dict[str, float]) -> None:
        for policy in self._policies:
            if policy.scope == "connection":
                for conn_id in sorted(margins):
                    series = self._series_for(policy.metric, conn_id)
                    self._evaluate_one(
                        policy, conn_id, series, margins[conn_id], now
                    )
            else:
                series = self._series_for(policy.metric, "")
                if len(series):
                    value = series.latest()[1]
                    self._evaluate_one(policy, "", series, value, now)

    def _evaluate_one(
        self,
        policy: SloPolicy,
        conn_id: str,
        series: WindowedSeries,
        value: float,
        now: float,
    ) -> None:
        key = (policy.name, conn_id)
        active = self._active.get(key, False)
        if not active:
            short = series.fraction(
                now, policy.short_window_s, policy.breaching
            )
            long = series.fraction(now, policy.long_window_s, policy.breaching)
            if short >= policy.short_burn and long >= policy.long_burn:
                self._active[key] = True
                self._controller.metrics.inc("slo.breaches")
                for callback in self.on_breach:
                    callback(conn_id, policy, value, now)
        else:
            clear = series.fraction(
                now, policy.clear_window_s, policy.breaching
            )
            if clear == 0.0:
                self._active[key] = False
                self._controller.metrics.inc("slo.recoveries")
                for callback in self.on_clear:
                    callback(conn_id, policy, value, now)
