"""The runbook executor: policy-driven remediation of gray failures.

Closes the detect → impact → remediate → monitor → restore loop.  On a
breach from the :class:`~repro.slo.monitor.SlaMonitor` the engine:

1. **localizes impact** — the degraded links on the connection's
   current path (gray failures never trip the hard-fault localizer);
2. **defers** when the maintenance calendar already has a window
   covering an impacted link within the defer horizon — the scheduled
   migration will move the traffic anyway;
3. **reroutes** via bridge-and-roll around the impacted links, but only
   when *every* link of the alternate path would stay under the
   utilization gate (<80% by default) after taking the new channel;
4. **escalates** otherwise: the connection transitions to DEGRADED with
   a typed :class:`~repro.api.SlaBreached` outcome and a recorded
   degradation cause the GUI renders distinctly from hard faults;
5. **restores** — rerouted connections are rolled back to a fresh best
   path once the links they fled have recovered, and escalated
   connections de-escalate to UP when the SLA clears.

Every action appends a :class:`RemediationRecord`; with
``audit_each_action=True`` the invariant auditor runs after each one,
making the engine's whole lifecycle subject to the same oracle as the
chaos tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro import api
from repro.core.connection import ConnectionState
from repro.errors import GriphonError
from repro.faults.audit import AuditReport, audit_network
from repro.slo.monitor import SlaMonitor, SloPolicy


@dataclass(frozen=True)
class RemediationRecord:
    """One action the engine took, for the audit trail and the CLI."""

    at: float
    connection_id: str
    policy: str
    action: str
    detail: str = ""

    def __str__(self) -> str:
        who = self.connection_id or "<network>"
        return f"[{self.at:9.1f}s] {who} {self.action} ({self.policy}) {self.detail}"


class RemediationEngine:
    """Executes the remediation runbook against a controller."""

    def __init__(
        self,
        controller,
        monitor: SlaMonitor,
        maintenance=None,
        utilization_gate: float = 0.80,
        defer_horizon_s: float = 4 * 3600.0,
        audit_each_action: bool = False,
    ) -> None:
        self._controller = controller
        self._monitor = monitor
        self._maintenance = maintenance
        self._gate = utilization_gate
        self._defer_horizon_s = defer_horizon_s
        self._audit_each_action = audit_each_action
        #: conn id -> watch | deferred | rerouting | rerouted | escalated
        #: | reverting (absent means watch).
        self._phase: Dict[str, str] = {}
        #: conn id -> the degraded link keys it was remediated around.
        self._impacted: Dict[str, Tuple[Tuple[str, str], ...]] = {}
        self.records: List[RemediationRecord] = []
        self.breaches: List[api.SlaBreached] = []
        self.audit_failures: List[AuditReport] = []
        #: Worst post-claim utilization accepted across all reroutes —
        #: the benchmark asserts this stays under the gate.
        self.max_reroute_utilization: float = 0.0
        monitor.on_breach.append(self._on_breach)
        monitor.on_clear.append(self._on_clear)
        monitor.on_tick.append(self._on_tick)

    @property
    def audit_ok(self) -> bool:
        """True while every post-action audit came back clean."""
        return not self.audit_failures

    def phase_of(self, connection_id: str) -> str:
        """The engine's current phase for a connection."""
        return self._phase.get(connection_id, "watch")

    def impacted_link_keys(self) -> Set[Tuple[str, str]]:
        """Every link the engine is currently remediating around.

        The union of the degraded link keys behind all in-flight
        remediations (deferred, rerouting, rerouted, or escalated
        connections).  This is the SLO breach stream's input to the
        global re-optimization planner: these links carry an extra cost
        penalty, so a re-planning cycle steers demands off them instead
        of fighting the runbook engine for the same capacity.
        """
        links: Set[Tuple[str, str]] = set()
        for impacted in self._impacted.values():
            links.update(impacted)
        return links

    # -- detect ---------------------------------------------------------------

    def _on_breach(
        self, conn_id: str, policy: SloPolicy, value: float, now: float
    ) -> None:
        if not conn_id:
            # Network-wide objective (latency / error burst): surface the
            # alert; per-connection remediation does not apply.
            self._record(now, "", policy.name, "alert", f"value={value:.2f}")
            self._controller.metrics.inc("slo.alerts")
            return
        if self._phase.get(conn_id, "watch") != "watch":
            return
        connection = self._controller.connections.get(conn_id)
        if connection is None or connection.state is not ConnectionState.UP:
            return
        impacted = self._impacted_links(connection)
        if not impacted:
            # Thin margin with no localizable gray failure (e.g. a long
            # route near its design limit): alert, nothing to flee from.
            self._record(now, conn_id, policy.name, "alert", "no degraded link")
            self._controller.metrics.inc("slo.alerts")
            return
        cause = self._describe_cause(impacted)
        if self._try_defer(conn_id, policy, impacted, now):
            return
        if self._try_reroute(conn_id, policy, impacted, cause, now):
            return
        self._escalate(connection, policy, value, cause, now)

    # -- impact ---------------------------------------------------------------

    def _impacted_links(self, connection) -> Tuple[Tuple[str, str], ...]:
        plant = self._controller.inventory.plant
        impacted = []
        seen = set()
        for lightpath_id in connection.lightpath_ids:
            lightpath = self._controller.inventory.lightpaths.get(lightpath_id)
            if lightpath is None:
                continue
            for segment in lightpath.segments:
                for key in segment.links:
                    if key in seen:
                        continue
                    seen.add(key)
                    if plant.dwdm_link(*key).osnr_penalty_db > 0.0:
                        impacted.append(key)
        return tuple(sorted(impacted))

    def _describe_cause(
        self, impacted: Tuple[Tuple[str, str], ...]
    ) -> str:
        plant = self._controller.inventory.plant
        parts = []
        for a, b in impacted:
            causes = plant.dwdm_link(a, b).degradation_causes()
            label = ",".join(causes) if causes else "degraded"
            parts.append(f"{label}@{a}={b}")
        return ";".join(parts)

    # -- defer ----------------------------------------------------------------

    def _try_defer(
        self,
        conn_id: str,
        policy: SloPolicy,
        impacted: Tuple[Tuple[str, str], ...],
        now: float,
    ) -> bool:
        if self._maintenance is None:
            return False
        for a, b in impacted:
            window = self._maintenance.window_covering(
                a, b, now, horizon_s=self._defer_horizon_s
            )
            if window is not None:
                self._phase[conn_id] = "deferred"
                self._impacted[conn_id] = impacted
                self._controller.metrics.inc("slo.deferred")
                self._record(
                    now,
                    conn_id,
                    policy.name,
                    "deferred",
                    f"maintenance on {a}={b} at {window.started_at:.0f}s",
                )
                self._post_action_audit()
                return True
        return False

    # -- reroute --------------------------------------------------------------

    def _try_reroute(
        self,
        conn_id: str,
        policy: SloPolicy,
        impacted: Tuple[Tuple[str, str], ...],
        cause: str,
        now: float,
    ) -> bool:
        controller = self._controller
        connection = controller.connections[conn_id]
        if len(connection.lightpath_ids) != 1 or connection.circuit_ids:
            return False  # bridge-and-roll cannot move it; escalate
        old = controller.inventory.lightpaths[connection.lightpath_ids[0]]
        try:
            plan = controller.rwa.plan(
                old.source,
                old.destination,
                old.rate_bps,
                excluded_links=impacted,
                avoid_srlgs_of=old.path,
            )
        except GriphonError as exc:
            self._record(
                now, conn_id, policy.name, "no-path", str(exc)
            )
            return False
        worst = self._post_claim_utilization(plan.path)
        if worst >= self._gate:
            self._controller.metrics.inc("slo.no_headroom")
            self._record(
                now,
                conn_id,
                policy.name,
                "no-headroom",
                f"alternate path at {worst:.0%} >= {self._gate:.0%}",
            )
            return False
        try:
            controller.bridge_and_roll(
                conn_id,
                exclude_links=impacted,
                on_done=lambda summary, c=conn_id, p=policy.name: (
                    self._roll_done(c, p, summary)
                ),
            )
        except GriphonError as exc:
            self._record(now, conn_id, policy.name, "no-path", str(exc))
            return False
        self.max_reroute_utilization = max(
            self.max_reroute_utilization, worst
        )
        self._phase[conn_id] = "rerouting"
        self._impacted[conn_id] = impacted
        self._record(
            now,
            conn_id,
            policy.name,
            "rerouting",
            f"{cause}; alternate at {worst:.0%}",
        )
        return True

    def _post_claim_utilization(self, path: List[str]) -> float:
        """Worst per-link utilization along ``path`` after adding one
        more channel — the SNIPPETS reroute-gate quantity."""
        plant = self._controller.inventory.plant
        grid_size = plant.grid.size
        worst = 0.0
        for dwdm in plant.links_on_path(path):
            after = (len(dwdm.occupied_channels) + 1) / grid_size
            worst = max(worst, after)
        return worst

    def _roll_done(self, conn_id: str, policy_name: str, summary: dict) -> None:
        now = self._controller.sim.now
        if self._phase.get(conn_id) == "rerouting":
            self._phase[conn_id] = "rerouted"
            self._controller.metrics.inc("slo.rerouted")
            self._record(
                now,
                conn_id,
                policy_name,
                "rerouted",
                f"new path {'-'.join(summary.get('new_path', []))}",
            )
        elif self._phase.get(conn_id) == "reverting":
            self._phase.pop(conn_id, None)
            self._impacted.pop(conn_id, None)
            self._controller.metrics.inc("slo.reverted")
            self._record(now, conn_id, policy_name, "reverted", "")
        self._post_action_audit()

    # -- escalate -------------------------------------------------------------

    def _escalate(
        self,
        connection,
        policy: SloPolicy,
        value: float,
        cause: str,
        now: float,
    ) -> None:
        connection.transition(ConnectionState.DEGRADED)
        connection.degradation_cause = cause
        connection.degradation_margin_db = value
        connection.degradation_policy = policy.name
        breach = api.SlaBreached(
            connection_id=connection.connection_id,
            policy=policy.name,
            margin_db=value,
            cause=cause,
            trace_id=connection.trace_id,
        )
        self.breaches.append(breach)
        self._phase[connection.connection_id] = "escalated"
        self._impacted[connection.connection_id] = self._impacted_links(
            connection
        )
        self._controller.metrics.inc("slo.escalated")
        self._controller._notify(
            "sla-breached",
            {"connection": connection.connection_id, "policy": policy.name},
        )
        self._record(
            now,
            connection.connection_id,
            policy.name,
            "escalated",
            f"margin {value:.2f} dB; {cause}",
        )
        self._post_action_audit()

    # -- restore --------------------------------------------------------------

    def _on_clear(
        self, conn_id: str, policy: SloPolicy, value: float, now: float
    ) -> None:
        if not conn_id:
            self._record(now, "", policy.name, "alert-cleared", "")
            return
        phase = self._phase.get(conn_id)
        if phase == "escalated":
            connection = self._controller.connections.get(conn_id)
            if connection is None:
                return
            if connection.state is ConnectionState.DEGRADED:
                connection.transition(ConnectionState.UP)
            connection.degradation_cause = ""
            connection.degradation_margin_db = None
            connection.degradation_policy = ""
            self._phase.pop(conn_id, None)
            self._impacted.pop(conn_id, None)
            self._controller.metrics.inc("slo.restored")
            self._record(
                now, conn_id, policy.name, "restored",
                f"margin {value:.2f} dB",
            )
            self._post_action_audit()
        elif phase == "deferred":
            self._phase.pop(conn_id, None)
            self._impacted.pop(conn_id, None)
            self._record(now, conn_id, policy.name, "defer-cleared", "")

    def _on_tick(self, now: float) -> None:
        """Auto-revert: roll rerouted connections back once the links
        they fled have fully recovered."""
        for conn_id in sorted(self._phase):
            if self._phase[conn_id] != "rerouted":
                continue
            impacted = self._impacted.get(conn_id, ())
            plant = self._controller.inventory.plant
            if any(
                plant.dwdm_link(a, b).osnr_penalty_db > 0.0
                for a, b in impacted
            ):
                continue
            connection = self._controller.connections.get(conn_id)
            if connection is None or connection.state is not ConnectionState.UP:
                continue
            try:
                self._controller.bridge_and_roll(
                    conn_id,
                    on_done=lambda summary, c=conn_id: (
                        self._roll_done(c, "auto-revert", summary)
                    ),
                )
            except GriphonError as exc:
                # Leave the phase as rerouted; the next tick retries
                # deterministically until the horizon.
                self._record(now, conn_id, "auto-revert", "revert-blocked",
                             str(exc))
                continue
            self._phase[conn_id] = "reverting"
            self._record(now, conn_id, "auto-revert", "reverting", "")

    # -- oracle ---------------------------------------------------------------

    def _post_action_audit(self) -> None:
        if not self._audit_each_action:
            return
        report = audit_network(self._controller)
        if not report.ok:
            self.audit_failures.append(report)
            self._controller.metrics.inc("slo.audit.violations")

    def _record(
        self, at: float, conn_id: str, policy: str, action: str, detail: str
    ) -> None:
        self.records.append(
            RemediationRecord(at, conn_id, policy, action, detail)
        )
