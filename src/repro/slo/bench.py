"""The SLO benchmark: policy-on vs policy-off under gray failure.

One trial builds the 12-city backbone (with a +3 dBm launch-power OSNR
model so the long western routes have positive design margin), brings up
five inter-DC connections whose routes cross the default gray-failure
plan, and replays the plan with the remediation engine either armed
(``policy_on=True``) or watching silently (policies empty — violation
minutes still accrue, nothing remediates).

``BENCH_slo.json`` (see ``benchmarks/slo_report.py``) asserts the
acceptance bar: policy-on cuts SLA-violation minutes at least 3x, every
reroute landed on a path under the utilization gate, the invariant
auditor stayed clean after every action, and an empty-plan/no-policy
run leaves the network fingerprint identical to one that never attached
the subsystem at all.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional

from repro.facade import GriphonNetwork, build_griphon_backbone
from repro.faults.plan import DegradationPlan, DegradationSpec
from repro.optical.osnr import OsnrModel
from repro.slo.monitor import default_policies

#: Sim-seconds of degradation replay in the default trial.
DEFAULT_HORIZON_S = 7200.0


def default_degradation_plan() -> DegradationPlan:
    """The stock gray-failure scenario on the 12-city backbone.

    Three concurrent degradations exercising every mode: a fast OSNR
    drift on the Dallas-Atlanta trunk (the DC-CENTRAL <-> DC-SOUTH
    route), a flapping amplifier chain on the west-coast Seattle span
    (DC-WEST <-> DC-NORTHWEST), and a slow attenuation creep on the
    Miami spur.  Both loaded links have SRLG-disjoint alternates with
    headroom, so the armed engine can reroute around them.
    """
    plan = DegradationPlan()
    plan.add(DegradationSpec(
        link="ATL=DFW", mode="osnr-drift", start_s=600.0,
        duration_s=5400.0, magnitude_db=8.0, jitter_db=0.5,
    ))
    plan.add(DegradationSpec(
        link="LAX=SEA", mode="amp-flap", start_s=900.0,
        duration_s=4800.0, magnitude_db=6.0, period_s=600.0,
    ))
    plan.add(DegradationSpec(
        link="ATL=MIA", mode="attenuation-creep", start_s=0.0,
        duration_s=7200.0, magnitude_db=6.0, rate_db_per_hour=3.0,
    ))
    return plan


def build_slo_network(seed: int = 0) -> GriphonNetwork:
    """The benchmark network: backbone + headroom OSNR model."""
    return build_griphon_backbone(
        seed=seed,
        latency_cv=0.0,
        osnr_model=OsnrModel(launch_power_dbm=3.0),
    )


def bring_up_workload(net: GriphonNetwork) -> list:
    """Five 10G inter-DC connections crossing the degraded trunks."""
    service = net.service_for(
        "dc-operator", max_connections=64, max_total_rate_gbps=10000,
    )
    connections = []
    for _ in range(3):
        connections.append(
            service.request_connection("DC-CENTRAL", "DC-SOUTH", 10)
        )
    for _ in range(2):
        connections.append(
            service.request_connection("DC-WEST", "DC-NORTHWEST", 10)
        )
    net.run()
    return connections


def network_fingerprint(net: GriphonNetwork) -> str:
    """A structural digest of the network's end state.

    Covers every connection's state and id, every live lightpath's route
    and wavelength assignment, the sim clock, and the kernel's event
    sequence counter — so two runs fingerprint equal only when they
    scheduled the same number of events and converged on the same
    optical state.  This is the oracle behind the "an empty plan changes
    nothing" acceptance check.
    """
    controller = net.controller
    parts = [f"now={net.sim.now:.9f}", f"seq={net.sim._seq}"]
    for conn_id in sorted(controller.connections):
        conn = controller.connections[conn_id]
        parts.append(
            f"conn:{conn_id}:{conn.state.value}:"
            f"{','.join(conn.lightpath_ids)}:{','.join(conn.circuit_ids)}"
        )
    for lp_id in sorted(controller.inventory.lightpaths):
        lightpath = controller.inventory.lightpaths[lp_id]
        segments = ";".join(
            f"{'-'.join(seg.nodes)}@{seg.channel}"
            for seg in lightpath.segments
        )
        parts.append(f"lp:{lp_id}:{'-'.join(lightpath.path)}:{segments}")
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def run_slo_trial(
    seed: int = 0,
    policy_on: bool = True,
    plan: Optional[DegradationPlan] = None,
    horizon_s: float = DEFAULT_HORIZON_S,
    audit_each_action: bool = True,
    utilization_gate: float = 0.80,
) -> Dict[str, Any]:
    """One full detect → remediate → restore trial; returns a flat dict.

    With ``policy_on=False`` the same plan replays against the same
    workload but no policies are armed: the monitor still accrues
    SLA-violation minutes (the comparison currency), the engine never
    acts.
    """
    net = build_slo_network(seed)
    connections = bring_up_workload(net)
    plan = plan if plan is not None else default_degradation_plan()
    policies = default_policies() if policy_on else ()
    runtime = net.enable_slo(
        plan=plan,
        policies=policies,
        horizon_s=horizon_s + 900.0,
        audit_each_action=audit_each_action,
        utilization_gate=utilization_gate,
    )
    net.run()
    counters = net.metrics.state()["counters"]
    engine = runtime.engine
    actions = {}
    for record in engine.records:
        actions[record.action] = actions.get(record.action, 0) + 1
    return {
        "seed": seed,
        "policy_on": policy_on,
        "connections": len(connections),
        "violation_minutes": round(runtime.monitor.violation_minutes, 3),
        "breaches": counters.get("slo.breaches", 0.0),
        "recoveries": counters.get("slo.recoveries", 0.0),
        "rerouted": counters.get("slo.rerouted", 0.0),
        "reverted": counters.get("slo.reverted", 0.0),
        "escalated": counters.get("slo.escalated", 0.0),
        "deferred": counters.get("slo.deferred", 0.0),
        "restored": counters.get("slo.restored", 0.0),
        "audit_violations": len(engine.audit_failures),
        "audit_ok": engine.audit_ok,
        "max_reroute_utilization": round(engine.max_reroute_utilization, 4),
        "actions": actions,
        "active_breaches": len(runtime.monitor.active_breaches()),
        "fingerprint": network_fingerprint(net),
        "injector_finished": runtime.injector.finished,
        "sim_now": net.sim.now,
    }


def slo_trial(trial) -> "TrialResult":
    """Sweep-registry runner: one :func:`run_slo_trial` per spec.

    A thin adapter so ``griphon sweep`` can grid over seeds and the
    ``policy_on`` axis; imported lazily by the studies registry (see
    :data:`repro.sweep.studies.STUDIES`).
    """
    from repro.sweep.engine import TrialResult

    params = trial.params
    result = run_slo_trial(
        seed=trial.seed,
        policy_on=bool(params.get("policy_on", True)),
        horizon_s=float(params.get("horizon_s", DEFAULT_HORIZON_S)),
        audit_each_action=bool(params.get("audit_each_action", True)),
        utilization_gate=float(params.get("utilization_gate", 0.80)),
    )
    values = {
        key: value
        for key, value in result.items()
        if isinstance(value, (int, float, bool))
    }
    return TrialResult(values=values, samples={}, metrics={})
