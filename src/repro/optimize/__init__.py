"""Global re-optimization: snapshot, plan, migrate — without dropping traffic.

The paper's re-grooming story taken network-wide: instead of migrating
one connection at a time toward a shorter route (:mod:`repro.core.regrooming`),
this package freezes the whole network into an immutable re-planning
problem (:mod:`~repro.optimize.snapshot`), computes a global migration
plan with a pure-python repack heuristic (:mod:`~repro.optimize.planner`),
and executes it move by move via bridge-and-roll with saga rollback
(:mod:`~repro.optimize.executor`).  :mod:`~repro.optimize.runtime` ties
the layers into an operational cycle, with the SLO breach stream feeding
the planner's link costs; :mod:`~repro.optimize.bench` is the
``BENCH_optimize.json`` trial.
"""

from repro.optimize.executor import (
    MigrationExecutor,
    MigrationReport,
    MoveResult,
)
from repro.optimize.planner import (
    MigrationMove,
    MigrationPlan,
    plan_migrations,
    slo_link_penalties,
)
from repro.optimize.runtime import Reoptimizer
from repro.optimize.snapshot import Demand, NetworkSnapshot

__all__ = [
    "Demand",
    "MigrationExecutor",
    "MigrationMove",
    "MigrationPlan",
    "MigrationReport",
    "MoveResult",
    "NetworkSnapshot",
    "Reoptimizer",
    "plan_migrations",
    "slo_link_penalties",
]
