"""The re-optimization control loop: snapshot -> plan -> execute.

One :class:`Reoptimizer` per network ties the layers together and adds
the operational glue: SLO-aware link penalties (the PR 9 breach stream
feeding the planner's objective), metrics, and an optional periodic
schedule on the simulator — the "nightly re-groom" a real operator runs
when the backbone is quiet.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.optimize.executor import MigrationExecutor, MigrationReport
from repro.optimize.planner import (
    MigrationPlan,
    plan_migrations,
    slo_link_penalties,
)
from repro.optimize.snapshot import NetworkSnapshot


class Reoptimizer:
    """Global re-optimization driver for one controller.

    Args:
        controller: The network's :class:`GriphonController`.
        slo_engine: Optional SLO remediation engine; when present, links
            it is actively remediating around (and gray-degraded links)
            are cost-penalized so the planner migrates traffic away.
        k_paths / max_passes / min_gain / channel_weight / max_moves:
            Planner knobs, see :func:`plan_migrations`.
        holder: Migration-lock holder tag for executed moves.
        audit_each_move: Run the invariant auditor after every move.
    """

    def __init__(
        self,
        controller,
        slo_engine=None,
        k_paths: int = 4,
        max_passes: int = 4,
        min_gain: float = 1e-6,
        channel_weight: float = 0.005,
        max_moves: Optional[int] = None,
        holder: str = "optimize",
        audit_each_move: bool = True,
    ) -> None:
        self._controller = controller
        self._slo_engine = slo_engine
        self._k_paths = k_paths
        self._max_passes = max_passes
        self._min_gain = min_gain
        self._channel_weight = channel_weight
        self._max_moves = max_moves
        self._executor = MigrationExecutor(
            controller, holder=holder, audit_each_move=audit_each_move
        )
        self._cycles = 0
        self._stopped = False

    # -- one-shot layers ---------------------------------------------------

    def snapshot(self) -> NetworkSnapshot:
        """Freeze the network now, with SLO penalties folded in."""
        penalties = slo_link_penalties(
            self._controller, engine=self._slo_engine
        )
        return NetworkSnapshot.from_controller(
            self._controller, link_penalties=penalties
        )

    def plan(
        self, snapshot: Optional[NetworkSnapshot] = None
    ) -> MigrationPlan:
        """Plan migrations for ``snapshot`` (taken now when omitted)."""
        if snapshot is None:
            snapshot = self.snapshot()
        return plan_migrations(
            snapshot,
            k_paths=self._k_paths,
            max_passes=self._max_passes,
            min_gain=self._min_gain,
            channel_weight=self._channel_weight,
            max_moves=self._max_moves,
        )

    def execute(
        self,
        plan: MigrationPlan,
        on_done: Optional[Callable[[MigrationReport], None]] = None,
    ) -> MigrationReport:
        """Execute a plan; see :meth:`MigrationExecutor.execute`."""
        return self._executor.execute(plan, on_done=on_done)

    # -- the cycle ---------------------------------------------------------

    def run_cycle(
        self,
        on_done: Optional[
            Callable[[MigrationPlan, MigrationReport], None]
        ] = None,
    ) -> MigrationPlan:
        """Snapshot, plan, and start executing one full cycle.

        Returns the plan immediately; execution drains on the simulator.
        Cycle results land in the metrics registry as counters and
        gauges (``optimize.wavelengths.before/after/reclaimed``).
        """
        metrics = getattr(self._controller, "metrics", None)
        plan = self.plan()
        self._cycles += 1
        if metrics is not None:
            metrics.inc("optimize.cycles")
            metrics.inc("optimize.moves.planned", len(plan.moves))
            metrics.set_gauge(
                "optimize.wavelengths.before", plan.wavelengths_before
            )
            metrics.set_gauge(
                "optimize.wavelengths.after", plan.wavelengths_after
            )
            metrics.set_gauge(
                "optimize.wavelengths.reclaimed",
                plan.wavelengths_before - plan.wavelengths_after,
            )

        def done(report: MigrationReport) -> None:
            if on_done is not None:
                on_done(plan, report)

        if plan.moves:
            self.execute(plan, on_done=done)
        elif on_done is not None:
            on_done(plan, MigrationReport())
        return plan

    # -- periodic operation ------------------------------------------------

    def start(self, interval_s: float) -> None:
        """Run a cycle every ``interval_s`` sim-seconds until stopped."""
        self._stopped = False

        def tick() -> None:
            if self._stopped:
                return
            self.run_cycle()
            self._controller.sim.schedule(
                interval_s, tick, label="reoptimize.cycle"
            )

        self._controller.sim.schedule(
            interval_s, tick, label="reoptimize.cycle"
        )

    def stop(self) -> None:
        """Cancel periodic cycles (takes effect at the next tick)."""
        self._stopped = True

    # -- introspection -----------------------------------------------------

    @property
    def cycles(self) -> int:
        """Cycles run so far."""
        return self._cycles

    def describe(self) -> Dict[str, object]:
        """Config + progress summary for the CLI."""
        return {
            "cycles": self._cycles,
            "k_paths": self._k_paths,
            "max_passes": self._max_passes,
            "channel_weight": self._channel_weight,
            "slo_coupled": self._slo_engine is not None,
            "holder": self._executor.holder,
        }
