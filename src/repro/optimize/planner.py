"""The global re-optimization planner: snapshot in, migration plan out.

Pure python, pure function — no solver dependency, no controller access.
The heuristic is an iterative greedy repack (a descent on the assignment
problem's objective rather than an exact min-cost flow):

1. Demands are visited in deterministic id order.  For each, candidate
   routes come from Yen's k-shortest paths under the snapshot's per-link
   costs (hops + SLO penalties), and each candidate gets the lowest free
   wavelength per regen-free segment from the *working* occupancy state.
2. The working state charges a move's **bridge window**: the old slots
   stay occupied until the move is recorded, because bridge-and-roll
   lights the new path before releasing the old one.  Whatever channel
   the planner picks is therefore guaranteed disjoint from everything
   lit at execution time — including the demand's own current channels.
3. A move is accepted only if it beats the demand's current cost by
   ``min_gain``.  Accepted moves update the working state (occupy new,
   release old, adjust transponder/regen headroom), so later demands
   — and later passes — see the freed slots.
4. Passes repeat until a pass produces no move (or ``max_passes``).

Cost of a route = sum of link costs + ``channel_weight`` * channel index
summed over segments.  ``channel_weight`` defaults to 0.005: with an
80-channel grid the worst packing bonus is 0.395 per segment, always
less than one hop, so channel packing is a tiebreak — the planner will
never take a longer route just to use a lower wavelength.

Dependency rule: move *k* depends on move *j* (j earlier in plan order)
iff a slot move *k* lights is a slot move *j* releases.  The executor
runs moves sequentially in plan order, which trivially honors this; the
``depends_on`` edges let tests (and any future parallel executor) check
the ordering is *necessary*, not just sufficient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import GriphonError
from repro.optimize.snapshot import Demand, LinkKey, NetworkSnapshot


@dataclass(frozen=True)
class MigrationMove:
    """One planned bridge-and-roll: a connection's new route + channels.

    Attributes:
        index: Position in the plan (execution order).
        connection_id: The connection to roll.
        rate_bps: Its line rate.
        old_path / old_channels: Assignment at snapshot time (the
            executor stale-checks against this before rolling).
        new_path / new_channels: Target assignment.
        cost_before / cost_after: Objective contribution either side.
        depends_on: Indices of earlier moves whose released slots this
            move lights (must complete first).
    """

    index: int
    connection_id: str
    rate_bps: float
    old_path: Tuple[str, ...]
    old_channels: Tuple[int, ...]
    new_path: Tuple[str, ...]
    new_channels: Tuple[int, ...]
    cost_before: float
    cost_after: float
    depends_on: Tuple[int, ...] = ()

    @property
    def gain(self) -> float:
        """Objective improvement this move buys."""
        return self.cost_before - self.cost_after

    @property
    def rewavelength_only(self) -> bool:
        """True when the route is unchanged and only channels move."""
        return self.old_path == self.new_path

    def to_dict(self) -> Dict:
        """JSON-serializable form (golden files, CLI output)."""
        return {
            "index": self.index,
            "connection_id": self.connection_id,
            "rate_bps": self.rate_bps,
            "old_path": list(self.old_path),
            "old_channels": list(self.old_channels),
            "new_path": list(self.new_path),
            "new_channels": list(self.new_channels),
            "cost_before": round(self.cost_before, 6),
            "cost_after": round(self.cost_after, 6),
            "depends_on": list(self.depends_on),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MigrationMove":
        """Inverse of :meth:`to_dict`."""
        return cls(
            index=data["index"],
            connection_id=data["connection_id"],
            rate_bps=data["rate_bps"],
            old_path=tuple(data["old_path"]),
            old_channels=tuple(data["old_channels"]),
            new_path=tuple(data["new_path"]),
            new_channels=tuple(data["new_channels"]),
            cost_before=data["cost_before"],
            cost_after=data["cost_after"],
            depends_on=tuple(data["depends_on"]),
        )


@dataclass
class MigrationPlan:
    """An ordered list of moves plus the objective book-keeping."""

    moves: List[MigrationMove] = field(default_factory=list)
    objective_before: float = 0.0
    objective_after: float = 0.0
    wavelengths_before: int = 0
    wavelengths_after: int = 0
    passes: int = 0
    frozen_demands: List[str] = field(default_factory=list)

    @property
    def gain(self) -> float:
        """Total objective improvement of the plan."""
        return self.objective_before - self.objective_after

    def to_dict(self) -> Dict:
        """JSON-serializable form (golden files, CLI output)."""
        return {
            "moves": [move.to_dict() for move in self.moves],
            "objective_before": round(self.objective_before, 6),
            "objective_after": round(self.objective_after, 6),
            "wavelengths_before": self.wavelengths_before,
            "wavelengths_after": self.wavelengths_after,
            "passes": self.passes,
            "frozen_demands": list(self.frozen_demands),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MigrationPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            moves=[MigrationMove.from_dict(m) for m in data["moves"]],
            objective_before=data["objective_before"],
            objective_after=data["objective_after"],
            wavelengths_before=data["wavelengths_before"],
            wavelengths_after=data["wavelengths_after"],
            passes=data["passes"],
            frozen_demands=list(data.get("frozen_demands", [])),
        )


class _WorkingState:
    """The planner's evolving view of occupancy and equipment headroom."""

    def __init__(self, snapshot: NetworkSnapshot) -> None:
        self.snapshot = snapshot
        self.occupied: Dict[LinkKey, int] = dict(snapshot.occupied)
        self.transponders: Dict[Tuple[str, float], int] = dict(
            snapshot.free_transponders
        )
        self.regens: Dict[Tuple[str, float], int] = dict(snapshot.free_regens)
        #: Current assignment per demand id: (path, channels, segments, regens).
        self.assignment: Dict[str, Demand] = {
            d.connection_id: d for d in snapshot.demands
        }

    def free_channel(
        self, segment_nodes: Sequence[str], floor: int = 0
    ) -> Optional[int]:
        """Lowest channel >= ``floor`` free on every link of a segment."""
        mask = 0
        for u, v in zip(segment_nodes, segment_nodes[1:]):
            key = (u, v) if u <= v else (v, u)
            mask |= self.occupied.get(key, 0)
        for channel in range(floor, self.snapshot.grid_size):
            if not mask & (1 << channel):
                return channel
        return None

    def occupy(self, slots: Sequence[Tuple[LinkKey, int]]) -> None:
        for key, channel in slots:
            self.occupied[key] = self.occupied.get(key, 0) | (1 << channel)

    def release(self, slots: Sequence[Tuple[LinkKey, int]]) -> None:
        for key, channel in slots:
            self.occupied[key] = self.occupied.get(key, 0) & ~(1 << channel)


def _route_cost(
    snapshot: NetworkSnapshot,
    path: Sequence[str],
    channels: Sequence[int],
    channel_weight: float,
) -> float:
    """Objective contribution of one assignment."""
    cost = 0.0
    for u, v in zip(path, path[1:]):
        key = (u, v) if u <= v else (v, u)
        cost += snapshot.link_costs.get(key, 1.0)
    cost += channel_weight * sum(channels)
    return cost


def _slots_of(
    segments: Sequence[Sequence[str]], channels: Sequence[int]
) -> List[Tuple[LinkKey, int]]:
    slots = []
    for nodes, channel in zip(segments, channels):
        for u, v in zip(nodes, nodes[1:]):
            key = (u, v) if u <= v else (v, u)
            slots.append((key, channel))
    return slots


def plan_migrations(
    snapshot: NetworkSnapshot,
    k_paths: int = 4,
    max_passes: int = 4,
    min_gain: float = 1e-6,
    channel_weight: float = 0.005,
    max_moves: Optional[int] = None,
) -> MigrationPlan:
    """Compute a :class:`MigrationPlan` for a frozen network snapshot.

    Deterministic: same snapshot, same parameters, same plan — demands
    are visited in natural id order, routes come from Yen's algorithm
    (itself deterministic), and channel selection is first-fit.

    Args:
        snapshot: The frozen re-planning problem.
        k_paths: Candidate routes per demand per pass.
        max_passes: Upper bound on repack passes; the loop also stops as
            soon as a pass yields no move.
        min_gain: Minimum objective improvement to accept a move.
        channel_weight: Cost per channel index (keep << 1/grid_size so
            packing never beats a shorter route).
        max_moves: Optional hard cap on plan length.
    """
    state = _WorkingState(snapshot)
    failed = set(snapshot.failed_links)
    weight_fn = lambda link: snapshot.link_costs.get(link.key, 1.0)  # noqa: E731

    objective_before = sum(
        _route_cost(snapshot, d.path, d.channels, channel_weight)
        for d in snapshot.demands
    )
    wavelengths_before = snapshot.wavelengths_used()

    moves: List[MigrationMove] = []
    #: Released slots per recorded move index, for depends_on edges.
    released_by_move: List[Set[Tuple[LinkKey, int]]] = []
    frozen: List[str] = []
    passes = 0

    for _ in range(max_passes):
        passes += 1
        moved_this_pass = False
        for demand in snapshot.demands:
            if max_moves is not None and len(moves) >= max_moves:
                break
            current = state.assignment[demand.connection_id]
            current_cost = _route_cost(
                snapshot, current.path, current.channels, channel_weight
            )
            # A bridge transiently needs one extra transponder per end.
            ends = (demand.source, demand.destination)
            if any(
                state.transponders.get((end, demand.rate_bps), 0) < 1
                for end in ends
            ):
                if demand.connection_id not in frozen:
                    frozen.append(demand.connection_id)
                continue
            try:
                routes = snapshot.graph.k_shortest_paths(
                    demand.source,
                    demand.destination,
                    k_paths,
                    weight=weight_fn,
                    excluded_links=failed,
                )
            except GriphonError:
                continue
            best: Optional[Tuple[float, Tuple, Tuple, Tuple, Tuple]] = None
            for route in routes:
                path = tuple(route)
                try:
                    segments, regen_sites = snapshot.segment_route(
                        path, demand.rate_bps
                    )
                except GriphonError:
                    continue  # route exceeds optical reach at this rate
                # Regen headroom at any *new* site (current sites keep
                # their regens through the roll; the bridge needs its own).
                if any(
                    state.regens.get((site, demand.rate_bps), 0) < 1
                    for site in regen_sites
                ):
                    continue
                channels = []
                for nodes in segments:
                    channel = state.free_channel(nodes)
                    if channel is None:
                        break
                    channels.append(channel)
                if len(channels) != len(segments):
                    continue
                cost = _route_cost(snapshot, path, channels, channel_weight)
                if best is None or cost < best[0]:
                    best = (cost, path, tuple(channels), segments, regen_sites)
            if best is None:
                continue
            cost_after, path, channels, segments, regen_sites = best
            if cost_after >= current_cost - min_gain:
                continue
            new_slots = _slots_of(segments, channels)
            old_slots = current.slots
            depends = tuple(
                sorted(
                    j
                    for j, released in enumerate(released_by_move)
                    if released & set(new_slots)
                )
            )
            moves.append(
                MigrationMove(
                    index=len(moves),
                    connection_id=demand.connection_id,
                    rate_bps=demand.rate_bps,
                    old_path=current.path,
                    old_channels=current.channels,
                    new_path=path,
                    new_channels=channels,
                    cost_before=current_cost,
                    cost_after=cost_after,
                    depends_on=depends,
                )
            )
            released_by_move.append(set(old_slots) - set(new_slots))
            # Advance the working state past the completed roll.
            state.occupy(new_slots)
            state.release(old_slots)
            for site in regen_sites:
                key = (site, demand.rate_bps)
                state.regens[key] = state.regens.get(key, 0) - 1
            for site in current.regen_sites:
                key = (site, demand.rate_bps)
                state.regens[key] = state.regens.get(key, 0) + 1
            state.assignment[demand.connection_id] = Demand(
                connection_id=demand.connection_id,
                source=demand.source,
                destination=demand.destination,
                rate_bps=demand.rate_bps,
                path=path,
                channels=channels,
                segment_nodes=segments,
                regen_sites=regen_sites,
            )
            moved_this_pass = True
        if not moved_this_pass:
            break
        if max_moves is not None and len(moves) >= max_moves:
            break

    objective_after = sum(
        _route_cost(snapshot, d.path, d.channels, channel_weight)
        for d in state.assignment.values()
    )
    return MigrationPlan(
        moves=moves,
        objective_before=objective_before,
        objective_after=objective_after,
        wavelengths_before=wavelengths_before,
        wavelengths_after=snapshot.wavelengths_used(state.occupied),
        passes=passes,
        frozen_demands=frozen,
    )


def slo_link_penalties(
    controller,
    engine=None,
    penalty_per_db: float = 1.0,
    breach_penalty: float = 4.0,
) -> Dict[LinkKey, float]:
    """Per-link cost penalties from the SLO breach stream.

    Closes the PR 9 follow-up: remediation and global re-grooming now
    share one objective.  Gray-degraded links are penalized in
    proportion to their OSNR penalty; links the SLO engine is actively
    remediating around get a flat ``breach_penalty`` on top, so the
    planner steers migrations — and frees capacity — away from them.

    Args:
        controller: The :class:`~repro.core.controller.GriphonController`.
        engine: Optional :class:`~repro.slo.engine.SloRemediationEngine`;
            its :meth:`impacted_link_keys` feed the breach penalties.
        penalty_per_db: Cost per dB of OSNR penalty on a degraded link.
        breach_penalty: Flat extra cost on links under active remediation.
    """
    plant = controller.inventory.plant
    penalties: Dict[LinkKey, float] = {}
    for key in plant.degraded_links():
        penalties[key] = penalty_per_db * plant.dwdm_link(*key).osnr_penalty_db
    if engine is not None:
        for key in engine.impacted_link_keys():
            penalties[key] = penalties.get(key, 0.0) + breach_penalty
    return penalties
