"""Freezing the live network into an immutable re-planning problem.

The planner never touches the controller: a :class:`NetworkSnapshot`
captures everything the assignment heuristic needs at one instant —

* **demands**: every migratable live connection (UP, single lightpath,
  no sub-wavelength circuits, not locked by another migration driver),
  with its current route and per-segment wavelength assignment;
* **capacities**: the occupied-channel bitmask per link, plus the free
  transponder / regenerator headroom per (node, rate) — a bridge-and-
  roll move transiently holds *both* the old and the new resources;
* **costs**: per-link base costs (1 hop + any caller-supplied penalty,
  e.g. the SLO breach stream's degraded-link penalties).

The snapshot is taken synchronously — no simulation events run between
capture and planning — so keeping references to the (immutable-for-now)
graph and reach model is safe, while the occupancy masks and headroom
counts are *copied* so the planner's working state cannot leak back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.connection import ConnectionState

#: Link key type: canonical ``(u, v)`` with ``u <= v``.
LinkKey = Tuple[str, str]


@dataclass(frozen=True)
class Demand:
    """One live connection as the re-planning problem sees it.

    Attributes:
        connection_id: The connection this demand re-plans.
        source: Source ROADM of its lightpath.
        destination: Destination ROADM of its lightpath.
        rate_bps: Line rate of the wavelength.
        path: Current node route.
        channels: Current wavelength per regen-free segment, path order.
        segment_nodes: Node tuple per regen-free segment, path order.
        regen_sites: Nodes currently hosting a regen for this lightpath.
    """

    connection_id: str
    source: str
    destination: str
    rate_bps: float
    path: Tuple[str, ...]
    channels: Tuple[int, ...]
    segment_nodes: Tuple[Tuple[str, ...], ...]
    regen_sites: Tuple[str, ...]

    @property
    def slots(self) -> List[Tuple[LinkKey, int]]:
        """Every (link, channel) slot the demand currently occupies."""
        occupied = []
        for nodes, channel in zip(self.segment_nodes, self.channels):
            for u, v in zip(nodes, nodes[1:]):
                key = (u, v) if u <= v else (v, u)
                occupied.append((key, channel))
        return occupied


class NetworkSnapshot:
    """The frozen re-planning problem: demands, capacities, costs."""

    def __init__(
        self,
        graph,
        reach,
        grid_size: int,
        demands: Tuple[Demand, ...],
        occupied: Dict[LinkKey, int],
        link_costs: Dict[LinkKey, float],
        failed_links: Tuple[LinkKey, ...],
        free_transponders: Dict[Tuple[str, float], int],
        free_regens: Dict[Tuple[str, float], int],
        taken_at: float,
    ) -> None:
        self.graph = graph
        self.reach = reach
        self.grid_size = grid_size
        self.demands = demands
        self.occupied = occupied
        self.link_costs = link_costs
        self.failed_links = failed_links
        self.free_transponders = free_transponders
        self.free_regens = free_regens
        self.taken_at = taken_at

    @classmethod
    def from_controller(
        cls,
        controller,
        link_penalties: Optional[Dict[LinkKey, float]] = None,
    ) -> "NetworkSnapshot":
        """Capture the controller's live state as a re-planning problem.

        Args:
            controller: The :class:`~repro.core.controller.GriphonController`.
            link_penalties: Extra per-link cost (on top of the 1.0 hop
                cost), keyed by canonical link key — the hook the SLO
                breach stream feeds (see
                :func:`~repro.optimize.planner.slo_link_penalties`).
        """
        inventory = controller.inventory
        graph = inventory.graph
        penalties = link_penalties or {}
        demands: List[Demand] = []
        rates_in_use = set()
        for conn_id in sorted(
            controller.connections, key=_connection_sort_key
        ):
            connection = controller.connections[conn_id]
            if connection.state is not ConnectionState.UP:
                continue
            if len(connection.lightpath_ids) != 1 or connection.circuit_ids:
                continue  # bridge-and-roll can't migrate these (yet)
            if controller.migration_lock_holder(conn_id) is not None:
                continue  # already mid-migration under another driver
            lightpath = inventory.lightpaths.get(connection.lightpath_ids[0])
            if lightpath is None:
                continue
            demands.append(
                Demand(
                    connection_id=conn_id,
                    source=lightpath.source,
                    destination=lightpath.destination,
                    rate_bps=lightpath.rate_bps,
                    path=tuple(lightpath.path),
                    channels=tuple(
                        seg.channel for seg in lightpath.segments
                    ),
                    segment_nodes=tuple(
                        tuple(seg.nodes) for seg in lightpath.segments
                    ),
                    regen_sites=tuple(lightpath.regen_sites),
                )
            )
            rates_in_use.add(lightpath.rate_bps)
        link_costs = {
            link.key: 1.0 + penalties.get(link.key, 0.0)
            for link in graph.links
        }
        free_transponders = {
            (node, rate): len(pool.free(rate))
            for node, pool in inventory.transponders.items()
            for rate in rates_in_use
        }
        free_regens = {
            (node, rate): len(pool.free(rate))
            for node, pool in inventory.regens.items()
            for rate in rates_in_use
        }
        return cls(
            graph=graph,
            reach=controller.rwa.reach_model,
            grid_size=inventory.grid.size,
            demands=tuple(demands),
            occupied=dict(inventory.plant.occupancy_snapshot()),
            link_costs=link_costs,
            failed_links=tuple(sorted(inventory.plant.failed_links())),
            free_transponders=free_transponders,
            free_regens=free_regens,
            taken_at=controller.sim.now,
        )

    # -- derived views ------------------------------------------------------

    def segment_route(
        self, path: Tuple[str, ...], rate_bps: float
    ) -> Tuple[Tuple[Tuple[str, ...], ...], Tuple[str, ...]]:
        """Split a route at regen sites, exactly like the RWA engine.

        Returns ``(segment node tuples, regen sites)``.  May raise
        :class:`~repro.errors.SignalError` when a single link exceeds
        the optical reach at this rate (the route is then unusable).
        """
        regen_sites = tuple(
            self.reach.regen_sites(self.graph, list(path), rate_bps)
        )
        boundaries = [path[0]] + list(regen_sites) + [path[-1]]
        position = {node: index for index, node in enumerate(path)}
        indices = [position[b] for b in boundaries]
        segments = tuple(
            tuple(path[start : end + 1])
            for start, end in zip(indices, indices[1:])
        )
        return segments, regen_sites

    def wavelengths_used(
        self, occupied: Optional[Dict[LinkKey, int]] = None
    ) -> int:
        """Distinct channels lit anywhere in the network.

        The defragmentation currency: first-fit packing drives this down,
        scattered assignments drive it up.  Pass an alternative occupancy
        map to evaluate a planner working state.
        """
        masks = self.occupied if occupied is None else occupied
        union = 0
        for mask in masks.values():
            union |= mask
        return bin(union).count("1")

    def describe(self) -> Dict[str, float]:
        """Summary numbers for logs and the CLI."""
        total_slots = sum(
            bin(mask).count("1") for mask in self.occupied.values()
        )
        return {
            "demands": len(self.demands),
            "links": len(self.link_costs),
            "occupied_slots": total_slots,
            "wavelengths_used": self.wavelengths_used(),
            "failed_links": len(self.failed_links),
        }


def _connection_sort_key(conn_id: str) -> Tuple:
    """Natural sort for ``conn-<n>`` ids (conn-2 before conn-10)."""
    prefix, _, suffix = conn_id.rpartition("-")
    if suffix.isdigit():
        return (prefix, int(suffix))
    return (conn_id, -1)
