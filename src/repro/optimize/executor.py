"""Executing a migration plan without ever dropping traffic.

The executor is a callback-driven sequential state machine riding the
simulator: each move is a bridge-and-roll (new path lit before old path
released), so a connection is never dark — the worst a move costs is
the ~50 ms roll hit.  Running moves one at a time in plan order
trivially honors the plan's wavelength-availability dependencies: a
move that lights slots an earlier move releases always runs after it.

Safety layers, in order of engagement:

* **Stale check** — before each move the connection's live assignment
  must still equal ``move.old_*``; anything else (re-groomed, repaired,
  torn down since the snapshot) skips the move as ``stale``.
* **Migration lock** — every roll holds the per-connection migration
  lock under this run's holder tag, so the re-grooming engine cannot
  race the executor on the same connection.
* **Audit** — after every completed move the invariant auditor sweeps
  the whole network; violations stop the run (and trigger rollback when
  enabled), because continuing to migrate on top of corrupted state
  only spreads the corruption.
* **Saga rollback** — a failed move (synchronous planning error or an
  aborted roll) unwinds every *completed* move in reverse order, each
  unwind itself a bridge-and-roll back to ``move.old_*``.  Reverse
  order guarantees slot availability: undoing move *k* frees exactly
  the slots move *k-1*'s undo may need.  A roll abort keeps the old
  path carrying traffic, so even mid-rollback nothing drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.connection import ConnectionState
from repro.errors import GriphonError
from repro.faults.audit import audit_network
from repro.optimize.planner import MigrationMove, MigrationPlan


@dataclass
class MoveResult:
    """Outcome of one move (or its rollback).

    ``outcome`` is one of ``completed``, ``stale``, ``failed``,
    ``rolled-back``, ``rollback-failed``, ``skipped``.
    """

    move: MigrationMove
    outcome: str
    detail: str = ""


@dataclass
class MigrationReport:
    """What happened when a plan executed."""

    results: List[MoveResult] = field(default_factory=list)
    completed: int = 0
    stale: int = 0
    failed: int = 0
    rolled_back: int = 0
    audit_failures: List[str] = field(default_factory=list)
    dropped_connections: List[str] = field(default_factory=list)
    rollback_triggered: bool = False

    @property
    def clean(self) -> bool:
        """True when every move landed with no audits tripped."""
        return (
            not self.rollback_triggered
            and not self.audit_failures
            and not self.dropped_connections
            and self.failed == 0
        )

    def to_dict(self) -> Dict:
        """JSON-serializable summary."""
        return {
            "completed": self.completed,
            "stale": self.stale,
            "failed": self.failed,
            "rolled_back": self.rolled_back,
            "rollback_triggered": self.rollback_triggered,
            "audit_failures": list(self.audit_failures),
            "dropped_connections": list(self.dropped_connections),
            "outcomes": [
                {
                    "connection_id": r.move.connection_id,
                    "outcome": r.outcome,
                    "detail": r.detail,
                }
                for r in self.results
            ],
        }


class MigrationExecutor:
    """Runs a :class:`MigrationPlan` move by move on the live network."""

    def __init__(
        self,
        controller,
        holder: str = "optimize",
        audit_each_move: bool = True,
        rollback_on_failure: bool = True,
    ) -> None:
        self._controller = controller
        self._holder = holder
        self._audit_each_move = audit_each_move
        self._rollback_on_failure = rollback_on_failure

    # -- public API --------------------------------------------------------

    def execute(
        self,
        plan: MigrationPlan,
        on_done: Optional[Callable[[MigrationReport], None]] = None,
    ) -> MigrationReport:
        """Start executing ``plan``; returns the (live) report.

        Moves run as simulator processes — call ``sim.run()`` afterwards
        to drain them.  The report object returned is filled in as moves
        settle; ``on_done`` fires once when the run (including any
        rollback) finishes.
        """
        report = MigrationReport()
        run = _ExecutionRun(
            controller=self._controller,
            holder=self._holder,
            plan=plan,
            report=report,
            audit_each_move=self._audit_each_move,
            rollback_on_failure=self._rollback_on_failure,
            on_done=on_done,
        )
        run.step()
        return report

    # -- convenience -------------------------------------------------------

    @property
    def holder(self) -> str:
        """The migration-lock holder tag this executor rolls under."""
        return self._holder


class _ExecutionRun:
    """State of one in-flight plan execution (forward + rollback)."""

    def __init__(
        self,
        controller,
        holder: str,
        plan: MigrationPlan,
        report: MigrationReport,
        audit_each_move: bool,
        rollback_on_failure: bool,
        on_done: Optional[Callable[[MigrationReport], None]],
    ) -> None:
        self.controller = controller
        self.holder = holder
        self.plan = plan
        self.report = report
        self.audit_each_move = audit_each_move
        self.rollback_on_failure = rollback_on_failure
        self.on_done = on_done
        self.cursor = 0
        #: Moves that completed forward, for reverse-order unwinding.
        self.completed_moves: List[MigrationMove] = []
        self.mode = "forward"
        self.unwind_cursor = 0
        self.finished = False

    # -- shared helpers ----------------------------------------------------

    def _current_assignment(self, connection_id: str):
        """(path, channels) of the connection's live lightpath, or None."""
        controller = self.controller
        connection = controller.connections.get(connection_id)
        if connection is None or connection.state is not ConnectionState.UP:
            return None
        if len(connection.lightpath_ids) != 1:
            return None
        lightpath = controller.inventory.lightpaths.get(
            connection.lightpath_ids[0]
        )
        if lightpath is None:
            return None
        return tuple(lightpath.path), tuple(lightpath.channels)

    def _roll(
        self,
        move: MigrationMove,
        path,
        channels,
        settled: Callable[[dict], None],
    ) -> bool:
        """Start one bridge-and-roll; False on synchronous failure."""
        controller = self.controller
        try:
            explicit = controller.rwa.plan_explicit(
                list(path), list(channels), move.rate_bps
            )
            controller.bridge_and_roll(
                move.connection_id,
                plan=explicit,
                lock_holder=self.holder,
                on_settled=settled,
            )
        except GriphonError:
            return False
        return True

    def _audit(self) -> bool:
        """Run the invariant auditor; record violations.  True if clean."""
        if not self.audit_each_move:
            return True
        audit = audit_network(self.controller)
        if not audit.ok:
            self.report.audit_failures.extend(
                str(v) for v in audit.violations
            )
            return False
        return True

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        metrics = getattr(self.controller, "metrics", None)
        # Touched connections must all still be carrying traffic.
        touched = {m.connection_id for m in self.plan.moves}
        for conn_id in sorted(touched):
            connection = self.controller.connections.get(conn_id)
            if connection is not None and connection.state not in (
                ConnectionState.UP,
                ConnectionState.RELEASED,
            ):
                self.report.dropped_connections.append(conn_id)
        if metrics is not None:
            metrics.inc("optimize.moves.completed", self.report.completed)
            metrics.inc("optimize.moves.stale", self.report.stale)
            metrics.inc("optimize.moves.failed", self.report.failed)
            metrics.inc("optimize.moves.rolled_back", self.report.rolled_back)
            if self.report.rollback_triggered:
                metrics.inc("optimize.rollbacks")
        if self.on_done is not None:
            self.on_done(self.report)

    # -- forward execution -------------------------------------------------

    def step(self) -> None:
        """Run the next forward move (or finish / start rollback)."""
        if self.mode != "forward":
            self.unwind_step()
            return
        plan_moves = self.plan.moves
        while self.cursor < len(plan_moves):
            move = plan_moves[self.cursor]
            self.cursor += 1
            live = self._current_assignment(move.connection_id)
            if live != (move.old_path, move.old_channels):
                self.report.results.append(
                    MoveResult(move, "stale", f"live assignment {live}")
                )
                self.report.stale += 1
                continue

            def settled(result: dict, move=move) -> None:
                self._forward_settled(move, result)

            if self._roll(move, move.new_path, move.new_channels, settled):
                return  # settled() continues the run
            self.report.results.append(
                MoveResult(move, "failed", "planning or claim failed")
            )
            self.report.failed += 1
            self._begin_rollback()
            return
        self._finish()

    def _forward_settled(self, move: MigrationMove, result: dict) -> None:
        if result["outcome"] == "completed":
            self.report.results.append(MoveResult(move, "completed"))
            self.report.completed += 1
            self.completed_moves.append(move)
            if not self._audit():
                self._begin_rollback()
                return
            self.step()
            return
        self.report.results.append(
            MoveResult(move, "failed", "roll aborted")
        )
        self.report.failed += 1
        self._begin_rollback()

    # -- rollback ----------------------------------------------------------

    def _begin_rollback(self) -> None:
        if not self.rollback_on_failure or not self.completed_moves:
            self._finish()
            return
        self.report.rollback_triggered = True
        self.mode = "rollback"
        self.unwind_cursor = len(self.completed_moves) - 1
        self.unwind_step()

    def unwind_step(self) -> None:
        """Undo the next completed move (reverse plan order)."""
        while self.unwind_cursor >= 0:
            move = self.completed_moves[self.unwind_cursor]
            self.unwind_cursor -= 1
            live = self._current_assignment(move.connection_id)
            if live != (move.new_path, move.new_channels):
                self.report.results.append(
                    MoveResult(
                        move, "rollback-failed", f"live assignment {live}"
                    )
                )
                continue

            def settled(result: dict, move=move) -> None:
                self._rollback_settled(move, result)

            if self._roll(move, move.old_path, move.old_channels, settled):
                return
            self.report.results.append(
                MoveResult(move, "rollback-failed", "planning or claim failed")
            )
        self._finish()

    def _rollback_settled(self, move: MigrationMove, result: dict) -> None:
        if result["outcome"] == "completed":
            self.report.results.append(MoveResult(move, "rolled-back"))
            self.report.rolled_back += 1
        else:
            self.report.results.append(
                MoveResult(move, "rollback-failed", "roll aborted")
            )
        self.unwind_step()
