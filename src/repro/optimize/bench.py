"""The re-optimization benchmark: repack vs greedy under rising load.

One trial fragments a generated 64-PoP backbone the way months of churn
would: waves of inter-DC orders interleaved with teardowns, leaving the
survivors stranded on scattered high channels and contention-forced
detours.  The trial then either runs a global re-optimization cycle
(``reoptimize=True``) or leaves the greedy first-fit assignment as-is,
and finally ramps fresh offered load into whatever capacity is left.

``BENCH_optimize.json`` (see ``benchmarks/optimize_report.py``) asserts
the acceptance bar: re-optimization reclaims >= 15% of the wavelengths
in use (or cuts blocking probability at least 2x) versus the greedy
baseline, with zero invariant-audit violations and zero dropped
connections during migration.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional

from repro.core.connection import ConnectionState
from repro.facade import GriphonNetwork
from repro.optimize.runtime import Reoptimizer
from repro.optimize.snapshot import _connection_sort_key

#: Default fragmentation scenario knobs.
DEFAULT_NODE_COUNT = 64
DEFAULT_WARM_ORDERS = 160
DEFAULT_LOAD_ORDERS = 48


def build_optimize_network(
    seed: int, node_count: int = DEFAULT_NODE_COUNT
) -> GriphonNetwork:
    """The benchmark network: a generated Waxman backbone."""
    from repro.sweep.studies import build_waxman_network

    return build_waxman_network(seed, node_count=node_count)


def place_orders(net: GriphonNetwork, service, count: int, offset: int = 0):
    """Place ``count`` deterministic inter-DC orders; returns the records.

    The (a, b) pairing cycles the PoP list with a stride-7 walk, the
    same load pattern as the scaling study, so two runs with the same
    seed and count request identical demand.
    """
    pops = [
        node.name
        for node in net.inventory.graph.nodes
        if node.kind != "premises"
    ]
    connections = []
    for index in range(offset, offset + count):
        a = f"DC-{pops[index % len(pops)]}"
        b = f"DC-{pops[(index * 7 + 3) % len(pops)]}"
        if a == b:
            b = f"DC-{pops[(index * 7 + 4) % len(pops)]}"
        connections.append(service.request_connection(a, b, 10))
    net.run()
    return connections


def fragment_network(
    net: GriphonNetwork,
    service,
    connections,
    keep_every: int = 3,
) -> int:
    """Tear down all but every ``keep_every``-th UP connection.

    The churn that strands survivors: the teardowns free the low
    channels first-fit packed tightly, so later orders (and the
    survivors themselves) end up scattered across the grid.  Returns
    the number of teardowns issued.
    """
    torn = 0
    for index, connection in enumerate(connections):
        if connection.state is not ConnectionState.UP:
            continue
        if index % keep_every == 0:
            continue
        service.teardown_connection(connection.connection_id)
        torn += 1
    net.run()
    return torn


def wavelengths_in_use(controller) -> int:
    """Distinct channels lit anywhere in the network, live."""
    union = 0
    for mask in controller.inventory.plant.occupancy_snapshot().values():
        union |= mask
    return bin(union).count("1")


def assignment_fingerprint(controller) -> str:
    """A digest of *what is assigned where*, replay-comparable.

    Unlike :func:`repro.slo.bench.network_fingerprint`, this excludes
    the sim clock, the kernel event counter, and lightpath/connection
    ids — a twin network that replays the same final assignment from
    scratch (different id counters, different timing) must fingerprint
    equal.  Covered: every link's occupied-channel bitmask and the
    sorted multiset of live (route, channels) assignments.
    """
    plant = controller.inventory.plant
    parts = []
    for key in sorted(plant.occupancy_snapshot()):
        parts.append(f"link:{key[0]}={key[1]}:{plant.occupancy_snapshot()[key]}")
    assignments = []
    for connection in controller.connections.values():
        if connection.state is not ConnectionState.UP:
            continue
        for lightpath_id in connection.lightpath_ids:
            lightpath = controller.inventory.lightpaths.get(lightpath_id)
            if lightpath is None:
                continue
            segments = ";".join(
                f"{'-'.join(seg.nodes)}@{seg.channel}"
                for seg in lightpath.segments
            )
            assignments.append(
                f"lp:{'-'.join(lightpath.path)}:{segments}:"
                f"{lightpath.rate_bps:.0f}"
            )
    parts.extend(sorted(assignments))
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def replay_assignment(controller, twin: GriphonNetwork) -> List:
    """Re-establish ``controller``'s final assignment on a fresh twin.

    The migration-safety oracle's second arm: every UP single-lightpath
    connection is re-ordered on ``twin`` from scratch with a planner
    that returns its *final* route and channels verbatim.  If the twin's
    :func:`assignment_fingerprint` then matches the original's, the
    executed migration plan left the network exactly where a from-
    scratch provisioning of the same assignment would — no leaked slots,
    no stale masks, no half-rolled state.

    Returns the twin's connection records, in original order.
    """
    for customer in sorted(
        {c.customer for c in controller.connections.values()}
    ):
        twin.service_for(
            customer, max_connections=4096, max_total_rate_gbps=1000000
        )
    replayed = []
    for conn_id in sorted(controller.connections, key=_connection_sort_key):
        connection = controller.connections[conn_id]
        if connection.state is not ConnectionState.UP:
            continue
        if len(connection.lightpath_ids) != 1 or connection.circuit_ids:
            continue
        lightpath = controller.inventory.lightpaths[
            connection.lightpath_ids[0]
        ]
        explicit = twin.controller.rwa.plan_explicit(
            list(lightpath.path),
            list(lightpath.channels),
            lightpath.rate_bps,
        )
        twin_conn, span = twin.controller.open_order(
            connection.customer,
            connection.premises_a,
            connection.premises_b,
            connection.rate_bps,
            connection.kind,
        )
        if not twin.controller.admit_order(twin_conn, span):
            replayed.append(twin_conn)
            continue
        twin.controller.launch_order(
            twin_conn,
            connection.kind,
            span,
            planner=lambda *args, _plan=explicit, **kwargs: _plan,
        )
        replayed.append(twin_conn)
    twin.run()
    return replayed


def run_optimize_trial(
    seed: int = 0,
    node_count: int = DEFAULT_NODE_COUNT,
    warm_orders: int = DEFAULT_WARM_ORDERS,
    load_orders: int = DEFAULT_LOAD_ORDERS,
    keep_every: int = 3,
    reoptimize: bool = True,
    k_paths: int = 4,
    max_passes: int = 4,
    audit_each_move: bool = True,
) -> Dict[str, Any]:
    """One fragment → (maybe re-optimize) → load-ramp trial; flat dict.

    With ``reoptimize=False`` the same fragmented network takes the
    same load ramp on its greedy first-fit assignment — the baseline
    the benchmark's reclaim and blocking comparisons are made against.
    """
    net = build_optimize_network(seed, node_count=node_count)
    service = net.service_for(
        "dc-operator", max_connections=4096, max_total_rate_gbps=1000000
    )
    warm = place_orders(net, service, warm_orders)
    torn = fragment_network(net, service, warm, keep_every=keep_every)
    survivors = [c for c in warm if c.state is ConnectionState.UP]

    wavelengths_fragmented = wavelengths_in_use(net.controller)
    plan_dict: Optional[Dict[str, Any]] = None
    report_dict: Optional[Dict[str, Any]] = None
    if reoptimize:
        optimizer = Reoptimizer(
            net.controller,
            k_paths=k_paths,
            max_passes=max_passes,
            audit_each_move=audit_each_move,
        )
        done: Dict[str, Any] = {}

        def finished(plan, report) -> None:
            done["plan"], done["report"] = plan, report

        optimizer.run_cycle(on_done=finished)
        net.run()
        plan = done["plan"]
        report = done["report"]
        plan_dict = {
            "moves": len(plan.moves),
            "rewavelength_only": sum(
                1 for m in plan.moves if m.rewavelength_only
            ),
            "passes": plan.passes,
            "objective_before": plan.objective_before,
            "objective_after": plan.objective_after,
            "wavelengths_before": plan.wavelengths_before,
            "wavelengths_after": plan.wavelengths_after,
        }
        report_dict = report.to_dict()
    wavelengths_optimized = wavelengths_in_use(net.controller)

    ramp = place_orders(net, service, load_orders, offset=warm_orders)
    blocked = sum(1 for c in ramp if c.state is ConnectionState.BLOCKED)
    served = sum(1 for c in ramp if c.state is ConnectionState.UP)
    dropped_survivors = sum(
        1 for c in survivors if c.state is not ConnectionState.UP
    )

    result: Dict[str, Any] = {
        "seed": seed,
        "node_count": node_count,
        "reoptimize": reoptimize,
        "warm_orders": warm_orders,
        "torn_down": torn,
        "survivors": len(survivors),
        "wavelengths_fragmented": wavelengths_fragmented,
        "wavelengths_optimized": wavelengths_optimized,
        "wavelengths_reclaimed": wavelengths_fragmented
        - wavelengths_optimized,
        "load_orders": load_orders,
        "blocked": blocked,
        "served": served,
        "blocking_probability": blocked / load_orders if load_orders else 0.0,
        "dropped_survivors": dropped_survivors,
        "fingerprint": assignment_fingerprint(net.controller),
        "sim_now": net.sim.now,
    }
    if plan_dict is not None:
        result["planned_moves"] = plan_dict["moves"]
        result["rewavelength_moves"] = plan_dict["rewavelength_only"]
        result["planner_passes"] = plan_dict["passes"]
        result["objective_before"] = plan_dict["objective_before"]
        result["objective_after"] = plan_dict["objective_after"]
    if report_dict is not None:
        result["moves_completed"] = report_dict["completed"]
        result["moves_stale"] = report_dict["stale"]
        result["moves_failed"] = report_dict["failed"]
        result["rollback_triggered"] = report_dict["rollback_triggered"]
        result["audit_violations"] = len(report_dict["audit_failures"])
    return result


def optimize_trial(trial) -> "TrialResult":
    """Sweep-registry runner: one :func:`run_optimize_trial` per spec.

    A thin adapter so ``griphon sweep`` can grid over seeds and the
    ``reoptimize`` axis; imported lazily by the studies registry
    (see :data:`repro.sweep.studies.STUDIES`).
    """
    from repro.sweep.engine import TrialResult

    params = trial.params
    result = run_optimize_trial(
        seed=trial.seed,
        node_count=int(params.get("node_count", DEFAULT_NODE_COUNT)),
        warm_orders=int(params.get("warm_orders", DEFAULT_WARM_ORDERS)),
        load_orders=int(params.get("load_orders", DEFAULT_LOAD_ORDERS)),
        keep_every=int(params.get("keep_every", 3)),
        reoptimize=bool(params.get("reoptimize", True)),
        k_paths=int(params.get("k_paths", 4)),
        max_passes=int(params.get("max_passes", 4)),
    )
    values = {
        key: value
        for key, value in result.items()
        if isinstance(value, (int, float, bool))
    }
    return TrialResult(values=values, samples={}, metrics={})
