"""The vendor ROADM EMS: the controller's interface to the photonic layer.

Each operation mutates the ROADM (or line system) immediately — the EMS
locks resources when it accepts a command — and returns the seconds the
step takes, which the calling workflow yields to the simulator.  The
equalization step's duration includes the amplifier-chain transient
settle time of the link, so longer links genuinely take longer to light.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import EquipmentError
from repro.ems.latency import LatencyModel
from repro.obs.registry import MetricsRegistry
from repro.optical.amplifier import AmplifierChain
from repro.optical.fiber import FiberPlant
from repro.optical.roadm import Roadm


class RoadmEms:
    """Manages the ROADMs and the optical line system."""

    def __init__(
        self,
        roadms: Dict[str, Roadm],
        plant: FiberPlant,
        latency: LatencyModel,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._roadms = dict(roadms)
        self._plant = plant
        self._latency = latency
        self._metrics = metrics
        self._chains: Dict[tuple, AmplifierChain] = {
            link.key: AmplifierChain(link.length_km) for link in plant.graph.links
        }

    def _count(self, op: str) -> None:
        if self._metrics is not None:
            self._metrics.inc(f"ems.roadm.{op}")

    def amplifier_chains(self) -> Dict[tuple, AmplifierChain]:
        """Live amplifier-chain state per link key.

        Exposed so the invariant auditor can cross-check gain settings
        against inventory records and the SLO injector can flap them.
        """
        return dict(self._chains)

    def chain(self, a: str, b: str) -> AmplifierChain:
        """The amplifier chain on the link joining ``a`` and ``b``.

        Links added after construction get a chain lazily, matching
        :meth:`FiberPlant.dwdm_link`.

        Raises:
            EquipmentError: if no such link exists.
        """
        try:
            dwdm = self._plant.dwdm_link(a, b)
        except Exception as exc:
            raise EquipmentError(
                f"EMS manages no line between {a!r} and {b!r}",
                site=a,
                element=f"line@{a}={b}",
                command="lookup",
            ) from exc
        key = dwdm.link.key
        if key not in self._chains:
            self._chains[key] = AmplifierChain(dwdm.link.length_km)
        return self._chains[key]

    def roadm(self, name: str) -> Roadm:
        """Look up a managed ROADM.

        Raises:
            EquipmentError: for an unknown node.
        """
        try:
            return self._roadms[name]
        except KeyError:
            raise EquipmentError(
                f"EMS manages no ROADM named {name!r}",
                site=name,
                element=f"roadm@{name}",
                command="lookup",
            ) from None

    # -- add/drop --------------------------------------------------------------

    def configure_add_drop(
        self, node: str, port_id: str, degree: str, channel: int, owner: str
    ) -> float:
        """Connect an add/drop port; returns the EMS step duration."""
        self.roadm(node).connect_add_drop(port_id, degree, channel, owner)
        self._count("add_drop")
        return self._latency.sample("roadm.add_drop")

    def remove_add_drop(self, node: str, port_id: str, owner: str) -> float:
        """Disconnect an add/drop port; returns the step duration."""
        self.roadm(node).disconnect_add_drop(port_id, owner)
        self._count("add_drop.remove")
        return self._latency.sample("roadm.add_drop.remove")

    # -- express ----------------------------------------------------------------

    def configure_express(
        self, node: str, degree_in: str, degree_out: str, channel: int, owner: str
    ) -> float:
        """Set up an express cross-connect; returns the step duration."""
        self.roadm(node).connect_express(degree_in, degree_out, channel, owner)
        self._count("express")
        return self._latency.sample("roadm.express")

    def remove_express(
        self, node: str, degree_in: str, degree_out: str, channel: int, owner: str
    ) -> float:
        """Tear down an express cross-connect; returns the step duration."""
        self.roadm(node).disconnect_express(degree_in, degree_out, channel, owner)
        self._count("express.remove")
        return self._latency.sample("roadm.express.remove")

    # -- optical line tasks ---------------------------------------------------------

    def occupy_channel(self, a: str, b: str, channel: int, owner: str) -> None:
        """Record channel occupancy on the fiber link (no EMS delay)."""
        self._plant.dwdm_link(a, b).occupy(channel, owner)

    def release_channel(self, a: str, b: str, channel: int, owner: str) -> None:
        """Release channel occupancy on the fiber link (no EMS delay)."""
        self._plant.dwdm_link(a, b).release(channel, owner)

    def equalize_link(self, a: str, b: str) -> float:
        """Power-balance and equalize one link after an add/drop change.

        The duration is the EMS equalization step plus the link's
        amplifier-chain transient settle time, so longer links take
        proportionally longer — part of why setup time in Table 2 grows
        with path length.
        """
        dwdm = self._plant.dwdm_link(a, b)
        chain = self._chains[dwdm.link.key]
        self._count("equalize")
        return self._latency.sample(
            "line.equalize", extra=chain.transient_settle_time()
        )

    def verify_lightpath(self) -> float:
        """End-to-end verification before customer handover."""
        self._count("verify")
        return self._latency.sample("verify.end_to_end")
