"""The step-duration catalog behind every EMS operation.

The default means are calibrated so that, on the Fig. 4 testbed, a
wavelength connection establishes in 60–70 s (growing a few seconds per
added ROADM hop, as in Table 2) and tears down in about 10 s.  The paper
stresses these times reflect *today's lack of speed requirements*, not
physical limits — so every mean is a parameter, and the T2 ablation
benchmark shows what parallelizing or shrinking the steps would buy.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.sim.randomness import RandomStreams

#: Mean duration, in seconds, of each management/optical step.
DEFAULT_STEP_MEANS: Dict[str, float] = {
    # GRIPhoN controller internals.
    "controller.order": 2.0,
    "controller.release": 1.0,
    # Fiber cross-connect controller.
    "fxc.connect": 1.5,
    "fxc.disconnect": 1.5,
    # Customer-premises NTE controller.
    "nte.configure": 2.0,
    "nte.release": 1.0,
    # Optical transponders: allocation plus laser tuning dominates.
    "ot.tune": 14.0,
    "ot.release": 1.0,
    # ROADM EMS configuration.
    "roadm.add_drop": 9.5,
    "roadm.add_drop.remove": 2.0,
    "roadm.express": 2.0,
    "roadm.express.remove": 0.5,
    # Optical line tasks per link: power balancing & equalization; the
    # amplifier-chain transient settle time is added on top.
    "line.equalize": 2.0,
    # End-to-end light-up verification before handing over to the customer.
    "verify.end_to_end": 8.0,
    # OTN switch EMS: electrical, so much faster than photonic steps.
    "otn.crossconnect": 1.2,
    "otn.crossconnect.remove": 0.6,
    # IP layer: EVC provisioning is router configuration, near-instant.
    "ip.evc": 1.0,
    "ip.evc.remove": 0.5,
}

#: Default coefficient of variation: small run-to-run jitter, matching a
#: repeated lab measurement (Table 2 averages ten iterations).
DEFAULT_CV = 0.03


class LatencyModel:
    """Samples per-step durations from lognormal distributions.

    Args:
        streams: The experiment's random substreams (one per step name).
        means: Step-name to mean-seconds overrides; unknown names are
            allowed so experiments can define extra steps.
        cv: Coefficient of variation applied to every step.  Zero makes
            the model fully deterministic.
        speedup: Divides every mean — the knob for "what if vendors
            optimized for speed" ablations (paper §4).
    """

    def __init__(
        self,
        streams: RandomStreams,
        means: Optional[Dict[str, float]] = None,
        cv: float = DEFAULT_CV,
        speedup: float = 1.0,
    ) -> None:
        if cv < 0:
            raise ConfigurationError(f"cv must be >= 0, got {cv}")
        if speedup <= 0:
            raise ConfigurationError(f"speedup must be positive, got {speedup}")
        self._streams = streams
        self._means = dict(DEFAULT_STEP_MEANS)
        if means:
            self._means.update(means)
        self._cv = cv
        self._speedup = speedup
        self._metrics: Optional[MetricsRegistry] = None

    def bind_metrics(self, metrics: Optional[MetricsRegistry]) -> None:
        """Record every sampled step duration into ``metrics``.

        Each draw lands in histogram ``step.<name>``, giving the
        per-step duration distributions the Table 2 analysis needs
        without instrumenting every call site.  Pass ``None`` to stop
        recording.
        """
        self._metrics = metrics

    def mean(self, step: str) -> float:
        """The configured mean for ``step`` (after speedup).

        Raises:
            ConfigurationError: for an unknown step name.
        """
        try:
            return self._means[step] / self._speedup
        except KeyError:
            raise ConfigurationError(f"unknown latency step {step!r}") from None

    def sample(self, step: str, extra: float = 0.0) -> float:
        """Draw one duration for ``step``.

        Args:
            extra: Deterministic seconds added after sampling (used for
                amplifier-settle components that scale with span count).
        """
        if extra < 0:
            raise ConfigurationError(f"extra must be >= 0, got {extra}")
        duration = self._streams.lognormal(
            f"latency:{step}", self.mean(step), self._cv
        )
        if self._metrics is not None:
            self._metrics.observe(f"step.{step}", duration + extra)
        return duration + extra

    def known_steps(self) -> Dict[str, float]:
        """A copy of the step-mean table (after speedup)."""
        return {step: mean / self._speedup for step, mean in self._means.items()}
