"""NTE controllers: configuring the customer-premises demarcation boxes."""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import EquipmentError
from repro.ems.latency import LatencyModel
from repro.obs.registry import MetricsRegistry
from repro.optical.nte import NetworkTerminatingEquipment


class NteController:
    """Manages the NTEs on every customer premises."""

    def __init__(
        self,
        ntes: Dict[str, NetworkTerminatingEquipment],
        latency: LatencyModel,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._ntes = dict(ntes)
        self._latency = latency
        self._metrics = metrics

    def _count(self, op: str) -> None:
        if self._metrics is not None:
            self._metrics.inc(f"ems.nte.{op}")

    def nte(self, premises: str) -> NetworkTerminatingEquipment:
        """Look up the NTE at ``premises``.

        Raises:
            EquipmentError: for an unknown premises.
        """
        try:
            return self._ntes[premises]
        except KeyError:
            raise EquipmentError(
                f"no NTE managed at {premises!r}",
                site=premises,
                element=f"nte@{premises}",
                command="lookup",
            ) from None

    def configure_interface(
        self, premises: str, owner: str, channelized: bool
    ) -> tuple:
        """Claim and configure a customer interface.

        Returns:
            ``(interface_index, duration_seconds)``.
        """
        index = self.nte(premises).claim_interface(owner, channelized)
        self._count("configure")
        return index, self._latency.sample("nte.configure")

    def release_interface(self, premises: str, index: int, owner: str) -> float:
        """Release a customer interface; returns the step duration."""
        self.nte(premises).release_interface(index, owner)
        self._count("release")
        return self._latency.sample("nte.release")
