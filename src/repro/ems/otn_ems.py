"""The OTN switch EMS: electrical cross-connects, seconds not tens of them."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import EquipmentError
from repro.ems.latency import LatencyModel
from repro.obs.registry import MetricsRegistry
from repro.otn.line import OtnLine
from repro.otn.switch import OtnSwitch


class OtnEms:
    """Manages the OTN switches and their lines."""

    def __init__(
        self,
        switches: Dict[str, OtnSwitch],
        latency: LatencyModel,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._switches = dict(switches)
        self._latency = latency
        self._metrics = metrics

    def _count(self, op: str) -> None:
        if self._metrics is not None:
            self._metrics.inc(f"ems.otn.{op}")

    def switch(self, node: str) -> OtnSwitch:
        """Look up the OTN switch at ``node``.

        Raises:
            EquipmentError: for an unknown node.
        """
        try:
            return self._switches[node]
        except KeyError:
            raise EquipmentError(
                f"no OTN switch managed at {node!r}",
                site=node,
                element=f"otn@{node}",
                command="lookup",
            ) from None

    def nodes(self) -> List[str]:
        """All nodes with a managed OTN switch."""
        return sorted(self._switches)

    def claim_client_port(self, node: str, owner: str) -> int:
        """Claim a client port on a switch (instant; part of ordering)."""
        return self.switch(node).claim_client_port(owner)

    def release_client_port(self, node: str, port: int, owner: str) -> None:
        """Release a client port (instant)."""
        self.switch(node).release_client_port(port, owner)

    def crossconnect_slots(self, line: OtnLine, slots: int, owner: str) -> float:
        """Allocate slots on a line and program the cross-connect.

        Returns the EMS step duration.
        """
        line.allocate(slots, owner)
        self._count("crossconnect")
        return self._latency.sample("otn.crossconnect")

    def remove_crossconnect(self, line: OtnLine, owner: str) -> float:
        """Free a circuit's slots on a line; returns the step duration."""
        line.release_owner(owner)
        self._count("crossconnect.remove")
        return self._latency.sample("otn.crossconnect.remove")
