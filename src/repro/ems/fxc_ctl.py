"""FXC controllers: the management interface to fiber cross-connects."""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import EquipmentError
from repro.ems.latency import LatencyModel
from repro.obs.registry import MetricsRegistry
from repro.optical.fxc import FiberCrossConnect


class FxcController:
    """Manages the fiber cross-connects at all sites."""

    def __init__(
        self,
        fxcs: Dict[str, FiberCrossConnect],
        latency: LatencyModel,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._fxcs = dict(fxcs)
        self._latency = latency
        self._metrics = metrics

    def _count(self, op: str) -> None:
        if self._metrics is not None:
            self._metrics.inc(f"ems.fxc.{op}")

    def fxc(self, site: str) -> FiberCrossConnect:
        """Look up the FXC at ``site``.

        Raises:
            EquipmentError: for an unknown site.
        """
        try:
            return self._fxcs[site]
        except KeyError:
            raise EquipmentError(
                f"no FXC managed at site {site!r}",
                site=site,
                element=f"fxc@{site}",
                command="lookup",
            ) from None

    def connect(self, site: str, port_a: int, port_b: int, owner: str) -> float:
        """Cross-connect two ports; returns the step duration."""
        self.fxc(site).connect(port_a, port_b, owner)
        self._count("connect")
        return self._latency.sample("fxc.connect")

    def connect_labeled(self, site: str, label_a: str, label_b: str, owner: str) -> float:
        """Cross-connect two ports found by label; returns the duration."""
        fxc = self.fxc(site)
        return self.connect(site, fxc.find_port(label_a), fxc.find_port(label_b), owner)

    def disconnect(self, site: str, port: int, owner: str) -> float:
        """Remove the cross-connect at ``port``; returns the duration."""
        self.fxc(site).disconnect(port, owner)
        self._count("disconnect")
        return self._latency.sample("fxc.disconnect")
