"""Element management systems (EMS) with per-step latency models.

The paper's headline measurement — 60–70 s wavelength connection
establishment — decomposes into "(i) ROADM Element Management System
(EMS) configuration steps, and (ii) optical tasks, such as ROADM
reconfiguration, laser tuning, power balancing and link equalization"
(§3).  This package models every vendor-supplied management interface
the GRIPhoN controller talks to, with each configuration step taking a
calibrated, lightly-jittered amount of simulated time:

* :mod:`repro.ems.latency` — the step-duration catalog and sampler;
* :mod:`repro.ems.roadm_ems` — ROADM EMS (add/drop, express, equalize);
* :mod:`repro.ems.otn_ems` — OTN switch EMS (electrical cross-connects);
* :mod:`repro.ems.fxc_ctl` — FXC controllers;
* :mod:`repro.ems.nte_ctl` — NTE controllers on the customer premises.

Every EMS operation applies its network-element mutation immediately
(the EMS locks the resource when it accepts the command) and returns
the **duration** the step takes; workflow processes yield that duration
to the simulator.
"""

from repro.ems.fxc_ctl import FxcController
from repro.ems.latency import DEFAULT_STEP_MEANS, LatencyModel
from repro.ems.nte_ctl import NteController
from repro.ems.otn_ems import OtnEms
from repro.ems.roadm_ems import RoadmEms

__all__ = [
    "FxcController",
    "DEFAULT_STEP_MEANS",
    "LatencyModel",
    "NteController",
    "OtnEms",
    "RoadmEms",
]
