"""Optical reach model and regenerator placement.

"Optical-to-Electrical-to-Optical (OEO) regeneration is needed when the
distance between terminating nodes exceeds a limit for adequate signal
quality, known as the optical reach" (paper §2.1).  We model reach as a
per-line-rate distance budget: higher rates tolerate less accumulated
impairment, so their reach is shorter.  The :class:`ReachModel` decides
where along a route regenerators must be inserted.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError, SignalError
from repro.topo.graph import NetworkGraph
from repro.units import GBPS

#: Default optical reach in km by line rate (bps).  Representative values
#: for deployed long-haul systems of the paper's era: 10G NRZ reaches
#: furthest, 40G less, 100G coherent in between.
DEFAULT_REACH_KM: Dict[float, float] = {
    10 * GBPS: 2500.0,
    40 * GBPS: 1500.0,
    100 * GBPS: 2000.0,
}


class ReachModel:
    """Distance-budget reach model with greedy regen placement."""

    def __init__(self, reach_km_by_rate: Dict[float, float] = None) -> None:
        table = dict(DEFAULT_REACH_KM if reach_km_by_rate is None else reach_km_by_rate)
        if not table:
            raise ConfigurationError("reach table must not be empty")
        for rate, reach in table.items():
            if rate <= 0 or reach <= 0:
                raise ConfigurationError(
                    f"reach table entries must be positive, got {rate}: {reach}"
                )
        self._table = table

    def reach_km(self, rate_bps: float) -> float:
        """Optical reach for a line rate.

        Raises:
            SignalError: if the rate has no reach entry.
        """
        try:
            return self._table[rate_bps]
        except KeyError:
            known = ", ".join(f"{r / GBPS:g}G" for r in sorted(self._table))
            raise SignalError(
                f"no reach entry for line rate {rate_bps / GBPS:g}G "
                f"(known rates: {known})"
            ) from None

    def needs_regen(self, path_km: float, rate_bps: float) -> bool:
        """Whether a route of ``path_km`` exceeds the rate's reach."""
        return path_km > self.reach_km(rate_bps)

    def regen_sites(
        self, graph: NetworkGraph, path: List[str], rate_bps: float
    ) -> List[str]:
        """Pick intermediate nodes where the signal must be regenerated.

        Walks the path greedily: whenever the accumulated distance since
        the last OEO point would exceed the reach, a regen is placed at
        the previous node.  Returns the (possibly empty) list of regen
        node names in path order.

        Raises:
            SignalError: if a single link is longer than the reach (no
                placement can fix that — the route is simply unusable at
                this rate).
        """
        if len(path) < 2:
            return []
        reach = self.reach_km(rate_bps)
        sites: List[str] = []
        since_oeo = 0.0
        for u, v in zip(path, path[1:]):
            hop_km = graph.link_between(u, v).length_km
            if hop_km > reach:
                raise SignalError(
                    f"link {u}-{v} ({hop_km} km) exceeds the "
                    f"{rate_bps / GBPS:g}G reach of {reach} km"
                )
            if since_oeo + hop_km > reach:
                sites.append(u)
                since_oeo = hop_km
            else:
                since_oeo += hop_km
        return sites
