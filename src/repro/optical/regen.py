"""OEO regenerators (REGENs) and per-node pools.

A regenerator is effectively two transponders back-to-back: it terminates
the optical signal electrically and retransmits it, resetting the
accumulated impairment budget.  Crucially it can retransmit on a
*different* wavelength, so a lightpath with a regen in the middle does
not need wavelength continuity across the regen site.  Client-side FXCs
let GRIPhoN share regens among connections dynamically (paper §3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError, TransponderUnavailableError
from repro.units import GBPS


class Regenerator:
    """One OEO regenerator at a node.

    Attributes:
        regen_id: Unique identifier, e.g. ``'REGEN:CHI:0'``.
        node: Hosting node name.
        line_rate_bps: The line rate the regen supports.
    """

    def __init__(self, regen_id: str, node: str, line_rate_bps: float) -> None:
        if line_rate_bps <= 0:
            raise ConfigurationError(
                f"line rate must be positive, got {line_rate_bps}"
            )
        self.regen_id = regen_id
        self.node = node
        self.line_rate_bps = line_rate_bps
        self._owner: Optional[str] = None

    @property
    def in_use(self) -> bool:
        """True while allocated to a lightpath."""
        return self._owner is not None

    @property
    def owner(self) -> Optional[str]:
        """The lightpath id holding this regen, or None."""
        return self._owner

    def allocate(self, owner: str) -> None:
        """Reserve the regen.

        Raises:
            TransponderUnavailableError: if already in use.
        """
        if self._owner is not None:
            raise TransponderUnavailableError(
                f"{self.regen_id} is already held by {self._owner!r}"
            )
        self._owner = owner

    def release(self, owner: str) -> None:
        """Free the regen.

        Raises:
            TransponderUnavailableError: if ``owner`` does not hold it.
        """
        if self._owner != owner:
            raise TransponderUnavailableError(
                f"{self.regen_id} is held by {self._owner!r}, not {owner!r}"
            )
        self._owner = None

    def __repr__(self) -> str:
        state = f"owner={self._owner!r}" if self._owner else "idle"
        return f"Regenerator({self.regen_id}, {state})"


class RegenPool:
    """The regenerators installed at one node."""

    def __init__(self, node: str) -> None:
        self.node = node
        self._regens: Dict[str, Regenerator] = {}
        self._counter = 0

    def install(self, line_rate_bps: float, count: int = 1) -> List[Regenerator]:
        """Install ``count`` regens of the given rate; returns them."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        created = []
        for _ in range(count):
            regen_id = f"REGEN:{self.node}:{self._counter}"
            self._counter += 1
            regen = Regenerator(regen_id, self.node, line_rate_bps)
            self._regens[regen_id] = regen
            created.append(regen)
        return created

    @property
    def regenerators(self) -> List[Regenerator]:
        """All installed regens."""
        return list(self._regens.values())

    def free(self, line_rate_bps: Optional[float] = None) -> List[Regenerator]:
        """Idle regens, optionally filtered by rate."""
        return [
            regen
            for regen in self._regens.values()
            if not regen.in_use
            and (line_rate_bps is None or regen.line_rate_bps == line_rate_bps)
        ]

    def allocate(self, line_rate_bps: float, owner: str) -> Regenerator:
        """Allocate the first idle regen at the given rate.

        Raises:
            TransponderUnavailableError: if none is free.
        """
        candidates = self.free(line_rate_bps)
        if not candidates:
            raise TransponderUnavailableError(
                f"no free {line_rate_bps / GBPS:g}G regenerator at {self.node}"
            )
        chosen = candidates[0]
        chosen.allocate(owner)
        return chosen
