"""The DWDM layer: wavelengths, fiber, ROADMs, transponders, FXCs.

This package models the photonic substrate GRIPhoN's wavelength services
ride on:

* :mod:`repro.optical.wavelength` — the ITU channel grid;
* :mod:`repro.optical.fiber` — per-link wavelength occupancy and failures;
* :mod:`repro.optical.amplifier` — amplifier chains and power transients;
* :mod:`repro.optical.impairments` — optical reach and regen placement;
* :mod:`repro.optical.osnr` — OSNR margin arithmetic for gray failures;
* :mod:`repro.optical.transponder` — tunable OTs and node-local pools;
* :mod:`repro.optical.regen` — OEO regenerators;
* :mod:`repro.optical.roadm` — colorless/non-directional ROADM nodes;
* :mod:`repro.optical.fxc` — client-side fiber cross-connects;
* :mod:`repro.optical.muxponder` — 10G/40G muxponders and 1/10G muxes;
* :mod:`repro.optical.nte` — customer network-terminating equipment;
* :mod:`repro.optical.lightpath` — end-to-end wavelength connections.
"""

from repro.optical.amplifier import AmplifierChain
from repro.optical.fiber import DwdmLink, FiberPlant
from repro.optical.fxc import FiberCrossConnect
from repro.optical.impairments import ReachModel
from repro.optical.lightpath import Lightpath, LightpathState
from repro.optical.muxponder import LowSpeedMux, Muxponder
from repro.optical.nte import NetworkTerminatingEquipment
from repro.optical.osnr import OsnrModel
from repro.optical.regen import Regenerator, RegenPool
from repro.optical.roadm import Roadm
from repro.optical.transponder import Transponder, TransponderPool
from repro.optical.wavelength import WavelengthGrid

__all__ = [
    "AmplifierChain",
    "DwdmLink",
    "FiberPlant",
    "FiberCrossConnect",
    "ReachModel",
    "Lightpath",
    "LightpathState",
    "LowSpeedMux",
    "Muxponder",
    "NetworkTerminatingEquipment",
    "OsnrModel",
    "Regenerator",
    "RegenPool",
    "Roadm",
    "Transponder",
    "TransponderPool",
    "WavelengthGrid",
]
