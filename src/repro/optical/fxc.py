"""Client-side fiber cross-connects (FXCs).

The FXC is a photonic patch panel: it connects any of its ports to any
other port, one-to-one, with no grooming and no rate awareness.  GRIPhoN
places an FXC between the customer-facing equipment and both the OTs and
the OTN switch, so the controller can steer a customer signal either
directly onto the DWDM layer (wavelength service) or into the OTN switch
(sub-wavelength service), and can share OTs and regens across customers
(paper §2.2: low cost, small footprint, low power — but incapable of
grooming).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, EquipmentError


class FiberCrossConnect:
    """An N-port photonic cross-connect with one-to-one port mapping."""

    def __init__(self, fxc_id: str, port_count: int) -> None:
        if port_count < 2:
            raise ConfigurationError(
                f"an FXC needs at least 2 ports, got {port_count}"
            )
        self.fxc_id = fxc_id
        self._port_count = port_count
        self._peer: Dict[int, int] = {}
        self._owner: Dict[int, str] = {}
        self._labels: Dict[int, str] = {}

    @property
    def port_count(self) -> int:
        """Number of ports on the cross-connect."""
        return self._port_count

    def label_port(self, port: int, label: str) -> None:
        """Attach a human-readable label (what's patched into the port)."""
        self._validate_port(port)
        self._labels[port] = label

    def port_label(self, port: int) -> str:
        """The label of ``port`` (empty string if unlabeled)."""
        self._validate_port(port)
        return self._labels.get(port, "")

    def find_port(self, label: str) -> int:
        """Return the port carrying ``label``.

        Raises:
            EquipmentError: if no port has that label.
        """
        for port, port_label in self._labels.items():
            if port_label == label:
                return port
        raise EquipmentError(f"{self.fxc_id} has no port labeled {label!r}")

    def peer_of(self, port: int) -> Optional[int]:
        """The port connected to ``port``, or None."""
        self._validate_port(port)
        return self._peer.get(port)

    def connect(self, a: int, b: int, owner: str) -> None:
        """Cross-connect ports ``a`` and ``b`` for ``owner``.

        Raises:
            EquipmentError: if either port is already connected or a == b.
        """
        self._validate_port(a)
        self._validate_port(b)
        if a == b:
            raise EquipmentError(f"cannot connect port {a} to itself")
        for port in (a, b):
            if port in self._peer:
                raise EquipmentError(
                    f"{self.fxc_id} port {port} already connected to "
                    f"port {self._peer[port]} for {self._owner[port]!r}"
                )
        self._peer[a] = b
        self._peer[b] = a
        self._owner[a] = owner
        self._owner[b] = owner

    def disconnect(self, port: int, owner: str) -> None:
        """Remove the cross-connect involving ``port``.

        Raises:
            EquipmentError: if the port is idle or owned by someone else.
        """
        self._validate_port(port)
        peer = self._peer.get(port)
        if peer is None:
            raise EquipmentError(f"{self.fxc_id} port {port} is not connected")
        if self._owner[port] != owner:
            raise EquipmentError(
                f"{self.fxc_id} port {port} is held by "
                f"{self._owner[port]!r}, not {owner!r}"
            )
        for p in (port, peer):
            del self._peer[p]
            del self._owner[p]

    def free_ports(self) -> List[int]:
        """Ports with no cross-connect."""
        return [p for p in range(self._port_count) if p not in self._peer]

    def connections(self) -> List[Tuple[int, int, str]]:
        """All cross-connects as ``(low_port, high_port, owner)`` tuples."""
        seen = set()
        result = []
        for a, b in self._peer.items():
            key = (min(a, b), max(a, b))
            if key in seen:
                continue
            seen.add(key)
            result.append((key[0], key[1], self._owner[a]))
        return sorted(result)

    def _validate_port(self, port: int) -> None:
        if not 0 <= port < self._port_count:
            raise EquipmentError(
                f"{self.fxc_id} has no port {port} (ports: 0..{self._port_count - 1})"
            )

    def __repr__(self) -> str:
        return (
            f"FiberCrossConnect({self.fxc_id}, ports={self._port_count}, "
            f"connected={len(self._peer) // 2})"
        )
