"""OSNR-based optical reach: the physics under the distance budgets.

The plain :class:`~repro.optical.impairments.ReachModel` uses per-rate
distance budgets.  This module derives those budgets from first-order
amplifier physics: each EDFA span adds ASE noise, so the optical
signal-to-noise ratio at the receiver falls with ``10 log10(N_spans)``,
and a signal is viable only while OSNR stays above the rate's receiver
requirement.  Higher line rates need more OSNR (bigger symbol alphabets
and bandwidths), which is *why* 40G reaches less far than 10G.

The standard link-budget formula (0.1 nm reference bandwidth)::

    OSNR_dB = 58 + P_launch_dBm - NF_dB - L_span_dB - 10 log10(N_spans)
"""

from __future__ import annotations

import math
from typing import Dict

from repro.errors import ConfigurationError, SignalError
from repro.units import GBPS

#: Receiver OSNR requirements in dB by line rate, tuned so the derived
#: reaches land near the deployed-system distance budgets used by
#: :class:`ReachModel` (10G ~2500 km, 40G ~1500 km, 100G ~2000 km).
DEFAULT_REQUIRED_OSNR_DB: Dict[float, float] = {
    10 * GBPS: 17.5,
    40 * GBPS: 19.8,
    100 * GBPS: 18.5,  # coherent detection buys back margin
}


class OsnrModel:
    """First-order ASE-noise link budget."""

    def __init__(
        self,
        launch_power_dbm: float = 0.0,
        noise_figure_db: float = 5.5,
        span_km: float = 80.0,
        loss_db_per_km: float = 0.25,
        required_osnr_db: Dict[float, float] = None,
    ) -> None:
        if span_km <= 0 or loss_db_per_km <= 0:
            raise ConfigurationError(
                "span length and fiber loss must be positive"
            )
        self.launch_power_dbm = launch_power_dbm
        self.noise_figure_db = noise_figure_db
        self.span_km = span_km
        self.loss_db_per_km = loss_db_per_km
        self._required = dict(
            DEFAULT_REQUIRED_OSNR_DB
            if required_osnr_db is None
            else required_osnr_db
        )
        if not self._required:
            raise ConfigurationError("required-OSNR table must not be empty")

    # -- budget ------------------------------------------------------------------

    @property
    def span_loss_db(self) -> float:
        """Loss of one amplified span."""
        return self.span_km * self.loss_db_per_km

    def span_count(self, total_km: float) -> int:
        """Amplified spans on a route of ``total_km`` (at least 1)."""
        if total_km <= 0:
            raise ConfigurationError(f"distance must be positive, got {total_km}")
        return max(1, math.ceil(total_km / self.span_km))

    def osnr_db(self, total_km: float) -> float:
        """Receiver OSNR after ``total_km`` of amplified fiber."""
        spans = self.span_count(total_km)
        return (
            58.0
            + self.launch_power_dbm
            - self.noise_figure_db
            - self.span_loss_db
            - 10.0 * math.log10(spans)
        )

    # -- requirements -----------------------------------------------------------

    def required_osnr_db(self, rate_bps: float) -> float:
        """The receiver requirement for a line rate.

        Raises:
            SignalError: for a rate with no requirement entry.
        """
        try:
            return self._required[rate_bps]
        except KeyError:
            known = ", ".join(f"{r / GBPS:g}G" for r in sorted(self._required))
            raise SignalError(
                f"no OSNR requirement for {rate_bps / GBPS:g}G "
                f"(known rates: {known})"
            ) from None

    def viable(self, total_km: float, rate_bps: float) -> bool:
        """Whether a route of this length closes at this rate."""
        return self.osnr_db(total_km) >= self.required_osnr_db(rate_bps)

    def margin_db(
        self, total_km: float, rate_bps: float, penalty_db: float = 0.0
    ) -> float:
        """OSNR margin over the receiver requirement, in dB.

        ``penalty_db`` is the extra impairment from gray failures
        (amplifier gain error, drifting OSNR, creeping attenuation)
        accumulated along the route; a negative result means the signal
        no longer closes.
        """
        if penalty_db < 0:
            raise ConfigurationError(
                f"penalty must be >= 0, got {penalty_db}"
            )
        return (
            self.osnr_db(total_km)
            - penalty_db
            - self.required_osnr_db(rate_bps)
        )

    def max_reach_km(self, rate_bps: float) -> float:
        """The derived distance budget for a rate.

        Solves the budget for the largest integer span count meeting the
        requirement, then converts back to kilometers.
        """
        margin = (
            58.0
            + self.launch_power_dbm
            - self.noise_figure_db
            - self.span_loss_db
            - self.required_osnr_db(rate_bps)
        )
        if margin < 0:
            raise SignalError(
                f"{rate_bps / GBPS:g}G cannot close even one span "
                f"(margin {margin:.1f} dB)"
            )
        max_spans = int(10 ** (margin / 10.0))
        return max(1, max_spans) * self.span_km

    def reach_table_km(self) -> Dict[float, float]:
        """Distance budgets for every known rate — a drop-in table for
        :class:`~repro.optical.impairments.ReachModel`."""
        return {rate: self.max_reach_km(rate) for rate in self._required}
