"""Muxponders and low-speed multiplexers.

Two aggregation devices from the testbed (paper §3):

* the **10G/40G muxponder** has four 10 Gbps client ports and one
  40 Gbps line port — it emulates the customer's network-terminating
  equipment and the "fat pipe" metro access into the core;
* the **1G/10G low-speed mux** aggregates Gigabit-Ethernet feeds from
  the customer's Ethernet switches onto a 10 Gbps channelized line.

Both are *static* TDM multiplexers: a client port maps to a fixed slice
of the line, so unlike the OTN switch they cannot re-groom traffic — the
source of the packing inefficiency measured in experiment X3.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CapacityExceededError, ConfigurationError, EquipmentError
from repro.units import GBPS


class Muxponder:
    """A fixed client-to-line TDM multiplexer.

    The default shape is the testbed's 10G/40G MXP: four 10G client
    ports feeding one 40G line.
    """

    def __init__(
        self,
        mxp_id: str,
        client_rate_bps: float = 10 * GBPS,
        client_ports: int = 4,
        line_rate_bps: float = 40 * GBPS,
    ) -> None:
        if client_rate_bps <= 0 or line_rate_bps <= 0:
            raise ConfigurationError("rates must be positive")
        if client_ports < 1:
            raise ConfigurationError(f"need >= 1 client port, got {client_ports}")
        if client_ports * client_rate_bps > line_rate_bps:
            raise ConfigurationError(
                f"{client_ports} x {client_rate_bps / GBPS:g}G clients "
                f"oversubscribe a {line_rate_bps / GBPS:g}G line"
            )
        self.mxp_id = mxp_id
        self.client_rate_bps = client_rate_bps
        self.client_port_count = client_ports
        self.line_rate_bps = line_rate_bps
        self._owners: Dict[int, str] = {}

    def occupy_client_port(self, port: int, owner: str) -> None:
        """Claim client port ``port`` for ``owner``.

        Raises:
            EquipmentError: for an unknown or busy port.
        """
        self._validate(port)
        current = self._owners.get(port)
        if current is not None:
            raise EquipmentError(
                f"{self.mxp_id} client port {port} is held by {current!r}"
            )
        self._owners[port] = owner

    def release_client_port(self, port: int, owner: str) -> None:
        """Release client port ``port``.

        Raises:
            EquipmentError: if idle or held by someone else.
        """
        self._validate(port)
        current = self._owners.get(port)
        if current is None:
            raise EquipmentError(f"{self.mxp_id} client port {port} is idle")
        if current != owner:
            raise EquipmentError(
                f"{self.mxp_id} client port {port} is held by {current!r}, "
                f"not {owner!r}"
            )
        del self._owners[port]

    def allocate_client_port(self, owner: str) -> int:
        """Claim the lowest-numbered free client port; returns its index.

        Raises:
            CapacityExceededError: if every client port is busy.
        """
        for port in range(self.client_port_count):
            if port not in self._owners:
                self._owners[port] = owner
                return port
        raise CapacityExceededError(f"{self.mxp_id} has no free client port")

    def free_client_ports(self) -> List[int]:
        """Indices of idle client ports."""
        return [p for p in range(self.client_port_count) if p not in self._owners]

    def owner_of(self, port: int) -> Optional[str]:
        """Who holds client port ``port``, or None."""
        self._validate(port)
        return self._owners.get(port)

    def line_fill(self) -> float:
        """Fraction of the line rate actually carrying client traffic."""
        return (len(self._owners) * self.client_rate_bps) / self.line_rate_bps

    def _validate(self, port: int) -> None:
        if not 0 <= port < self.client_port_count:
            raise EquipmentError(
                f"{self.mxp_id} has no client port {port} "
                f"(ports: 0..{self.client_port_count - 1})"
            )

    def __repr__(self) -> str:
        return (
            f"Muxponder({self.mxp_id}, "
            f"{self.client_port_count}x{self.client_rate_bps / GBPS:g}G -> "
            f"{self.line_rate_bps / GBPS:g}G, used={len(self._owners)})"
        )


class LowSpeedMux(Muxponder):
    """The testbed's 1G/10G multiplexer: ten 1G feeds onto a 10G line."""

    def __init__(self, mux_id: str) -> None:
        super().__init__(
            mux_id,
            client_rate_bps=1 * GBPS,
            client_ports=10,
            line_rate_bps=10 * GBPS,
        )
