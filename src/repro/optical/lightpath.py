"""End-to-end wavelength connections (lightpaths).

A lightpath is the DWDM-layer realization of a full-wavelength service:
a route through the ROADM mesh, a wavelength assignment per regen-free
segment, the transponders at its ends, and any regenerators in the
middle.  The object itself is a passive record; allocation and EMS
choreography live in :mod:`repro.core`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConnectionStateError


class LightpathState(enum.Enum):
    """Life cycle of a lightpath."""

    PLANNED = "planned"
    SETTING_UP = "setting_up"
    UP = "up"
    FAILED = "failed"
    TEARING_DOWN = "tearing_down"
    RELEASED = "released"


#: Transitions the state machine allows.
_ALLOWED = {
    LightpathState.PLANNED: {LightpathState.SETTING_UP, LightpathState.RELEASED},
    LightpathState.SETTING_UP: {LightpathState.UP, LightpathState.RELEASED},
    LightpathState.UP: {LightpathState.FAILED, LightpathState.TEARING_DOWN},
    LightpathState.FAILED: {LightpathState.TEARING_DOWN, LightpathState.UP},
    LightpathState.TEARING_DOWN: {LightpathState.RELEASED},
    LightpathState.RELEASED: set(),
}


@dataclass
class Segment:
    """One regen-free stretch of a lightpath with a single wavelength.

    Attributes:
        nodes: Node path of the segment (>= 2 nodes).
        channel: The wavelength channel used end-to-end on this segment.
    """

    nodes: List[str]
    channel: int

    @property
    def links(self) -> List[Tuple[str, str]]:
        """Canonical link keys along the segment."""
        keys = []
        for u, v in zip(self.nodes, self.nodes[1:]):
            keys.append((u, v) if u <= v else (v, u))
        return keys


@dataclass
class Lightpath:
    """One wavelength connection through the ROADM mesh.

    Attributes:
        lightpath_id: Unique id (the *owner* string used on all resources).
        path: Full node path from source ROADM to destination ROADM.
        rate_bps: Line rate of the wavelength (e.g. 10G or 40G).
        segments: Per-regen-segment wavelength assignments; a path with no
            regens has exactly one segment covering the whole path.
        regen_sites: Nodes hosting a regenerator for this lightpath.
        ot_ids: Transponder ids at the two ends.
        regen_ids: Regenerator ids in path order.
    """

    lightpath_id: str
    path: List[str]
    rate_bps: float
    segments: List[Segment] = field(default_factory=list)
    regen_sites: List[str] = field(default_factory=list)
    ot_ids: List[str] = field(default_factory=list)
    regen_ids: List[str] = field(default_factory=list)
    state: LightpathState = LightpathState.PLANNED
    setup_started_at: Optional[float] = None
    up_at: Optional[float] = None
    released_at: Optional[float] = None
    #: The EquipmentError that aborted setup (None on the happy path);
    #: set by the provisioning saga when it rolls the lightpath back.
    setup_error: Optional[Exception] = None

    @property
    def source(self) -> str:
        """First node of the path."""
        return self.path[0]

    @property
    def destination(self) -> str:
        """Last node of the path."""
        return self.path[-1]

    @property
    def hop_count(self) -> int:
        """Number of ROADM-layer hops (links) on the path."""
        return len(self.path) - 1

    @property
    def channels(self) -> List[int]:
        """The wavelength channel of each segment, in order."""
        return [segment.channel for segment in self.segments]

    def transition(self, new_state: LightpathState) -> None:
        """Move the state machine to ``new_state``.

        Raises:
            ConnectionStateError: for a disallowed transition.
        """
        if new_state not in _ALLOWED[self.state]:
            raise ConnectionStateError(
                f"lightpath {self.lightpath_id}: cannot go "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def __str__(self) -> str:
        route = " - ".join(self.path)
        return f"{self.lightpath_id} [{self.state.value}] {route}"
