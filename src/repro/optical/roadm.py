"""Multi-degree ROADM nodes with colorless, non-directional add/drop.

A ROADM has one *degree* per inter-node fiber pair and a bank of
add/drop ports where transponders attach.  Modern deployments (and the
GRIPhoN testbed) use ports that are both **colorless** — any port can
carry any wavelength — and **non-directional** ("steerable") — any
port's signal can be routed to any degree.  Both properties are modeled
as flags so ablation experiments can quantify what they buy.

Per degree, a wavelength can be used by at most one signal; the ROADM
enforces that invariant across add/drop and express connections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import (
    ConfigurationError,
    EquipmentError,
    WavelengthBlockedError,
)
from repro.optical.wavelength import WavelengthGrid


@dataclass
class AddDropPort:
    """One add/drop port on a ROADM.

    Attributes:
        port_id: Unique id within the node, e.g. ``'AD:ROADM-I:2'``.
        fixed_degree: For directional (non-steerable) ports, the only
            degree this port can reach; ``None`` means non-directional.
        fixed_channel: For colored ports, the only channel this port can
            carry; ``None`` means colorless.
    """

    port_id: str
    fixed_degree: Optional[str] = None
    fixed_channel: Optional[int] = None
    connected_degree: Optional[str] = None
    connected_channel: Optional[int] = None
    owner: Optional[str] = None

    @property
    def in_use(self) -> bool:
        """True while the port carries a signal."""
        return self.owner is not None


class Roadm:
    """One reconfigurable optical add/drop multiplexer node."""

    def __init__(
        self,
        name: str,
        grid: WavelengthGrid,
        colorless: bool = True,
        non_directional: bool = True,
    ) -> None:
        self.name = name
        self._grid = grid
        self._colorless = colorless
        self._non_directional = non_directional
        self._degrees: Set[str] = set()
        self._ports: Dict[str, AddDropPort] = {}
        self._port_counter = 0
        # degree -> channel -> owner, covering add/drop and express usage.
        self._degree_channels: Dict[str, Dict[int, str]] = {}
        # (deg_in, deg_out, channel) -> owner for express connections.
        self._express: Dict[Tuple[str, str, int], str] = {}

    # -- construction --------------------------------------------------------

    @property
    def degrees(self) -> Set[str]:
        """Neighbor node names this ROADM has fiber degrees toward."""
        return set(self._degrees)

    @property
    def degree_count(self) -> int:
        """The ROADM's degree (2-degree, 3-degree, ...)."""
        return len(self._degrees)

    def add_degree(self, toward: str) -> None:
        """Add a fiber degree toward neighbor node ``toward``."""
        if toward == self.name:
            raise ConfigurationError(f"ROADM {self.name} cannot face itself")
        if toward in self._degrees:
            raise ConfigurationError(
                f"ROADM {self.name} already has a degree toward {toward}"
            )
        self._degrees.add(toward)
        self._degree_channels[toward] = {}

    def add_ports(
        self,
        count: int,
        fixed_degree: Optional[str] = None,
        fixed_channel: Optional[int] = None,
    ) -> List[AddDropPort]:
        """Install add/drop ports.

        For a colorless, non-directional ROADM leave both ``fixed_*``
        arguments as ``None``.  Directional ROADMs must pin each port to
        a degree; colored ROADMs must pin each port to a channel.
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        if not self._non_directional and fixed_degree is None:
            raise ConfigurationError(
                f"ROADM {self.name} is directional; ports need a fixed_degree"
            )
        if not self._colorless and fixed_channel is None:
            raise ConfigurationError(
                f"ROADM {self.name} is colored; ports need a fixed_channel"
            )
        if fixed_degree is not None and fixed_degree not in self._degrees:
            raise ConfigurationError(
                f"ROADM {self.name} has no degree toward {fixed_degree}"
            )
        if fixed_channel is not None:
            self._grid.validate(fixed_channel)
        created = []
        for _ in range(count):
            port_id = f"AD:{self.name}:{self._port_counter}"
            self._port_counter += 1
            port = AddDropPort(port_id, fixed_degree, fixed_channel)
            self._ports[port_id] = port
            created.append(port)
        return created

    # -- lookup ----------------------------------------------------------------

    @property
    def ports(self) -> List[AddDropPort]:
        """All add/drop ports."""
        return list(self._ports.values())

    def port(self, port_id: str) -> AddDropPort:
        """Look up a port by id.

        Raises:
            EquipmentError: for an unknown id.
        """
        try:
            return self._ports[port_id]
        except KeyError:
            raise EquipmentError(f"no port {port_id!r} on ROADM {self.name}") from None

    def free_ports(
        self, degree: Optional[str] = None, channel: Optional[int] = None
    ) -> List[AddDropPort]:
        """Idle ports able to reach ``degree`` and carry ``channel``."""
        return [
            port
            for port in self._ports.values()
            if not port.in_use
            and (
                degree is None
                or port.fixed_degree is None
                or port.fixed_degree == degree
            )
            and (
                channel is None
                or port.fixed_channel is None
                or port.fixed_channel == channel
            )
        ]

    def channel_owner(self, degree: str, channel: int) -> Optional[str]:
        """Who uses ``channel`` on ``degree``, or None."""
        self._require_degree(degree)
        self._grid.validate(channel)
        return self._degree_channels[degree].get(channel)

    def free_channels(self, degree: str) -> Set[int]:
        """Channels unused on ``degree`` at this node."""
        self._require_degree(degree)
        used = self._degree_channels[degree]
        return {ch for ch in self._grid.channels() if ch not in used}

    # -- cross-connections --------------------------------------------------------

    def connect_add_drop(
        self, port_id: str, degree: str, channel: int, owner: str
    ) -> None:
        """Route an add/drop port's signal onto ``channel`` toward ``degree``.

        Raises:
            EquipmentError: if the port is busy or cannot reach the degree
                or channel (directional/colored restrictions).
            WavelengthBlockedError: if the channel is taken on the degree.
        """
        port = self.port(port_id)
        self._require_degree(degree)
        self._grid.validate(channel)
        if port.in_use:
            raise EquipmentError(f"port {port_id} is in use by {port.owner!r}")
        if port.fixed_degree is not None and port.fixed_degree != degree:
            raise EquipmentError(
                f"directional port {port_id} is wired to degree "
                f"{port.fixed_degree}, not {degree}"
            )
        if port.fixed_channel is not None and port.fixed_channel != channel:
            raise EquipmentError(
                f"colored port {port_id} carries channel "
                f"{port.fixed_channel}, not {channel}"
            )
        holder = self._degree_channels[degree].get(channel)
        if holder is not None:
            raise WavelengthBlockedError(
                f"channel {channel} on {self.name}->{degree} held by {holder!r}"
            )
        self._degree_channels[degree][channel] = owner
        port.connected_degree = degree
        port.connected_channel = channel
        port.owner = owner

    def disconnect_add_drop(self, port_id: str, owner: str) -> None:
        """Tear down a port's add/drop connection.

        Raises:
            EquipmentError: if the port is idle or held by someone else.
        """
        port = self.port(port_id)
        if port.owner is None:
            raise EquipmentError(f"port {port_id} is not connected")
        if port.owner != owner:
            raise EquipmentError(
                f"port {port_id} is held by {port.owner!r}, not {owner!r}"
            )
        degree = port.connected_degree
        channel = port.connected_channel
        del self._degree_channels[degree][channel]
        port.connected_degree = None
        port.connected_channel = None
        port.owner = None

    def connect_express(
        self, degree_in: str, degree_out: str, channel: int, owner: str
    ) -> None:
        """Pass ``channel`` through between two degrees without OEO.

        Raises:
            WavelengthBlockedError: if the channel is busy on either degree.
            EquipmentError: for identical degrees.
        """
        self._require_degree(degree_in)
        self._require_degree(degree_out)
        self._grid.validate(channel)
        if degree_in == degree_out:
            raise EquipmentError(
                f"express connection needs two distinct degrees, got {degree_in}"
            )
        for degree in (degree_in, degree_out):
            holder = self._degree_channels[degree].get(channel)
            if holder is not None:
                raise WavelengthBlockedError(
                    f"channel {channel} on {self.name}->{degree} held by {holder!r}"
                )
        self._degree_channels[degree_in][channel] = owner
        self._degree_channels[degree_out][channel] = owner
        self._express[(degree_in, degree_out, channel)] = owner

    def disconnect_express(
        self, degree_in: str, degree_out: str, channel: int, owner: str
    ) -> None:
        """Tear down an express connection.

        Raises:
            EquipmentError: if no such express connection exists or the
                owner does not match.
        """
        key = (degree_in, degree_out, channel)
        holder = self._express.get(key)
        if holder is None:
            raise EquipmentError(
                f"no express connection {degree_in}->{degree_out} "
                f"ch{channel} on {self.name}"
            )
        if holder != owner:
            raise EquipmentError(
                f"express connection held by {holder!r}, not {owner!r}"
            )
        del self._express[key]
        del self._degree_channels[degree_in][channel]
        del self._degree_channels[degree_out][channel]

    def express_connections(self) -> List[Tuple[str, str, int, str]]:
        """All express cross-connects as (degree_in, degree_out, channel,
        owner), sorted — the audit's view of the switching fabric."""
        return sorted(
            (a, b, channel, owner)
            for (a, b, channel), owner in self._express.items()
        )

    # -- internals ------------------------------------------------------------

    def _require_degree(self, degree: str) -> None:
        if degree not in self._degrees:
            raise EquipmentError(
                f"ROADM {self.name} has no degree toward {degree} "
                f"(degrees: {sorted(self._degrees)})"
            )

    def __repr__(self) -> str:
        return (
            f"Roadm({self.name}, degree={self.degree_count}, "
            f"ports={len(self._ports)})"
        )
