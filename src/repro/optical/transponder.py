"""Wavelength-tunable optical transponders (OTs) and per-node pools.

An OT converts a standard client-side optical signal to a tuned line-side
DWDM signal.  GRIPhoN installs OTs at ROADM add/drop ports; because the
ports are colorless and non-directional, *any* free OT at a node can
serve *any* wavelength toward *any* degree — which is exactly what makes
the FXC-based dynamic sharing of transponders worthwhile (paper §2.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import (
    ConfigurationError,
    SignalError,
    TransponderUnavailableError,
)
from repro.optical.wavelength import WavelengthGrid
from repro.units import GBPS, format_rate


class Transponder:
    """One tunable OT.

    Attributes:
        ot_id: Unique identifier, e.g. ``'OT:ROADM-I:3'``.
        node: The ROADM node hosting this OT.
        line_rate_bps: Line-side rate (10G or 40G in the testbed).
    """

    def __init__(
        self, ot_id: str, node: str, line_rate_bps: float, grid: WavelengthGrid
    ) -> None:
        if line_rate_bps <= 0:
            raise ConfigurationError(
                f"line rate must be positive, got {line_rate_bps}"
            )
        self.ot_id = ot_id
        self.node = node
        self.line_rate_bps = line_rate_bps
        self._grid = grid
        self._channel: Optional[int] = None
        self._owner: Optional[str] = None
        self._failed = False

    @property
    def in_use(self) -> bool:
        """True while the OT is allocated to a lightpath."""
        return self._owner is not None

    @property
    def failed(self) -> bool:
        """True while the OT hardware is failed (awaiting replacement)."""
        return self._failed

    def fail(self) -> Optional[str]:
        """Mark the OT failed; returns the owner whose signal just died.

        A failed OT keeps its owner — the lightpath still holds the card
        until restoration or teardown releases it — but cannot be
        allocated again until :meth:`repair`.
        """
        self._failed = True
        return self._owner

    def repair(self) -> None:
        """Replace the failed card; the OT is allocatable again."""
        self._failed = False

    @property
    def channel(self) -> Optional[int]:
        """The channel the laser is tuned to, or None when idle."""
        return self._channel

    @property
    def owner(self) -> Optional[str]:
        """The lightpath id holding this OT, or None."""
        return self._owner

    def allocate(self, owner: str) -> None:
        """Reserve the OT for a lightpath.

        Raises:
            TransponderUnavailableError: if the OT is already in use or
                its hardware is failed.
        """
        if self._failed:
            raise TransponderUnavailableError(
                f"{self.ot_id} hardware is failed"
            )
        if self._owner is not None:
            raise TransponderUnavailableError(
                f"{self.ot_id} is already held by {self._owner!r}"
            )
        self._owner = owner

    def tune(self, channel: int) -> None:
        """Tune the laser to ``channel``.

        Raises:
            SignalError: if the OT has not been allocated first.
            ConfigurationError: for an off-grid channel.
        """
        if self._owner is None:
            raise SignalError(f"{self.ot_id} must be allocated before tuning")
        self._grid.validate(channel)
        self._channel = channel

    def release(self, owner: str) -> None:
        """Free the OT and detune the laser.

        Raises:
            TransponderUnavailableError: if ``owner`` does not hold the OT.
        """
        if self._owner != owner:
            raise TransponderUnavailableError(
                f"{self.ot_id} is held by {self._owner!r}, not {owner!r}"
            )
        self._owner = None
        self._channel = None

    def __repr__(self) -> str:
        state = f"owner={self._owner!r}" if self._owner else "idle"
        return (
            f"Transponder({self.ot_id}, {format_rate(self.line_rate_bps)}, {state})"
        )


class TransponderPool:
    """The OTs installed at one node, grouped by line rate.

    The pool is the unit of the carrier's resource planning problem
    (paper §4): too few OTs means blocked BoD requests, too many means
    stranded capital.
    """

    def __init__(self, node: str, grid: WavelengthGrid) -> None:
        self.node = node
        self._grid = grid
        self._transponders: Dict[str, Transponder] = {}
        self._counter = 0

    def install(self, line_rate_bps: float, count: int = 1) -> List[Transponder]:
        """Install ``count`` new OTs of the given rate; returns them."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        created = []
        for _ in range(count):
            ot_id = f"OT:{self.node}:{self._counter}"
            self._counter += 1
            ot = Transponder(ot_id, self.node, line_rate_bps, self._grid)
            self._transponders[ot_id] = ot
            created.append(ot)
        return created

    @property
    def transponders(self) -> List[Transponder]:
        """All installed OTs."""
        return list(self._transponders.values())

    def get(self, ot_id: str) -> Transponder:
        """Look up an OT by id.

        Raises:
            TransponderUnavailableError: for an unknown id.
        """
        try:
            return self._transponders[ot_id]
        except KeyError:
            raise TransponderUnavailableError(
                f"no transponder {ot_id!r} at {self.node}"
            ) from None

    def free(self, line_rate_bps: Optional[float] = None) -> List[Transponder]:
        """Idle, healthy OTs, optionally filtered to one line rate."""
        return [
            ot
            for ot in self._transponders.values()
            if not ot.in_use
            and not ot.failed
            and (line_rate_bps is None or ot.line_rate_bps == line_rate_bps)
        ]

    def allocate(self, line_rate_bps: float, owner: str) -> Transponder:
        """Allocate the first idle OT at the given rate.

        Raises:
            TransponderUnavailableError: if none is free.
        """
        candidates = self.free(line_rate_bps)
        if not candidates:
            raise TransponderUnavailableError(
                f"no free {line_rate_bps / GBPS:g}G transponder at {self.node}"
            )
        chosen = candidates[0]
        chosen.allocate(owner)
        return chosen

    def utilization(self, line_rate_bps: Optional[float] = None) -> float:
        """Fraction of matching OTs in use (0 if none installed)."""
        matching = [
            ot
            for ot in self._transponders.values()
            if line_rate_bps is None or ot.line_rate_bps == line_rate_bps
        ]
        if not matching:
            return 0.0
        return sum(ot.in_use for ot in matching) / len(matching)
