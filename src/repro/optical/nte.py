"""Network-terminating equipment (NTE) on the customer premises.

The NTE is the demarcation point: the customer sees only its interfaces
— channelized for sub-wavelength connections, un-channelized for full
wavelength connections (paper §2.2, "Customer GUI").  In the testbed a
10G/40G muxponder emulates the NTE, with four 10G client ports on the
customer side and a 40G line toward the carrier's central office.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CapacityExceededError, ConfigurationError, EquipmentError
from repro.units import GBPS, format_rate


class NetworkTerminatingEquipment:
    """The customer-facing demarcation box at one premises.

    Exposes a fixed set of client interfaces.  Each interface is either
    *channelized* (carries multiple sub-rate channels, e.g. 10 x 1G) or
    *un-channelized* (one signal at the full interface rate).
    """

    def __init__(
        self,
        nte_id: str,
        premises: str,
        interface_rate_bps: float = 10 * GBPS,
        interface_count: int = 4,
        subchannel_rate_bps: float = 1 * GBPS,
    ) -> None:
        if interface_rate_bps <= 0:
            raise ConfigurationError("interface rate must be positive")
        if interface_count < 1:
            raise ConfigurationError(
                f"need >= 1 interface, got {interface_count}"
            )
        if subchannel_rate_bps <= 0 or subchannel_rate_bps > interface_rate_bps:
            raise ConfigurationError(
                "subchannel rate must be positive and fit the interface"
            )
        self.nte_id = nte_id
        self.premises = premises
        self.interface_rate_bps = interface_rate_bps
        self.interface_count = interface_count
        #: Sub-channels per channelized interface (e.g. ten 1G in a 10G).
        self.subchannels_per_interface = int(
            interface_rate_bps / subchannel_rate_bps
        )
        self._owners: Dict[int, str] = {}
        self._channelized: Dict[int, bool] = {}
        # (interface, subchannel) -> owner, for channelized interfaces.
        self._subchannel_owner: Dict[tuple, str] = {}

    def claim_interface(self, owner: str, channelized: bool) -> int:
        """Claim the lowest free interface; returns its index.

        Args:
            owner: The connection id taking the interface.
            channelized: True for sub-wavelength service, False for a
                full-wavelength service.

        Raises:
            CapacityExceededError: if all interfaces are in use.
        """
        for index in range(self.interface_count):
            if index not in self._owners:
                self._owners[index] = owner
                self._channelized[index] = channelized
                return index
        raise CapacityExceededError(
            f"{self.nte_id} at {self.premises} has no free interface"
        )

    def release_interface(self, index: int, owner: str) -> None:
        """Release interface ``index``.

        Raises:
            EquipmentError: if idle, unknown, or held by someone else.
        """
        self._validate(index)
        current = self._owners.get(index)
        if current is None:
            raise EquipmentError(f"{self.nte_id} interface {index} is idle")
        if current != owner:
            raise EquipmentError(
                f"{self.nte_id} interface {index} is held by {current!r}, "
                f"not {owner!r}"
            )
        del self._owners[index]
        del self._channelized[index]

    def claim_subchannel(self, owner: str) -> tuple:
        """Claim one sub-channel on a channelized interface.

        Channelized interfaces are shared: the 1/10G multiplexer
        aggregates up to ``subchannels_per_interface`` customer feeds
        onto one interface.  A new channelized interface is claimed
        (owned by the NTE's mux, tagged ``'shared'``) only when every
        existing one is full.

        Returns:
            ``(interface_index, subchannel_index)``.

        Raises:
            CapacityExceededError: when everything is full.
        """
        for index in range(self.interface_count):
            if not self._channelized.get(index, False):
                continue
            for sub in range(self.subchannels_per_interface):
                if (index, sub) not in self._subchannel_owner:
                    self._subchannel_owner[(index, sub)] = owner
                    return index, sub
        index = self.claim_interface("shared", channelized=True)
        self._subchannel_owner[(index, 0)] = owner
        return index, 0

    def release_subchannel(self, index: int, sub: int, owner: str) -> None:
        """Release a sub-channel; frees the interface when it empties.

        Raises:
            EquipmentError: if the sub-channel is idle or not ``owner``'s.
        """
        current = self._subchannel_owner.get((index, sub))
        if current is None:
            raise EquipmentError(
                f"{self.nte_id} interface {index} sub {sub} is idle"
            )
        if current != owner:
            raise EquipmentError(
                f"{self.nte_id} interface {index} sub {sub} is held by "
                f"{current!r}, not {owner!r}"
            )
        del self._subchannel_owner[(index, sub)]
        if not any(i == index for i, _ in self._subchannel_owner):
            self.release_interface(index, "shared")

    def subchannel_owner(self, index: int, sub: int) -> Optional[str]:
        """Who holds a sub-channel, or None."""
        return self._subchannel_owner.get((index, sub))

    def owner_of(self, index: int) -> Optional[str]:
        """Who holds interface ``index``, or None."""
        self._validate(index)
        return self._owners.get(index)

    def is_channelized(self, index: int) -> bool:
        """Whether interface ``index`` is configured channelized.

        Raises:
            EquipmentError: if the interface is idle.
        """
        self._validate(index)
        if index not in self._channelized:
            raise EquipmentError(f"{self.nte_id} interface {index} is idle")
        return self._channelized[index]

    def free_interfaces(self) -> List[int]:
        """Indices of unclaimed interfaces."""
        return [i for i in range(self.interface_count) if i not in self._owners]

    def customer_view(self) -> List[str]:
        """The interface table the customer GUI shows for this premises."""
        rows = []
        for index in range(self.interface_count):
            owner = self._owners.get(index)
            if owner is None:
                status = "free"
            elif self._channelized[index]:
                used = sum(1 for i, _ in self._subchannel_owner if i == index)
                if owner == "shared":
                    status = (
                        f"channelized, {used}/"
                        f"{self.subchannels_per_interface} sub-channels"
                    )
                else:
                    status = f"channelized for {owner}"
            else:
                status = f"wavelength for {owner}"
            rows.append(
                f"{self.nte_id} if{index} "
                f"[{format_rate(self.interface_rate_bps)}]: {status}"
            )
        return rows

    def _validate(self, index: int) -> None:
        if not 0 <= index < self.interface_count:
            raise EquipmentError(
                f"{self.nte_id} has no interface {index} "
                f"(interfaces: 0..{self.interface_count - 1})"
            )
