"""The ITU-T DWDM channel grid.

A modern DWDM system carries 40–100 wavelengths on the C band (the paper,
§2.1).  We model a fixed 50 GHz grid anchored at 193.1 THz: channel ``i``
sits at ``193.1 THz + i * 50 GHz``.  Channels are identified by integer
index throughout the library; this module converts between index,
frequency, and nanometer wavelength for display.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ConfigurationError

#: Anchor frequency of the ITU grid in THz.
ITU_ANCHOR_THZ = 193.1

#: Grid spacing in THz (50 GHz).
GRID_SPACING_THZ = 0.05

#: Speed of light, used for frequency -> wavelength conversion (nm * THz).
_C_NM_THZ = 299_792.458


class WavelengthGrid:
    """A fixed DWDM channel grid of ``size`` channels.

    Channel indices run from 0 to ``size - 1``.  The default of 80
    channels matches a modern C-band system (paper: "anywhere from 40 to
    100 wavelengths").
    """

    def __init__(self, size: int = 80) -> None:
        if size < 1:
            raise ConfigurationError(f"grid size must be >= 1, got {size}")
        self._size = size

    @property
    def size(self) -> int:
        """Number of channels in the grid."""
        return self._size

    def channels(self) -> Iterator[int]:
        """Iterate all channel indices in ascending order."""
        return iter(range(self._size))

    def validate(self, channel: int) -> int:
        """Return ``channel`` if it is on the grid.

        Raises:
            ConfigurationError: for an off-grid index.
        """
        if not 0 <= channel < self._size:
            raise ConfigurationError(
                f"channel {channel} is off the grid [0, {self._size})"
            )
        return channel

    def frequency_thz(self, channel: int) -> float:
        """Center frequency of ``channel`` in THz."""
        self.validate(channel)
        return ITU_ANCHOR_THZ + channel * GRID_SPACING_THZ

    def wavelength_nm(self, channel: int) -> float:
        """Center wavelength of ``channel`` in nanometers."""
        return _C_NM_THZ / self.frequency_thz(channel)

    def channel_name(self, channel: int) -> str:
        """Human-readable channel label, e.g. ``'ch012 (1549.32 nm)'``."""
        self.validate(channel)
        return f"ch{channel:03d} ({self.wavelength_nm(channel):.2f} nm)"

    def __contains__(self, channel: object) -> bool:
        return isinstance(channel, int) and 0 <= channel < self._size

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"WavelengthGrid(size={self._size})"
