"""Amplifier chains along a fiber link and power-transient bookkeeping.

Long-haul fiber is amplified every ~80 km by EDFAs.  Two aspects matter
to GRIPhoN (paper §4, "DWDM layer management"):

* the *amplifier count* on a path contributes to OSNR degradation and
  hence to the optical reach limit (see :mod:`repro.optical.impairments`);
* adding or dropping a wavelength perturbs amplifier gain on every span
  it traverses — a *power transient* that the line system must settle
  before the new channel is error-free.  The settle time contributes to
  connection establishment latency and scales with span count, which is
  one reason Table 2's setup time grows with path length.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: Default EDFA spacing in kilometers.
DEFAULT_SPAN_KM = 80.0

#: Per-amplifier settle time for a power transient, in seconds.  With a
#: handful of amplifiers per lab link this yields the ~1 s-scale optical
#: contribution the testbed observed on top of EMS latency.
DEFAULT_SETTLE_PER_AMP_S = 0.35


class AmplifierChain:
    """The EDFA chain on one fiber link.

    Attributes:
        length_km: Fiber length of the link.
        span_km: Amplifier spacing.
    """

    #: Default per-span gain target: exactly compensating an 80 km span
    #: at 0.25 dB/km.  The provisioned value is recorded in inventory so
    #: the invariant auditor can cross-check the live setting.
    DEFAULT_GAIN_DB = 20.0

    def __init__(
        self,
        length_km: float,
        span_km: float = DEFAULT_SPAN_KM,
        settle_per_amp_s: float = DEFAULT_SETTLE_PER_AMP_S,
        target_gain_db: float = DEFAULT_GAIN_DB,
    ) -> None:
        if length_km <= 0:
            raise ConfigurationError(f"length must be positive, got {length_km}")
        if span_km <= 0:
            raise ConfigurationError(f"span must be positive, got {span_km}")
        if settle_per_amp_s < 0:
            raise ConfigurationError(
                f"settle time must be >= 0, got {settle_per_amp_s}"
            )
        self.length_km = length_km
        self.span_km = span_km
        self._settle_per_amp_s = settle_per_amp_s
        #: The provisioned (inventory-recorded) per-amp gain setting.
        self.target_gain_db = target_gain_db
        #: The live gain setting, mutated by gray-failure injection and
        #: restored by remediation; audited against the target.
        self.gain_db = target_gain_db

    def set_gain(self, gain_db: float) -> None:
        """Set the live per-amp gain (gray-failure injection)."""
        self.gain_db = gain_db

    def reset_gain(self) -> None:
        """Restore the live gain to the provisioned target."""
        self.gain_db = self.target_gain_db

    @property
    def gain_error_db(self) -> float:
        """Absolute deviation of the live gain from the target, in dB."""
        return abs(self.gain_db - self.target_gain_db)

    @property
    def amplifier_count(self) -> int:
        """Number of amplified spans on the link (at least 1).

        Counts the terminal amplifier too, so an 80 km lab link has one
        amplifier and a 400 km route has five.
        """
        return max(1, math.ceil(self.length_km / self.span_km))

    def transient_settle_time(self) -> float:
        """Seconds for the chain to settle after a channel add/drop."""
        return self.amplifier_count * self._settle_per_amp_s

    def __repr__(self) -> str:
        return (
            f"AmplifierChain(length_km={self.length_km}, "
            f"amps={self.amplifier_count})"
        )
