"""Per-link DWDM wavelength occupancy and fiber failure state.

A :class:`DwdmLink` wraps one topology link with a wavelength grid: it
tracks which channels are lit, who owns them, and whether the fiber is
cut.  :class:`FiberPlant` is the collection of all DWDM links in the
network plus SRLG-aware failure injection (a conduit cut fails every
link sharing the SRLG).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ResourceError, TopologyError, WavelengthBlockedError
from repro.optical.wavelength import WavelengthGrid
from repro.topo.graph import Link, NetworkGraph


def _mask_to_set(mask: int) -> Set[int]:
    """Expand a free-channel bitmask into the public ``Set[int]`` form."""
    result: Set[int] = set()
    while mask:
        low = mask & -mask
        result.add(low.bit_length() - 1)
        mask ^= low
    return result


class DwdmLink:
    """Wavelength occupancy on one bidirectional fiber pair.

    Channels are occupied by string *owners* (lightpath ids), enabling
    diagnostics ("which connection holds channel 7 on NYC=CHI?") and
    failure localization.
    """

    def __init__(self, link: Link, grid: WavelengthGrid) -> None:
        self._link = link
        self._grid = grid
        self._owners: Dict[int, str] = {}
        # Bit i set <=> channel i free.  Kept in lockstep with _owners so
        # path-wide intersection is a chain of integer ANDs.
        self._free_mask = (1 << grid.size) - 1
        self._failed = False
        # Gray-failure state: OSNR penalties keyed by cause string (one
        # entry per active degradation, e.g. "osnr-drift:2").  Unlike a
        # cut, a degraded fiber still carries traffic — just with less
        # margin — so this never touches occupancy or the failed flag.
        self._degradations: Dict[str, float] = {}

    @property
    def link(self) -> Link:
        """The underlying topology link."""
        return self._link

    @property
    def grid(self) -> WavelengthGrid:
        """The channel grid this link carries."""
        return self._grid

    @property
    def failed(self) -> bool:
        """True while the fiber is cut."""
        return self._failed

    @property
    def occupied_channels(self) -> Set[int]:
        """Channels currently lit on this link."""
        return set(self._owners)

    def free_channels(self) -> Set[int]:
        """Channels available for a new lightpath."""
        return _mask_to_set(self._free_mask)

    def free_mask(self) -> int:
        """Occupancy as an integer bitmask: bit ``i`` set iff channel ``i`` is free."""
        return self._free_mask

    def owner_of(self, channel: int) -> Optional[str]:
        """The owner of ``channel``, or ``None`` if it is dark."""
        self._grid.validate(channel)
        return self._owners.get(channel)

    def occupy(self, channel: int, owner: str) -> None:
        """Light ``channel`` for ``owner``.

        Raises:
            WavelengthBlockedError: if the channel is already lit.
            ResourceError: if the fiber is currently cut.
        """
        self._grid.validate(channel)
        if self._failed:
            raise ResourceError(f"link {self._link} is failed")
        current = self._owners.get(channel)
        if current is not None:
            raise WavelengthBlockedError(
                f"channel {channel} on {self._link} is held by {current!r}"
            )
        self._owners[channel] = owner
        self._free_mask &= ~(1 << channel)

    def release(self, channel: int, owner: str) -> None:
        """Darken ``channel``, verifying the caller owns it.

        Raises:
            ResourceError: if the channel is dark or held by someone else.
        """
        self._grid.validate(channel)
        current = self._owners.get(channel)
        if current is None:
            raise ResourceError(f"channel {channel} on {self._link} is not lit")
        if current != owner:
            raise ResourceError(
                f"channel {channel} on {self._link} is held by {current!r}, "
                f"not {owner!r}"
            )
        del self._owners[channel]
        self._free_mask |= 1 << channel

    def fail(self) -> Set[str]:
        """Cut the fiber; returns the owners whose channels were affected.

        Occupancy is preserved so restoration logic can see what was
        riding the link when it failed.
        """
        self._failed = True
        return set(self._owners.values())

    def repair(self) -> None:
        """Repair the fiber."""
        self._failed = False

    def utilization(self) -> float:
        """Fraction of channels lit, in [0, 1]."""
        return len(self._owners) / self._grid.size

    # -- gray-failure state ------------------------------------------------------

    def set_degradation(self, cause: str, penalty_db: float) -> None:
        """Record an OSNR penalty on this link attributed to ``cause``.

        Raises:
            ResourceError: if the penalty is negative.
        """
        if penalty_db < 0:
            raise ResourceError(
                f"degradation penalty must be >= 0, got {penalty_db}"
            )
        self._degradations[cause] = penalty_db

    def clear_degradation(self, cause: str) -> None:
        """Remove the penalty attributed to ``cause`` (idempotent)."""
        self._degradations.pop(cause, None)

    @property
    def osnr_penalty_db(self) -> float:
        """Total OSNR penalty from all active degradations, in dB."""
        return sum(self._degradations.values())

    def degradation_causes(self) -> List[str]:
        """Active degradation causes, in insertion order."""
        return list(self._degradations)


class FiberPlant:
    """All DWDM links of a network, with SRLG-aware failure injection."""

    def __init__(self, graph: NetworkGraph, grid: Optional[WavelengthGrid] = None) -> None:
        self._graph = graph
        self._grid = grid or WavelengthGrid()
        self._links: Dict[Tuple[str, str], DwdmLink] = {
            link.key: DwdmLink(link, self._grid) for link in graph.links
        }
        self._failure_epoch = 0
        #: Callbacks invoked with (link_key, affected_owners) on each cut.
        self.on_failure: List[Callable[[Tuple[str, str], Set[str]], None]] = []

    @property
    def graph(self) -> NetworkGraph:
        """The underlying topology."""
        return self._graph

    @property
    def grid(self) -> WavelengthGrid:
        """The shared wavelength grid."""
        return self._grid

    @property
    def failure_epoch(self) -> int:
        """Monotonic counter bumped on every fiber cut or repair.

        Route caches stamp entries with this value so failure-state
        changes invalidate exactly the plans they could affect.
        """
        return self._failure_epoch

    def dwdm_link(self, a: str, b: str) -> DwdmLink:
        """The DWDM state for the link joining ``a`` and ``b``.

        Links added to the topology after the plant was built are picked
        up lazily, with all channels dark.

        Raises:
            TopologyError: if no such link exists.
        """
        key = (a, b) if a <= b else (b, a)
        try:
            return self._links[key]
        except KeyError:
            link = self._graph.link_between(a, b)  # raises TopologyError
            dwdm = DwdmLink(link, self._grid)
            self._links[key] = dwdm
            return dwdm

    def links_on_path(self, path: List[str]) -> List[DwdmLink]:
        """DWDM link states along a node path."""
        return [self.dwdm_link(u, v) for u, v in zip(path, path[1:])]

    def path_is_up(self, path: List[str]) -> bool:
        """True if no link along the path is failed."""
        return all(not link.failed for link in self.links_on_path(path))

    def common_free_mask(self, path: List[str]) -> int:
        """Bitmask of channels free on *every* link of the path."""
        mask = (1 << self._grid.size) - 1
        for link in self.links_on_path(path):
            mask &= link.free_mask()
            if not mask:
                break
        return mask

    def common_free_channels(self, path: List[str]) -> Set[int]:
        """Channels free on *every* link of the path.

        This is the wavelength-continuity constraint: without OEO
        conversion a lightpath must use one channel end to end.  The
        intersection is computed as a chain of integer ANDs over the
        per-link free masks, with one mask-to-set conversion at the end.
        """
        return _mask_to_set(self.common_free_mask(path))

    # -- failure injection ------------------------------------------------------

    def cut_link(self, a: str, b: str) -> Set[str]:
        """Cut a single fiber link; returns affected owners and notifies."""
        dwdm = self.dwdm_link(a, b)
        affected = dwdm.fail()
        self._failure_epoch += 1
        for callback in self.on_failure:
            callback(dwdm.link.key, affected)
        return affected

    def cut_srlg(self, srlg: str) -> Set[str]:
        """Cut every link in a shared-risk group (a conduit cut).

        Returns the union of affected owners across all failed links.
        """
        links = self._graph.links_in_srlg(srlg)
        if not links:
            raise TopologyError(f"unknown SRLG {srlg!r}")
        affected: Set[str] = set()
        for link in links:
            affected |= self.cut_link(link.a, link.b)
        return affected

    def repair_link(self, a: str, b: str) -> None:
        """Repair a single fiber link."""
        self.dwdm_link(a, b).repair()
        self._failure_epoch += 1

    def repair_srlg(self, srlg: str) -> None:
        """Repair every link in a shared-risk group."""
        links = self._graph.links_in_srlg(srlg)
        if not links:
            raise TopologyError(f"unknown SRLG {srlg!r}")
        for link in links:
            self.repair_link(link.a, link.b)

    def failed_links(self) -> List[Tuple[str, str]]:
        """Keys of all currently failed links."""
        return [key for key, dwdm in self._links.items() if dwdm.failed]

    def path_penalty_db(self, path: List[str]) -> float:
        """Total gray-failure OSNR penalty along a node path, in dB."""
        return sum(link.osnr_penalty_db for link in self.links_on_path(path))

    def degraded_links(self) -> List[Tuple[str, str]]:
        """Keys of all links carrying a nonzero OSNR penalty."""
        return [
            key
            for key, dwdm in self._links.items()
            if dwdm.osnr_penalty_db > 0.0
        ]

    def occupancy_snapshot(self) -> Dict[Tuple[str, str], int]:
        """Occupied-channel bitmask per link, omitting fully dark links.

        Bit ``i`` set means channel ``i`` is lit.  This is the compact
        state a shard worker's plant mirror needs to plan identically:
        delta-sync ships only the links whose mask changed since the
        last round.
        """
        full = (1 << self._grid.size) - 1
        result: Dict[Tuple[str, str], int] = {}
        for key, dwdm in self._links.items():
            occupied = full & ~dwdm.free_mask()
            if occupied:
                result[key] = occupied
        return result
