"""Built-in sweep studies: picklable trial runners + spec factories.

Every runner here is a module-level function taking one
:class:`~repro.sweep.spec.TrialSpec` and returning a
:class:`~repro.sweep.engine.TrialResult` — the shape the engine can
ship to a worker process by reference.  Networks are always built
*inside* the trial from the spec's parameters and seed.

The module also hosts the study registry used by JSON sweep specs and
the ``griphon sweep`` CLI, plus factories for the repository's two
statistical benchmarks (the x9 availability Monte Carlo and the x10
scaling sweep).
"""

from __future__ import annotations

import statistics
from typing import Any, Callable, Dict, Mapping, Sequence

from repro.core.connection import ConnectionState
from repro.errors import ConfigurationError
from repro.facade import (
    GriphonNetwork,
    build_griphon_backbone,
    build_griphon_testbed,
)
from repro.metrics import downtime_minutes_per_year, measured_availability
from repro.scenario import Scenario, run_scenario
from repro.sim.randomness import RandomStreams
from repro.sweep.engine import TrialResult
from repro.sweep.spec import SweepSpec, TrialSpec
from repro.topo.builders import attach_premises, install_pop_equipment
from repro.topo.generator import generate_backbone
from repro.units import DAY, HOUR
from repro.workload import FiberCutInjector


# -- topology factories -----------------------------------------------------


def build_waxman_network(
    seed: int,
    node_count: int,
    plane_km: float = 2000.0,
    **equipment: Any,
) -> GriphonNetwork:
    """A generated Waxman backbone with premises and standard equipment.

    The sweep engine's workhorse topology factory: graph generation,
    premises attachment, and equipment install all derive from the one
    ``seed``, so a trial spec fully determines the network.
    """
    graph = generate_backbone(
        RandomStreams(seed), node_count=node_count, plane_km=plane_km
    )
    pops = [node.name for node in graph.nodes]
    premises = attach_premises(graph, pops)
    net = GriphonNetwork(graph, seed=seed, latency_cv=0.0)
    install_pop_equipment(net.inventory, pops, premises, **equipment)
    net.finish_build()
    return net


def _build_topology(trial: TrialSpec) -> GriphonNetwork:
    """Build the trial's network from its ``topology`` parameter."""
    params = trial.params
    topology = params.get("topology", "testbed")
    if topology == "testbed":
        return build_griphon_testbed(
            seed=trial.seed,
            latency_cv=params.get("latency_cv", 0.0),
            auto_restore=params.get("auto_restore", True),
        )
    if topology == "backbone":
        return build_griphon_backbone(
            seed=trial.seed,
            latency_cv=params.get("latency_cv", 0.0),
            auto_restore=params.get("auto_restore", True),
        )
    if topology == "waxman":
        return build_waxman_network(
            trial.seed, node_count=int(params.get("node_count", 16))
        )
    raise ConfigurationError(f"unknown topology {topology!r}")


def _trial_metrics(net: GriphonNetwork) -> Dict[str, Any]:
    """The network's metrics snapshot with route-cache counters exported.

    Cache hit/miss/eviction totals live as monotonic counters on the
    engine's :class:`RouteCache`; exporting them into the registry right
    before the snapshot makes them survive the counter-only
    cross-process merge, so ``griphon sweep --json`` reports them.
    """
    net.controller.export_route_cache_counters()
    return net.metrics.state()


# -- study runners ----------------------------------------------------------


def availability_trial(trial: TrialSpec) -> TrialResult:
    """One month (by default) of Poisson fiber cuts against a live 10G.

    The x9 study: build the Fig. 4 testbed, bring up one connection,
    subject the network to random cuts with hours-long physical
    repairs, and measure the connection's availability under the
    trial's restoration regime.
    """
    params = trial.params
    horizon = float(params.get("horizon_s", 28 * DAY))
    net = build_griphon_testbed(
        seed=trial.seed,
        latency_cv=0.0,
        auto_restore=bool(params["auto_restore"]),
    )
    service = net.service_for("csp")
    conn = service.request_connection(
        params.get("a", "PREMISES-A"), params.get("b", "PREMISES-C"),
        params.get("rate_gbps", 10),
    )
    net.run()
    injector = FiberCutInjector(
        net.controller,
        net.streams,
        mean_time_between_cuts_s=float(params.get("mtbf_s", 2 * DAY)),
        mean_repair_s=float(params.get("mean_repair_s", 6 * HOUR)),
        stop_at=horizon,
    )
    net.run(until=horizon + 2 * DAY)
    net.run()
    if conn.outage_started_at is not None:
        conn.end_outage(net.sim.now)
    availability = measured_availability(conn, conn.up_at, horizon)
    repairs = [
        record.repair_duration
        for record in injector.records
        if record.repair_duration is not None
    ]
    return TrialResult(
        values={
            "availability": availability,
            "cuts": len(injector.records),
            "up": conn.state is ConnectionState.UP,
            "total_outage_s": conn.total_outage_s,
            "downtime_min_per_year": downtime_minutes_per_year(availability),
        },
        samples={"repair_s": repairs},
        metrics=_trial_metrics(net),
    )


def scaling_trial(trial: TrialSpec) -> TrialResult:
    """Probe establishment time and blocking on a generated backbone.

    The x10 study: a fixed cycle of inter-DC orders on a Waxman mesh of
    the trial's ``node_count``, measuring setup time, hop count, and
    blocking under per-node-scaled resources.
    """
    params = trial.params
    node_count = int(params["node_count"])
    orders = int(params.get("orders", 12))
    net = build_waxman_network(trial.seed, node_count=node_count)
    pops = [
        node.name for node in net.inventory.graph.nodes if node.kind != "premises"
    ]
    service = net.service_for(
        "csp", max_connections=256, max_total_rate_gbps=100000
    )
    setups, hops, blocked = [], [], 0
    for index in range(orders):
        a = f"DC-{pops[index % len(pops)]}"
        b = f"DC-{pops[(index * 7 + 3) % len(pops)]}"
        if a == b:
            continue
        conn = service.request_connection(a, b, 10)
        net.run()
        if conn.state is ConnectionState.BLOCKED:
            blocked += 1
        elif conn.state is ConnectionState.UP:
            setups.append(conn.setup_duration)
            lightpath = net.inventory.lightpaths[conn.lightpath_ids[0]]
            hops.append(lightpath.hop_count)
    return TrialResult(
        values={
            "mean_setup_s": statistics.fmean(setups) if setups else float("nan"),
            "mean_hops": statistics.fmean(hops) if hops else float("nan"),
            "blocked": blocked,
            "served": len(setups),
        },
        samples={"setup_s": setups, "hops": [float(h) for h in hops]},
        metrics=_trial_metrics(net),
    )


def scenario_trial(trial: TrialSpec) -> TrialResult:
    """Run a declarative :class:`~repro.scenario.Scenario` as one trial.

    The trial's ``scenario`` parameter is the plain-dict spec the
    scenario runner understands; ``topology`` picks the network
    (testbed / backbone / waxman).  This is the bridge between the
    scenario DSL and the sweep grid: any scenario file can be swept
    over seeds and topologies.
    """
    params = trial.params
    scenario = Scenario.from_dict(params["scenario"])
    net = _build_topology(trial)
    result = run_scenario(net, scenario)
    report = result.availability_report()
    availabilities = [report[key] for key in sorted(report)]
    return TrialResult(
        values={
            "connections": len(result.connections),
            "up": sum(
                1
                for conn in result.connections
                if conn.state is ConnectionState.UP
            ),
            "errors": len(result.errors),
            "mean_availability": (
                statistics.fmean(availabilities) if availabilities else 1.0
            ),
            "min_availability": min(availabilities) if availabilities else 1.0,
        },
        samples={"availability": availabilities},
        metrics=_trial_metrics(net),
    )


def pipeline_trial(trial: TrialSpec) -> TrialResult:
    """Offered load vs accept/defer/block through the order pipeline.

    One burst of same-instant orders (the ``orders`` parameter is the
    offered-load axis) is submitted through a bounded intake pipeline;
    the trial measures how the round scheduler splits the burst into
    accepted, blocked, terminally deferred, and queue-refused orders,
    plus how much retrying the contention losers needed.
    """
    from repro.pipeline import TicketState

    params = trial.params
    orders = int(params.get("orders", 32))
    rates = params.get("rates", (10, 12, 1))
    net = _build_topology(trial)
    pipeline = net.enable_pipeline(
        capacity=int(params.get("capacity", 256)),
        round_size=int(params.get("round_size", 8)),
        round_interval=float(params.get("round_interval", 0.0)),
        max_defers=int(params.get("max_defers", 3)),
        seeded_tiebreak=bool(params.get("seeded_tiebreak", False)),
    )
    service = net.service_for(
        "csp", max_connections=4096, max_total_rate_gbps=1000000
    )
    premises = sorted(net.inventory.ntes)
    tickets = []
    for index in range(orders):
        a = premises[index % len(premises)]
        b = premises[(index * 7 + 3) % len(premises)]
        if a == b:
            b = premises[(index * 7 + 4) % len(premises)]
        tickets.append(
            service.submit_connection(a, b, rates[index % len(rates)])
        )
    net.run()
    by_state = {state: 0 for state in TicketState}
    for ticket in tickets:
        by_state[ticket.state] += 1
    submitted = len(tickets) or 1
    deferred_rounds = [float(t.rounds_deferred) for t in tickets]
    return TrialResult(
        values={
            "accepted": by_state[TicketState.ACCEPTED],
            "blocked": by_state[TicketState.BLOCKED],
            "deferred": by_state[TicketState.DEFERRED],
            "queue_full": by_state[TicketState.QUEUE_FULL],
            "accept_rate": by_state[TicketState.ACCEPTED] / submitted,
            "block_rate": by_state[TicketState.BLOCKED] / submitted,
            "defer_rate": by_state[TicketState.DEFERRED] / submitted,
            "queue_full_rate": by_state[TicketState.QUEUE_FULL] / submitted,
            "rounds": pipeline.rounds,
            "mean_rounds_deferred": statistics.fmean(deferred_rounds),
            "queue_drained": pipeline.queue_depth() == 0,
        },
        samples={"rounds_deferred": deferred_rounds},
        metrics=_trial_metrics(net),
    )


def frontend_trial(trial: TrialSpec) -> TrialResult:
    """An open-loop tenant fleet against the async service frontend.

    The frontend study: a heavy-tailed tenant population submits
    through :class:`~repro.frontend.BodFrontend` at the trial's
    ``arrival_rate`` (the overload axis), and the trial measures the
    edge's triage — admitted / shed / throttled conservation, sustained
    admitted orders per second, and the p99 frontend-submit → ACTIVE
    latency for orders that made it all the way up.
    """
    from repro.frontend.clients import ClientFleet
    from repro.workload.tenants import TenantPopulation

    params = trial.params
    duration = float(params.get("duration_s", 60.0))
    net = _build_topology(trial)
    frontend = net.enable_frontend(
        queue_capacity=int(params.get("queue_capacity", 256)),
        bucket_rate=float(params.get("bucket_rate", 1.0)),
        bucket_burst=float(params.get("bucket_burst", 8.0)),
        pump_interval=float(params.get("pump_interval", 0.05)),
        capacity=int(params.get("capacity", 256)),
        round_size=int(params.get("round_size", 8)),
        round_interval=float(params.get("round_interval", 0.01)),
    )
    population = TenantPopulation(
        int(params.get("tenants", 1000)),
        zipf_s=float(params.get("zipf_s", 1.1)),
        max_connections=int(params.get("max_connections", 4)),
        max_total_rate_gbps=float(params.get("max_total_rate_gbps", 40.0)),
    )
    premises = sorted(net.inventory.ntes)
    fleet = ClientFleet(
        frontend,
        population,
        net.controller.admission,
        premises=premises,
        streams=net.streams.spawn("fleet"),
        arrival_rate=float(params.get("arrival_rate", 10.0)),
        duration=duration,
        rate_choices_gbps=tuple(params.get("rate_choices_gbps", (10.0,))),
    )
    fleet.start()
    net.run()
    state = net.metrics.state()
    counters = state["counters"]
    submitted = counters.get("frontend.submitted", 0.0) or 1.0
    latencies = sorted(fleet.stats.order_to_active)
    p99 = latencies[max(0, int(len(latencies) * 0.99) - 1)] if latencies else float("nan")
    return TrialResult(
        values={
            "submitted": fleet.stats.submitted,
            "admitted": counters.get("frontend.admitted", 0.0),
            "shed": counters.get("frontend.shed", 0.0),
            "throttled": counters.get("frontend.throttled", 0.0),
            "active": counters.get("frontend.active", 0.0),
            "shed_rate": counters.get("frontend.shed", 0.0) / submitted,
            "throttle_rate": counters.get("frontend.throttled", 0.0) / submitted,
            "admitted_per_s": counters.get("frontend.admitted", 0.0) / duration,
            "p99_order_to_active_s": p99,
            "registered_tenants": population.registered_count,
            "conserved": counters.get("frontend.submitted", 0.0)
            == counters.get("frontend.admitted", 0.0)
            + counters.get("frontend.shed", 0.0)
            + counters.get("frontend.throttled", 0.0),
        },
        samples={"order_to_active_s": latencies},
        metrics=state,
    )


def shard_plan_trial(trial: TrialSpec) -> TrialResult:
    """One shard planning its batched workload (see :mod:`repro.shard.bench`).

    A module-level proxy so the registry entry pickles by reference:
    ``repro.shard.bench`` imports this package's engine, so importing it
    eagerly here would be a cycle.
    """
    from repro.shard.bench import shard_plan_trial as run_trial

    return run_trial(trial)


def slo_trial(trial: TrialSpec) -> TrialResult:
    """One gray-failure remediation trial (see :mod:`repro.slo.bench`).

    A module-level proxy so the registry entry pickles by reference,
    mirroring :func:`shard_plan_trial`.
    """
    from repro.slo.bench import slo_trial as run_trial

    return run_trial(trial)


def optimize_trial(trial: TrialSpec) -> TrialResult:
    """One re-optimization trial (see :mod:`repro.optimize.bench`).

    A module-level proxy so the registry entry pickles by reference,
    mirroring :func:`shard_plan_trial`.
    """
    from repro.optimize.bench import optimize_trial as run_trial

    return run_trial(trial)


#: Study registry for JSON specs and the CLI.
STUDIES: Dict[str, Callable[[TrialSpec], TrialResult]] = {
    "availability": availability_trial,
    "scaling": scaling_trial,
    "scenario": scenario_trial,
    "pipeline": pipeline_trial,
    "frontend": frontend_trial,
    "shard-plan": shard_plan_trial,
    "slo": slo_trial,
    "optimize": optimize_trial,
}


def resolve_study(name: str) -> Callable[[TrialSpec], TrialResult]:
    """Look up a registered study runner by name."""
    try:
        return STUDIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown study {name!r} (known: {', '.join(sorted(STUDIES))})"
        ) from None


# -- spec factories for the repository's statistical benchmarks -------------


def x9_availability_spec(
    repeats: int = 1,
    base_seed: int = 901,
    horizon_s: float = 28 * DAY,
    mtbf_s: float = 2 * DAY,
    mean_repair_s: float = 6 * HOUR,
    fixed: Mapping[str, Any] = (),
) -> SweepSpec:
    """The x9 study: availability with vs without automated restoration."""
    merged: Dict[str, Any] = {
        "horizon_s": horizon_s,
        "mtbf_s": mtbf_s,
        "mean_repair_s": mean_repair_s,
    }
    merged.update(dict(fixed))
    return SweepSpec(
        name="x9-availability",
        runner=availability_trial,
        axes={"auto_restore": (True, False)},
        fixed=merged,
        repeats=repeats,
        base_seed=base_seed,
    )


def x10_scaling_spec(
    node_counts: Sequence[int] = (8, 16, 32),
    repeats: int = 1,
    base_seed: int = 950,
    orders: int = 12,
) -> SweepSpec:
    """The x10 study: establishment time / blocking vs network scale."""
    return SweepSpec(
        name="x10-scaling",
        runner=scaling_trial,
        axes={"node_count": tuple(node_counts)},
        fixed={"orders": orders},
        repeats=repeats,
        base_seed=base_seed,
    )


def pipeline_load_spec(
    orders: Sequence[int] = (8, 16, 32, 64),
    repeats: int = 1,
    base_seed: int = 970,
    round_size: int = 8,
    topology: str = "testbed",
    **fixed: Any,
) -> SweepSpec:
    """The pipeline study: accept/defer/block rates vs offered load.

    Sweeps the size of a same-instant order burst through the intake
    pipeline on the chosen topology, showing where the round scheduler
    starts deferring and blocking as the burst outgrows the installed
    wavelengths and transponders.
    """
    merged: Dict[str, Any] = {"round_size": round_size, "topology": topology}
    merged.update(fixed)
    return SweepSpec(
        name="pipeline-load",
        runner=pipeline_trial,
        axes={"orders": tuple(orders)},
        fixed=merged,
        repeats=repeats,
        base_seed=base_seed,
    )


def frontend_load_spec(
    arrival_rates: Sequence[float] = (5.0, 10.0, 20.0, 50.0),
    repeats: int = 1,
    base_seed: int = 990,
    tenants: int = 1000,
    duration_s: float = 60.0,
    topology: str = "testbed",
    **fixed: Any,
) -> SweepSpec:
    """The frontend study: edge triage vs offered load.

    Sweeps the open-loop arrival rate of a heavy-tailed tenant fleet
    through the service frontend, showing the shed/throttle curve as
    offered load outgrows the edge (the ``arrival_rate`` axis is the
    overload knob: double it and the compliant backend load should stay
    put while the shed rate climbs).
    """
    merged: Dict[str, Any] = {
        "tenants": tenants,
        "duration_s": duration_s,
        "topology": topology,
    }
    merged.update(fixed)
    return SweepSpec(
        name="frontend-load",
        runner=frontend_trial,
        axes={"arrival_rate": tuple(arrival_rates)},
        fixed=merged,
        repeats=repeats,
        base_seed=base_seed,
    )


def optimize_reclaim_spec(
    repeats: int = 1,
    base_seed: int = 1200,
    node_count: int = 64,
    warm_orders: int = 160,
    load_orders: int = 48,
    **fixed: Any,
) -> SweepSpec:
    """The re-optimization study: repack vs greedy on a fragmented mesh.

    Grids the fragmentation benchmark over the ``reoptimize`` axis so
    one sweep produces the with/without comparison behind
    ``BENCH_optimize.json``: wavelengths reclaimed and blocking
    probability under the same post-churn load ramp.
    """
    merged: Dict[str, Any] = {
        "node_count": node_count,
        "warm_orders": warm_orders,
        "load_orders": load_orders,
    }
    merged.update(fixed)
    return SweepSpec(
        name="optimize-reclaim",
        runner=optimize_trial,
        axes={"reoptimize": (True, False)},
        fixed=merged,
        repeats=repeats,
        base_seed=base_seed,
    )


def slo_chaos_spec(
    repeats: int = 1,
    base_seed: int = 1100,
    horizon_s: float = 7200.0,
    **fixed: Any,
) -> SweepSpec:
    """The SLO study: SLA-violation minutes with vs without remediation.

    Grids the default gray-failure plan over the ``policy_on`` axis so
    one sweep produces the policy-on/policy-off comparison behind
    ``BENCH_slo.json``.
    """
    merged: Dict[str, Any] = {"horizon_s": horizon_s}
    merged.update(fixed)
    return SweepSpec(
        name="slo-chaos",
        runner=slo_trial,
        axes={"policy_on": (True, False)},
        fixed=merged,
        repeats=repeats,
        base_seed=base_seed,
    )
