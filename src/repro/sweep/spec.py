"""Declarative sweep specifications: what to run, over which grid.

A :class:`SweepSpec` describes an experiment sweep as *data*: a runner
(a module-level callable), a parameter grid, a replicate count, and a
base seed.  The spec expands deterministically into an ordered list of
:class:`TrialSpec` objects — one per (grid point, replicate) — each
carrying its own derived master seed.

Picklability rules (enforced at construction):

* the runner must be an importable module-level callable — lambdas,
  closures, and bound methods cannot cross a ``ProcessPoolExecutor``
  boundary by reference;
* grid values and fixed parameters must themselves be picklable plain
  data (numbers, strings, tuples, dicts) — in particular, a trial spec
  carries a *recipe* for a network (builder parameters), never a live
  :class:`~repro.facade.GriphonNetwork`.

Seed-spawning discipline: every trial's master seed is derived by
:meth:`~repro.sim.randomness.RandomStreams.spawn` from ``(base_seed,
trial_id)``.  Trial ids are unique within a sweep, so no two trials
ever share a substream — and the derivation is stable across processes
and Python versions, which is what makes ``jobs=1`` and ``jobs=N``
byte-identical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.randomness import RandomStreams


def _check_picklable_runner(runner: Callable[..., Any]) -> None:
    """Reject callables that pickle cannot ship by reference."""
    if not callable(runner):
        raise ConfigurationError(f"runner must be callable, got {runner!r}")
    qualname = getattr(runner, "__qualname__", "")
    module = getattr(runner, "__module__", None)
    if "<locals>" in qualname or "<lambda>" in qualname:
        raise ConfigurationError(
            f"runner {qualname!r} is a lambda or closure; sweep runners "
            "must be module-level functions so workers can import them"
        )
    if module is None or module == "__main__":
        raise ConfigurationError(
            f"runner {qualname!r} must live in an importable module "
            "(not __main__) to be picklable by reference"
        )


@dataclass(frozen=True)
class TrialSpec:
    """One trial of a sweep: a runner, its parameters, and a seed.

    Attributes:
        sweep: Name of the owning sweep.
        index: Position in the sweep's deterministic trial order.
        trial_id: Stable human-readable id (unique within the sweep).
        seed: The trial's derived master seed — pass it to the network
            builder / :class:`~repro.sim.randomness.RandomStreams`.
        params: The grid point merged over the sweep's fixed parameters.
        runner: The module-level callable executed in the worker.
    """

    sweep: str
    index: int
    trial_id: str
    seed: int
    params: Mapping[str, Any]
    runner: Callable[["TrialSpec"], Any]

    def streams(self) -> RandomStreams:
        """A fresh stream family seeded for this trial."""
        return RandomStreams(self.seed)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative experiment sweep: runner × grid × replicates.

    Attributes:
        name: Sweep name (appears in trial ids and reports).
        runner: Module-level callable invoked per trial with the
            :class:`TrialSpec`; returns a mapping of scalar outcome
            values or a full :class:`~repro.sweep.engine.TrialResult`.
        axes: Parameter grid; the cartesian product of the axis values
            (axes iterated in sorted-name order) defines the grid
            points.
        fixed: Parameters shared by every trial.
        repeats: Replicates per grid point (distinct seeds).
        base_seed: Root of the per-trial seed derivation.
    """

    name: str
    runner: Callable[[TrialSpec], Any]
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    fixed: Mapping[str, Any] = field(default_factory=dict)
    repeats: int = 1
    base_seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("sweep needs a name")
        if self.repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {self.repeats}")
        _check_picklable_runner(self.runner)
        for axis, values in self.axes.items():
            if not values:
                raise ConfigurationError(f"axis {axis!r} has no values")

    # -- expansion ----------------------------------------------------------

    def grid_points(self) -> List[Dict[str, Any]]:
        """The cartesian product of the axes, in deterministic order."""
        names = sorted(self.axes)
        points = []
        for combo in itertools.product(*(self.axes[name] for name in names)):
            points.append(dict(zip(names, combo)))
        return points

    def trials(self) -> List[TrialSpec]:
        """Expand into the ordered trial list (grid outer, repeats inner)."""
        root = RandomStreams(self.base_seed)
        trials: List[TrialSpec] = []
        for point in self.grid_points():
            point_id = ",".join(f"{k}={point[k]}" for k in sorted(point)) or "-"
            for rep in range(self.repeats):
                trial_id = f"{self.name}/{point_id}/rep{rep}"
                params = dict(self.fixed)
                params.update(point)
                trials.append(
                    TrialSpec(
                        sweep=self.name,
                        index=len(trials),
                        trial_id=trial_id,
                        seed=root.spawn(trial_id).master_seed,
                        params=params,
                        runner=self.runner,
                    )
                )
        return trials

    # -- JSON-friendly construction -----------------------------------------

    @classmethod
    def from_dict(
        cls,
        spec: Mapping[str, Any],
        resolve: Optional[Callable[[str], Callable[[TrialSpec], Any]]] = None,
    ) -> "SweepSpec":
        """Build a spec from plain data (e.g. a JSON file).

        The ``"study"`` key names the runner; ``resolve`` maps it to a
        callable (default: the registry in :mod:`repro.sweep.studies`).
        """
        if resolve is None:
            from repro.sweep.studies import resolve_study

            resolve = resolve_study
        try:
            axes = {
                str(axis): tuple(values)
                for axis, values in dict(spec.get("axes", {})).items()
            }
            return cls(
                name=str(spec["name"]),
                runner=resolve(str(spec["study"])),
                axes=axes,
                fixed=dict(spec.get("fixed", {})),
                repeats=int(spec.get("repeats", 1)),
                base_seed=int(spec.get("base_seed", 0)),
            )
        except KeyError as exc:
            raise ConfigurationError(f"sweep spec missing key {exc}") from exc


def seed_table(spec: SweepSpec) -> Dict[str, int]:
    """Map of trial id -> derived seed (diagnostics / collision tests)."""
    return {trial.trial_id: trial.seed for trial in spec.trials()}


def grid_point_id(params: Mapping[str, Any], axes: Sequence[str]) -> Tuple:
    """A hashable key identifying a trial's grid point."""
    return tuple((name, params[name]) for name in sorted(axes))
