"""The scale-out experiment engine: fan a sweep over worker processes.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec` into
trials and executes them either serially (``jobs=1``) or on a
``ProcessPoolExecutor`` (``jobs=N``).  Three properties make the two
modes interchangeable:

* **Workers build, parents merge.**  A worker receives only the
  picklable :class:`~repro.sweep.spec.TrialSpec`, constructs its own
  network from the build parameters, runs the trial, and returns a
  compact :class:`TrialResult` — live networks never cross the process
  boundary in either direction.
* **Deterministic ordering.**  Results are merged in trial-index order
  regardless of completion order, so aggregates are identical at any
  job count (byte-identical JSON, in fact — wall-clock timings are
  reported next to, never inside, the aggregate).
* **Independent seeds.**  Each trial's master seed is spawned from
  ``(base_seed, trial_id)``; no two trials share a random substream.

A trial that raises records its error in the result (``error`` field)
rather than aborting the sweep — sweeps are experiments, and a partial
outcome is still data.  A pool that stops making progress trips the
``timeout_s`` watchdog with :class:`~repro.errors.SweepTimeoutError`.
"""

from __future__ import annotations

import statistics
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ConfigurationError, SweepTimeoutError
from repro.obs.registry import MetricsRegistry
from repro.sweep.spec import SweepSpec, TrialSpec, grid_point_id


@dataclass
class TrialResult:
    """The compact outcome of one trial, cheap to pickle back.

    Attributes:
        trial_id / index / seed / params: Copied from the trial spec.
        values: Scalar outcomes (availability, blocked count, ...).
        samples: Named sample series (e.g. per-connection setup times);
            pooled across trials for sweep-level summaries.
        metrics: A mergeable registry state
            (:meth:`~repro.obs.registry.MetricsRegistry.state`).
        error: ``None`` on success, else ``"ExcType: message"``.
    """

    trial_id: str = ""
    index: int = -1
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    values: Dict[str, Any] = field(default_factory=dict)
    samples: Dict[str, List[float]] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None


def run_trial(trial: TrialSpec) -> TrialResult:
    """Execute one trial in the current process.

    Normalizes whatever the runner returns: a :class:`TrialResult` is
    passed through (identity fields overwritten from the spec), a
    mapping becomes the ``values`` dict, and an exception becomes an
    error-carrying result.
    """
    try:
        outcome = trial.runner(trial)
    except Exception as exc:  # noqa: BLE001 - a failed trial is data
        return TrialResult(
            trial_id=trial.trial_id,
            index=trial.index,
            seed=trial.seed,
            params=dict(trial.params),
            error=f"{type(exc).__name__}: {exc}",
        )
    if isinstance(outcome, TrialResult):
        outcome.trial_id = trial.trial_id
        outcome.index = trial.index
        outcome.seed = trial.seed
        outcome.params = dict(trial.params)
        return outcome
    if isinstance(outcome, Mapping):
        return TrialResult(
            trial_id=trial.trial_id,
            index=trial.index,
            seed=trial.seed,
            params=dict(trial.params),
            values=dict(outcome),
        )
    raise ConfigurationError(
        f"trial runner returned {type(outcome).__name__}; expected a "
        "TrialResult or a mapping of values"
    )


@dataclass
class SweepResult:
    """Everything a finished sweep produced, in deterministic order."""

    spec: SweepSpec
    results: List[TrialResult]
    jobs: int
    elapsed_s: float

    @property
    def failed(self) -> List[TrialResult]:
        """Trials that raised."""
        return [r for r in self.results if r.error is not None]

    def merged_metrics(self) -> MetricsRegistry:
        """All per-trial metrics folded into one registry, in trial order."""
        merged = MetricsRegistry()
        for result in self.results:
            if result.metrics:
                merged.merge(result.metrics)
        return merged

    def grouped_values(self) -> Dict[str, Dict[str, float]]:
        """Mean of each numeric value per grid point (across repeats)."""
        axes = sorted(self.spec.axes)
        buckets: Dict[Any, List[TrialResult]] = {}
        for result in self.results:
            if result.error is None:
                key = grid_point_id(result.params, axes)
                buckets.setdefault(key, []).append(result)
        grouped: Dict[str, Dict[str, float]] = {}
        for key, bucket in buckets.items():
            label = ",".join(f"{name}={value}" for name, value in key) or "-"
            means: Dict[str, float] = {}
            value_names = sorted(
                {name for result in bucket for name in result.values}
            )
            for name in value_names:
                numbers = [
                    result.values[name]
                    for result in bucket
                    if isinstance(result.values.get(name), (int, float))
                    and not isinstance(result.values.get(name), bool)
                ]
                if numbers:
                    means[name] = statistics.fmean(numbers)
            grouped[label] = means
        return grouped

    def pooled_samples(self) -> Dict[str, List[float]]:
        """All trials' sample series concatenated in trial order."""
        pooled: Dict[str, List[float]] = {}
        for result in self.results:
            for name, series in sorted(result.samples.items()):
                pooled.setdefault(name, []).extend(series)
        return pooled

    def aggregate(self) -> Dict[str, Any]:
        """The sweep's JSON-ready aggregate.

        Contains only simulation-determined data — no wall-clock, no
        job count — so ``jobs=1`` and ``jobs=N`` runs of the same spec
        serialize byte-identically.
        """
        from repro.metrics.collector import summarize

        series: Dict[str, Any] = {}
        for name, samples in self.pooled_samples().items():
            summary = summarize(samples)
            series[name] = {
                "count": summary.count,
                "mean": summary.mean,
                "min": summary.minimum,
                "p50": summary.p50,
                "p95": summary.p95,
                "max": summary.maximum,
            }
        metrics = self.merged_metrics().snapshot()
        metrics.pop("gauges", None)
        failed = self.failed
        first_error = (
            {"trial_id": failed[0].trial_id, "error": failed[0].error}
            if failed
            else None
        )
        return {
            "schema_version": 1,
            "sweep": self.spec.name,
            "base_seed": self.spec.base_seed,
            "trial_count": len(self.results),
            "failed_trials": len(failed),
            "first_error": first_error,
            "trials": [
                {
                    "trial_id": r.trial_id,
                    "seed": r.seed,
                    "params": dict(r.params),
                    "values": dict(r.values),
                    "error": r.error,
                }
                for r in self.results
            ],
            "grouped": self.grouped_values(),
            "series": series,
            "metrics": metrics,
        }

    def to_json(self) -> str:
        """Canonical serialization of :meth:`aggregate` (sorted keys)."""
        import json

        return json.dumps(self.aggregate(), sort_keys=True, indent=2) + "\n"


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    executor: Optional[Any] = None,
) -> SweepResult:
    """Run every trial of ``spec`` and merge the results.

    Args:
        spec: The sweep to expand and execute.
        jobs: Worker processes; ``1`` runs serially in-process (no pool,
            no pickling) but produces the identical aggregate.
        timeout_s: Watchdog for the parallel path — if no new trial
            completes for this long, the pool is torn down and
            :class:`~repro.errors.SweepTimeoutError` is raised.
        executor: Optional persistent executor implementing
            ``run_trials(trials, timeout_s=None) -> List[TrialResult]``
            (results in trial-index order) and, optionally, a ``size``
            attribute — e.g. :class:`repro.shard.workers.ShardWorkerPool`,
            whose warm workers replace the per-trial rebuild the
            default paths pay.  When given, ``jobs`` is ignored and the
            executor's lifecycle stays with the caller.

    Returns:
        A :class:`SweepResult` with per-trial results in trial order.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    trials = spec.trials()
    started = time.perf_counter()
    if executor is not None:
        results = list(executor.run_trials(trials, timeout_s=timeout_s))
        width = int(getattr(executor, "size", 0)) or jobs
        return SweepResult(spec, results, width, time.perf_counter() - started)
    if jobs == 1 or len(trials) <= 1:
        results = [run_trial(trial) for trial in trials]
        return SweepResult(spec, results, jobs, time.perf_counter() - started)

    slots: List[Optional[TrialResult]] = [None] * len(trials)
    with ProcessPoolExecutor(max_workers=min(jobs, len(trials))) as pool:
        index_of = {pool.submit(run_trial, trial): trial.index for trial in trials}
        outstanding = set(index_of)
        while outstanding:
            done, outstanding = wait(
                outstanding, timeout=timeout_s, return_when=FIRST_COMPLETED
            )
            if not done:
                for future in outstanding:
                    future.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                raise SweepTimeoutError(
                    f"sweep {spec.name!r}: no trial completed within "
                    f"{timeout_s}s ({len(outstanding)} outstanding)"
                )
            for future in done:
                slots[index_of[future]] = future.result()
    results = [result for result in slots if result is not None]
    return SweepResult(spec, results, jobs, time.perf_counter() - started)
