"""Scale-out experiment engine: declarative sweeps over worker processes.

The statistical studies — availability Monte Carlo, scaling sweeps,
scenario grids — are embarrassingly parallel: every trial builds its
own network from a seed and parameters.  This package turns such a
study into data (:class:`~repro.sweep.spec.SweepSpec`), fans the trials
over a process pool (:func:`~repro.sweep.engine.run_sweep`), and merges
the compact per-trial results deterministically, so ``jobs=8`` gives
the same aggregate JSON as ``jobs=1`` — just sooner.

Quick use::

    from repro.sweep import run_sweep, x9_availability_spec

    result = run_sweep(x9_availability_spec(repeats=8), jobs=8)
    print(result.to_json())
"""

from repro.sweep.engine import SweepResult, TrialResult, run_sweep, run_trial
from repro.sweep.spec import SweepSpec, TrialSpec, seed_table
from repro.sweep.studies import (
    STUDIES,
    availability_trial,
    build_waxman_network,
    frontend_load_spec,
    frontend_trial,
    optimize_reclaim_spec,
    optimize_trial,
    pipeline_load_spec,
    pipeline_trial,
    resolve_study,
    scaling_trial,
    scenario_trial,
    slo_chaos_spec,
    slo_trial,
    x10_scaling_spec,
    x9_availability_spec,
)

__all__ = [
    "STUDIES",
    "SweepResult",
    "SweepSpec",
    "TrialResult",
    "TrialSpec",
    "availability_trial",
    "build_waxman_network",
    "frontend_load_spec",
    "frontend_trial",
    "optimize_reclaim_spec",
    "optimize_trial",
    "pipeline_load_spec",
    "pipeline_trial",
    "resolve_study",
    "run_sweep",
    "run_trial",
    "scaling_trial",
    "scenario_trial",
    "seed_table",
    "slo_chaos_spec",
    "slo_trial",
    "x10_scaling_spec",
    "x9_availability_spec",
]
