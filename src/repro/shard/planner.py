"""Inter-region order decomposition: gateways, segments, exclusions.

A cross-region order ``premises_a -> premises_b`` cannot be planned by
any single shard — region shards only see their own mesh and the
express shard only sees gateways.  The :class:`ShardPlanner` decomposes
it into at most three stitched segments:

1. region A: ``pop_a -> gateway_a`` (skipped when ``pop_a`` *is* the
   chosen gateway);
2. express: ``gateway_a -> gateway_b``;
3. region B: ``gateway_b -> pop_b`` (skipped symmetrically).

The gateway pair is chosen deterministically: minimize total BFS hop
count (region hops to the gateway + express hops between gateways +
region hops from the far gateway), ties broken by gateway name.  Both
the sharded and the monolithic deployment run this same decomposition,
which is what makes their outcomes comparable segment for segment.

For the monolithic deployment — one controller over the full 3-tier
graph — the planner also derives per-segment *exclusions* that confine
each segment's candidate routes to exactly the subgraph the owning
shard would see: intra-region segments exclude every node outside the
region, and express segments exclude every non-gateway node plus any
intra-region gateway-to-gateway links.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.errors import NoPathError
from repro.topo.graph import NetworkGraph
from repro.topo.hierarchy import EXPRESS, Hierarchy


class SegmentSpec:
    """One segment of a decomposed order, addressed to one unit.

    Attributes:
        unit: Owning planning unit (a region name or ``"express"``).
        source: Segment source node (a PoP in the unit's graph).
        destination: Segment destination node.
        excluded_nodes: Monolithic-mode exclusions confining candidate
            routes to the unit's subgraph (empty for sharded units,
            whose graphs already *are* the subgraph).
        excluded_links: Monolithic-mode link exclusions (intra-region
            gateway-gateway links, for express segments).
    """

    __slots__ = ("unit", "source", "destination", "excluded_nodes",
                 "excluded_links")

    def __init__(
        self,
        unit: str,
        source: str,
        destination: str,
        excluded_nodes: Tuple[str, ...] = (),
        excluded_links: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self.unit = unit
        self.source = source
        self.destination = destination
        self.excluded_nodes = excluded_nodes
        self.excluded_links = excluded_links

    def __repr__(self) -> str:
        return f"SegmentSpec({self.unit}: {self.source}->{self.destination})"


def _bfs_hops(graph: NetworkGraph, start: str) -> Dict[str, int]:
    """Hop distance from ``start`` to every reachable node."""
    hops = {start: 0}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in hops:
                hops[neighbor] = hops[node] + 1
                queue.append(neighbor)
    return hops


class ShardPlanner:
    """Decomposes orders over a :class:`Hierarchy` into unit segments."""

    def __init__(self, hierarchy: Hierarchy) -> None:
        self.hierarchy = hierarchy
        self._express_graph = hierarchy.express_graph()
        # Hop maps are computed lazily per source node and cached; the
        # hierarchy is immutable once built, so they never go stale.
        self._region_hops: Dict[Tuple[str, str], Dict[str, int]] = {}
        self._express_hops: Dict[str, Dict[str, int]] = {}
        # Monolithic-mode exclusion sets, derived once.
        self._foreign_nodes: Dict[str, Tuple[str, ...]] = {}
        all_members: List[str] = []
        for info in hierarchy.regions.values():
            all_members.extend(info.pops)
            all_members.extend(info.premises)
        for name, info in hierarchy.regions.items():
            members = set(info.pops) | set(info.premises)
            self._foreign_nodes[name] = tuple(
                sorted(node for node in all_members if node not in members)
            )
        gateways = set(hierarchy.gateways())
        self._non_gateway_nodes = tuple(
            sorted(node for node in all_members if node not in gateways)
        )
        self._gateway_internal_links = tuple(
            sorted(hierarchy.intra_region_gateway_links())
        )

    # -- hop maps -------------------------------------------------------------

    def _hops_in_region(self, region: str, start: str) -> Dict[str, int]:
        key = (region, start)
        cached = self._region_hops.get(key)
        if cached is None:
            cached = _bfs_hops(self.hierarchy.region_graph(region), start)
            self._region_hops[key] = cached
        return cached

    def _hops_on_express(self, start: str) -> Dict[str, int]:
        cached = self._express_hops.get(start)
        if cached is None:
            cached = _bfs_hops(self._express_graph, start)
            self._express_hops[start] = cached
        return cached

    # -- gateway choice -------------------------------------------------------

    def choose_gateways(
        self, pop_a: str, region_a: str, pop_b: str, region_b: str
    ) -> Tuple[str, str]:
        """The (gateway_a, gateway_b) pair minimizing total hop count.

        Deterministic: total BFS hops, ties broken by (gateway_a,
        gateway_b) name order.

        Raises:
            NoPathError: when no gateway pair connects the two regions.
        """
        hops_a = self._hops_in_region(region_a, pop_a)
        hops_b = self._hops_in_region(region_b, pop_b)
        best: Optional[Tuple[int, str, str]] = None
        for gw_a in self.hierarchy.regions[region_a].gateways:
            near = hops_a.get(gw_a)
            if near is None:
                continue
            express = self._hops_on_express(gw_a)
            for gw_b in self.hierarchy.regions[region_b].gateways:
                far = hops_b.get(gw_b)
                middle = express.get(gw_b)
                if far is None or middle is None:
                    continue
                candidate = (near + middle + far, gw_a, gw_b)
                if best is None or candidate < best:
                    best = candidate
        if best is None:
            raise NoPathError(
                f"no gateway pair connects {region_a} and {region_b}"
            )
        return best[1], best[2]

    # -- decomposition --------------------------------------------------------

    def decompose(
        self, pop_a: str, pop_b: str, monolithic: bool = False
    ) -> List[SegmentSpec]:
        """Split ``pop_a -> pop_b`` into per-unit segments.

        An intra-region pair yields a single segment in its region's
        unit.  A cross-region pair yields up to three (region A,
        express, region B), with degenerate region segments — the PoP
        already being the chosen gateway — skipped.

        With ``monolithic=True`` each segment carries the node/link
        exclusions that confine a full-graph planner to the owning
        shard's subgraph, so both deployments enumerate identical
        candidate routes.

        Raises:
            NoPathError: when either PoP is outside every region or no
                gateway pair connects the two regions.
        """
        region_a = self.hierarchy.region_of(pop_a)
        region_b = self.hierarchy.region_of(pop_b)
        if region_a is None or region_b is None:
            unknown = pop_a if region_a is None else pop_b
            raise NoPathError(f"{unknown!r} is not in any region")
        if region_a == region_b:
            return [self._region_segment(region_a, pop_a, pop_b, monolithic)]
        gw_a, gw_b = self.choose_gateways(pop_a, region_a, pop_b, region_b)
        segments: List[SegmentSpec] = []
        if pop_a != gw_a:
            segments.append(
                self._region_segment(region_a, pop_a, gw_a, monolithic)
            )
        segments.append(self._express_segment(gw_a, gw_b, monolithic))
        if gw_b != pop_b:
            segments.append(
                self._region_segment(region_b, gw_b, pop_b, monolithic)
            )
        return segments

    def _region_segment(
        self, region: str, source: str, destination: str, monolithic: bool
    ) -> SegmentSpec:
        excluded = self._foreign_nodes[region] if monolithic else ()
        return SegmentSpec(region, source, destination, excluded_nodes=excluded)

    def _express_segment(
        self, gw_a: str, gw_b: str, monolithic: bool
    ) -> SegmentSpec:
        if not monolithic:
            return SegmentSpec(EXPRESS, gw_a, gw_b)
        return SegmentSpec(
            EXPRESS,
            gw_a,
            gw_b,
            excluded_nodes=self._non_gateway_nodes,
            excluded_links=self._gateway_internal_links,
        )
