"""Sharded continental-scale control: per-region planning units.

``repro.shard`` splits one continental controller into per-region
shards over a 3-tier hierarchical topology
(:mod:`repro.topo.hierarchy`):

* :mod:`repro.shard.unit` — :class:`ShardUnit`, the picklable
  graph + inventory + RWA + route-cache bundle one shard owns (the
  monolithic controller now embeds one too);
* :mod:`repro.shard.planner` — gateway selection and the decomposition
  of a cross-region order into per-unit segments;
* :mod:`repro.shard.network` — :class:`ShardedNetwork`, per-region
  controllers stitched at gateways with saga-unwound cross-region
  orders, plus the equivalent monolithic deployment for differential
  testing;
* :mod:`repro.shard.bench` — the sweep-engine mapping that plans shard
  batches process-parallel;
* :mod:`repro.shard.workers` — :class:`ShardWorkerPool`, long-lived
  plan-RPC worker processes (one per :class:`UnitRecipe`) with warm
  route caches: the ``backend="pool"`` planning layer of
  :class:`ShardedNetwork` and the warm executor for ``sweep
  shard-plan``.

``ShardedNetwork`` (and everything in ``network``/``bench``) is
exported lazily: ``unit`` is imported *by* ``repro.core.controller``,
so eagerly importing the network module here (which needs the facade,
which needs the controller) would be a cycle.
"""

from repro.shard.unit import (
    ShardUnit,
    build_express_unit,
    build_region_unit,
)

__all__ = [
    "ShardUnit",
    "build_express_unit",
    "build_region_unit",
    "SegmentSpec",
    "ShardPlanner",
    "ShardedNetwork",
    "ShardIntake",
    "build_sharded_network",
    "shard_plan_spec",
    "outcome_fingerprint",
    "ShardWorkerPool",
    "UnitRecipe",
    "recipe_for_trial",
]

_LAZY = {
    "SegmentSpec": "repro.shard.planner",
    "ShardPlanner": "repro.shard.planner",
    "ShardedNetwork": "repro.shard.network",
    "ShardIntake": "repro.shard.intake",
    "build_sharded_network": "repro.shard.network",
    "outcome_fingerprint": "repro.shard.network",
    "shard_plan_spec": "repro.shard.bench",
    "ShardWorkerPool": "repro.shard.workers",
    "UnitRecipe": "repro.shard.workers",
    "recipe_for_trial": "repro.shard.workers",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.shard' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
