"""Persistent shard workers: long-lived plan-RPC processes.

Per-trial rebuilds were the sharded controller's wall-clock sink: every
``sweep shard-plan`` trial reconstructed its :class:`~repro.shard.unit.
ShardUnit` from the topology recipe and planned with a cold route
cache, so ``BENCH_shard.json`` showed process-"parallel" planning
*slower* than single-process.  This module replaces that with a
resident planning layer:

* :class:`UnitRecipe` — the deterministic ``(topology_seed, unit name,
  params)`` recipe a unit rebuilds from.  It is tiny, hashable, and the
  pool's worker key: two callers asking for the same recipe share one
  warm worker.
* ``_worker_main`` — the worker process loop.  It builds its unit
  **once**, then serves RPCs over a multiprocessing pipe until told to
  shut down: ``plan_batch``, ``commit`` (light planned channels),
  ``release``, ``cut``/``repair`` (chaos hooks), ``counters``
  (route-cache stats), ``fingerprint`` (structural digest for
  determinism gates), ``round_begin`` (occupancy delta-sync from a
  parent-side plant mirror), ``reset`` (back to pristine occupancy,
  cache kept warm), and ``trial`` (a whole shard-plan sweep trial
  in-worker).
* :class:`ShardWorkerPool` — the parent-side pool: spawn, RPC fan-out
  with per-worker FIFO pipelining, journal-based rebuild-and-replay
  recovery after a crash (:class:`~repro.errors.WorkerCrashed`),
  graceful context-manager shutdown, and a drop-in sweep *executor*
  (:meth:`ShardWorkerPool.run_trials`) for
  :func:`repro.sweep.engine.run_sweep`.

**Determinism.**  A plan's outcome depends only on the unit's graph,
its fiber plant (occupancy bitmasks, link liveness), and the reach
model — never on equipment pools, which are consumed at claim time in
the parent.  A worker that rebuilds the unit from the same recipe and
mirrors the plant (via ``commit``/``release`` or ``round_begin``
delta-sync) therefore plans byte-identically to the in-process engine;
``tests/test_shard_pool_differential.py`` pins this.  Warm route caches
change *counters*, never plan structure: the cache is invalidated
exactly on graph generation and failure-epoch changes, so a hit returns
the same routes a fresh Yen enumeration would.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import wait as connection_wait
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.rwa import _PlanningRound
from repro.errors import ConfigurationError, GriphonError, SweepTimeoutError, WorkerCrashed
from repro.shard.unit import (
    ShardUnit,
    _install_planning_equipment,
    build_express_unit,
    build_region_unit,
)
from repro.topo.hierarchy import EXPRESS, Hierarchy

#: The recipe unit name for a full-hierarchy (monolithic-twin) worker.
MONOLITH = "mono"

#: Channel owner used by delta-sync: occupancy a worker holds only to
#: mirror the parent plant, as opposed to plans it committed itself.
MIRROR_OWNER = "~mirror"

#: RPC ops that mutate worker state and therefore enter the replay
#: journal.  ``plan_batch`` joins them only when planning against the
#: worker's persistent round (``round=True``), since the round overlay
#: is state the next plan sees.
_MUTATING_OPS = frozenset(
    {"commit", "release", "cut", "repair", "round_begin", "reset", "trial"}
)


def _journaled(op: str, payload: Any) -> bool:
    if op in _MUTATING_OPS:
        return True
    return op == "plan_batch" and bool((payload or {}).get("round"))


def plant_fingerprint(plant) -> str:
    """A structural digest of a fiber plant's occupancy + failure state.

    Owner strings are deliberately excluded: the parent lights channels
    under lightpath ids while a mirroring worker lights them under
    :data:`MIRROR_OWNER`, yet both represent the same physical state.
    """
    snapshot = plant.occupancy_snapshot()
    payload = {
        "occupancy": sorted(
            (f"{a}={b}", mask) for (a, b), mask in snapshot.items()
        ),
        "failed": sorted(f"{a}={b}" for a, b in plant.failed_links()),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


@dataclass(frozen=True)
class UnitRecipe:
    """Everything needed to rebuild one planning unit deterministically.

    The pool keys workers by this recipe: same recipe, same worker, same
    warm state.  ``unit`` is a region name, :data:`~repro.topo.hierarchy.
    EXPRESS`, or :data:`MONOLITH` for a full-hierarchy worker.
    """

    unit: str
    topology_seed: int
    regions: int
    pops_per_region: int
    gateways_per_region: int = 2
    grid_size: int = 80
    k_paths: int = 4
    route_cache_size: int = 1024
    region_plane_km: float = 1200.0
    express_length_km: float = 600.0
    alpha: float = 0.4
    beta: float = 0.35
    with_premises: bool = False
    premises_prefix: str = "DC-"
    transponders_10g: int = 6
    regens_10g: int = 4

    @classmethod
    def for_bench(cls, unit: str, params: Dict[str, Any]) -> "UnitRecipe":
        """The recipe of one ``shard-plan`` sweep trial's unit.

        Only topology-shaping parameters enter the key — workload knobs
        (rounds, orders_per_round) vary per trial over the same worker.
        """
        return cls(
            unit=unit,
            topology_seed=int(params["topology_seed"]),
            regions=int(params["regions"]),
            pops_per_region=int(params["pops_per_region"]),
            gateways_per_region=int(params.get("gateways_per_region", 2)),
            grid_size=int(params.get("grid_size", 80)),
            k_paths=int(params.get("k_paths", 4)),
        )

    @classmethod
    def for_network_unit(
        cls,
        hierarchy: Hierarchy,
        unit: str,
        grid_size: int = 80,
        k_paths: int = 4,
    ) -> "UnitRecipe":
        """The recipe mirroring one :class:`ShardedNetwork` unit."""
        params = hierarchy.params
        return cls(
            unit=unit,
            topology_seed=hierarchy.seed,
            regions=int(params["regions"]),
            pops_per_region=int(params["pops_per_region"]),
            gateways_per_region=int(params["gateways_per_region"]),
            grid_size=grid_size,
            k_paths=k_paths,
            region_plane_km=float(params["region_plane_km"]),
            express_length_km=float(params["express_length_km"]),
            alpha=float(params["alpha"]),
            beta=float(params["beta"]),
            with_premises=bool(params["with_premises"]),
            premises_prefix=str(params["premises_prefix"]),
        )

    def build(self) -> ShardUnit:
        """Rebuild the unit — the one-time cost a worker pays at spawn."""
        if self.unit == EXPRESS:
            return build_express_unit(
                self.regions,
                self.gateways_per_region,
                self.pops_per_region,
                express_length_km=self.express_length_km,
                grid_size=self.grid_size,
                transponders_10g=self.transponders_10g,
                regens_10g=self.regens_10g,
                k_paths=self.k_paths,
                route_cache_size=self.route_cache_size,
            )
        if self.unit == MONOLITH:
            from repro.core.inventory import InventoryDatabase
            from repro.optical.wavelength import WavelengthGrid
            from repro.topo.hierarchy import build_hierarchy

            hierarchy = build_hierarchy(
                self.topology_seed,
                regions=self.regions,
                pops_per_region=self.pops_per_region,
                gateways_per_region=self.gateways_per_region,
                region_plane_km=self.region_plane_km,
                express_length_km=self.express_length_km,
                alpha=self.alpha,
                beta=self.beta,
                with_premises=self.with_premises,
                premises_prefix=self.premises_prefix,
            )
            inventory = InventoryDatabase(
                hierarchy.graph, WavelengthGrid(self.grid_size)
            )
            _install_planning_equipment(
                inventory, self.transponders_10g, self.regens_10g
            )
            return ShardUnit(
                MONOLITH,
                inventory,
                k_paths=self.k_paths,
                route_cache_size=self.route_cache_size,
            )
        return build_region_unit(
            self.topology_seed,
            self.unit,
            self.pops_per_region,
            region_plane_km=self.region_plane_km,
            grid_size=self.grid_size,
            transponders_10g=self.transponders_10g,
            regens_10g=self.regens_10g,
            k_paths=self.k_paths,
            route_cache_size=self.route_cache_size,
            alpha=self.alpha,
            beta=self.beta,
            with_premises=self.with_premises,
            premises_prefix=self.premises_prefix,
        )


def recipe_for_trial(params: Dict[str, Any]) -> UnitRecipe:
    """The worker recipe a ``shard-plan`` trial's params map onto."""
    return UnitRecipe.for_bench(str(params["unit"]), params)


# -- the worker process -------------------------------------------------------


def _encode_error(exc: BaseException) -> Tuple[str, str]:
    return type(exc).__name__, str(exc)


def _rebuild_error(type_name: str, message: str) -> GriphonError:
    """Rebuild a worker-reported error as its original library type."""
    from repro import errors as errors_module

    cls = getattr(errors_module, type_name, None)
    if isinstance(cls, type) and issubclass(cls, GriphonError):
        return cls(message)
    return GriphonError(f"{type_name}: {message}")


class _WorkerState:
    """Everything one worker holds between RPCs."""

    def __init__(self, unit: ShardUnit) -> None:
        self.unit = unit
        #: owner -> plan, in commit order; what ``reset`` unwinds.
        self.committed: Dict[str, Any] = {}
        self.plans_digest = hashlib.sha256()
        #: Persistent planning round for ``plan_batch(round=True)``:
        #: the shadow-claim overlay shared by every in-round plan RPC.
        self.round = _PlanningRound()

    # -- delta sync -----------------------------------------------------------

    def _apply_sync(
        self,
        masks: Dict[Tuple[str, str], int],
        cut: Iterable[Tuple[str, str]],
        repair: Iterable[Tuple[str, str]],
    ) -> None:
        """Reconcile the plant with the parent's occupancy + failures.

        Repairs first (occupancy can only change on live links), then
        occupancy deltas under :data:`MIRROR_OWNER`, then cuts.
        """
        plant = self.unit.inventory.plant
        for a, b in repair:
            plant.repair_link(a, b)
        for key, target in masks.items():
            link = plant.dwdm_link(*key)
            full = (1 << link.grid.size) - 1
            current = full & ~link.free_mask()
            stale = current & ~target
            fresh = target & ~current
            # The parent preserves occupancy across fiber cuts (for
            # restoration), so a delta can touch an already-cut link;
            # lift the failure flag around the edit without bumping the
            # failure epoch (liveness isn't changing).
            lifted = link.failed and bool(fresh)
            if lifted:
                link.repair()
            while stale:
                low = stale & -stale
                link.release(low.bit_length() - 1, MIRROR_OWNER)
                stale ^= low
            while fresh:
                low = fresh & -fresh
                link.occupy(low.bit_length() - 1, MIRROR_OWNER)
                fresh ^= low
            if lifted:
                link.fail()
        for a, b in cut:
            plant.cut_link(a, b)

    def _reset(self) -> None:
        """Back to pristine occupancy and liveness; route cache stays warm."""
        plant = self.unit.inventory.plant
        for owner in reversed(list(self.committed)):
            self.unit.release_plan(self.committed[owner], owner)
        self.committed.clear()
        for key in list(plant.occupancy_snapshot()):
            link = plant.dwdm_link(*key)
            for channel in sorted(link.occupied_channels):
                if link.owner_of(channel) == MIRROR_OWNER:
                    link.release(channel, MIRROR_OWNER)
        for a, b in plant.failed_links():
            plant.repair_link(a, b)
        self.plans_digest = hashlib.sha256()
        self.round.reset()

    # -- dispatch -------------------------------------------------------------

    def dispatch(self, op: str, payload: Any) -> Any:
        unit = self.unit
        if op == "plan_batch":
            round_ctx = self.round if payload.get("round") else None
            return unit.plan_batch(payload["requests"], round_ctx=round_ctx)
        if op == "round_begin":
            self._apply_sync(
                payload.get("masks") or {},
                payload.get("cut") or (),
                payload.get("repair") or (),
            )
            self.round.reset()
            return None
        if op == "commit":
            plan, owner = payload["plan"], payload["owner"]
            unit.occupy_plan(plan, owner)
            self.committed[owner] = plan
            self.plans_digest.update(
                repr(
                    (
                        tuple(plan.path),
                        tuple(s.channel for s in plan.segments),
                        tuple(plan.regen_sites),
                    )
                ).encode("utf-8")
            )
            return None
        if op == "release":
            plan, owner = payload["plan"], payload["owner"]
            unit.release_plan(plan, owner)
            self.committed.pop(owner, None)
            return None
        if op == "cut":
            return sorted(
                unit.inventory.plant.cut_link(payload["a"], payload["b"])
            )
        if op == "repair":
            unit.inventory.plant.repair_link(payload["a"], payload["b"])
            return None
        if op == "counters":
            return unit.route_cache_stats()
        if op == "fingerprint":
            return {
                "unit": unit.name,
                "state": plant_fingerprint(unit.inventory.plant),
                "plans": self.plans_digest.hexdigest(),
                "committed": len(self.committed),
            }
        if op == "reset":
            self._reset()
            return None
        if op == "trial":
            from repro.shard.bench import run_plan_rounds

            if payload.get("fresh", True):
                self._reset()
            params = payload["params"]
            values = run_plan_rounds(
                unit,
                int(params["topology_seed"]),
                int(params.get("rounds", 4)),
                int(params.get("orders_per_round", 16)),
                on_commit=self.committed.__setitem__,
            )
            return values
        if op == "ping":
            return "pong"
        raise ConfigurationError(f"unknown shard-worker op {op!r}")


def _worker_main(conn, recipe: UnitRecipe) -> None:
    """The worker process: build once, serve RPCs until shutdown."""
    try:
        state = _WorkerState(recipe.build())
    except BaseException as exc:  # noqa: BLE001 - report, then die
        try:
            conn.send(("fatal", _encode_error(exc)))
        finally:
            conn.close()
        return
    conn.send(("ready", None))
    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):
            break
        if op == "shutdown":
            conn.send(("ok", None))
            break
        try:
            result = state.dispatch(op, payload)
        except Exception as exc:  # noqa: BLE001 - errors are replies
            try:
                conn.send(("error", _encode_error(exc)))
            except Exception:  # noqa: BLE001 - parent went away
                break
        else:
            conn.send(("ok", result))
    conn.close()


# -- the parent-side pool -----------------------------------------------------


class _Worker:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("recipe", "process", "conn", "journal", "pending")

    def __init__(self, recipe, process, conn, journal) -> None:
        self.recipe = recipe
        self.process = process
        self.conn = conn
        #: Mutating ops acknowledged by the worker, in order — replayed
        #: into a fresh process to rebuild identical state after a crash.
        self.journal: List[Tuple[str, Any]] = journal
        #: RPCs sent but not yet answered (per-worker FIFO pipeline).
        self.pending: Deque[Tuple[str, Any]] = deque()


class ShardWorkerPool:
    """Long-lived plan-RPC workers, one per distinct :class:`UnitRecipe`.

    The pool is the resident planning layer: a worker builds its unit
    once and keeps route caches and occupancy bitmasks warm across
    rounds, trials, and callers.  Use it as a context manager —
    ``close()`` shuts every worker down gracefully and reaps the
    processes (no zombies).

    Args:
        recipes: Recipes to spawn eagerly; more join via :meth:`ensure`.
        recover: When True, a :class:`~repro.errors.WorkerCrashed` on
            :meth:`call`/:meth:`run_trials` triggers automatic
            rebuild-and-replay (:meth:`respawn`) and one retry instead
            of propagating.
        build_timeout_s / rpc_timeout_s: Watchdogs on worker startup and
            on each reply.
    """

    def __init__(
        self,
        recipes: Iterable[UnitRecipe] = (),
        recover: bool = False,
        build_timeout_s: float = 600.0,
        rpc_timeout_s: float = 600.0,
    ) -> None:
        self._workers: Dict[UnitRecipe, _Worker] = {}
        self._recover = recover
        self._build_timeout_s = build_timeout_s
        self._rpc_timeout_s = rpc_timeout_s
        self._closed = False
        self._ctx = get_context()
        for recipe in recipes:
            self.ensure(recipe)

    # -- lifecycle ------------------------------------------------------------

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def size(self) -> int:
        """Worker processes currently in the pool."""
        return len(self._workers)

    def recipes(self) -> List[UnitRecipe]:
        """The recipes with a live worker, in spawn order."""
        return list(self._workers)

    def process_of(self, recipe: UnitRecipe):
        """The :class:`multiprocessing.Process` serving ``recipe``."""
        return self._workers[recipe].process

    def ensure(self, recipe: UnitRecipe) -> None:
        """Spawn a worker for ``recipe`` unless one is already live."""
        if self._closed:
            raise ConfigurationError("worker pool is closed")
        if recipe not in self._workers:
            self._workers[recipe] = self._spawn(recipe)

    def close(self, timeout_s: float = 10.0) -> None:
        """Shut every worker down and reap the processes.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers.values():
            if worker.process.is_alive():
                try:
                    worker.conn.send(("shutdown", None))
                except (BrokenPipeError, OSError):
                    pass
        for worker in self._workers.values():
            worker.process.join(timeout=timeout_s)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=timeout_s)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            worker.conn.close()

    def respawn(self, recipe: UnitRecipe) -> None:
        """Replace a (crashed) worker and replay its journal.

        The journal holds every acknowledged mutating op in order, so
        the fresh process deterministically reaches the exact state the
        old one held — including ops that *failed* deterministically
        (their replay fails identically and is swallowed).  In-flight
        unacknowledged RPCs are not replayed; the caller re-issues them.
        """
        old = self._workers.pop(recipe)
        if old.process.is_alive():
            old.process.terminate()
        old.process.join()
        old.conn.close()
        fresh = self._spawn(recipe)
        self._workers[recipe] = fresh
        for op, payload in list(old.journal):
            self._send(fresh, op, payload)
            try:
                self._receive(fresh)
            except WorkerCrashed:
                raise
            except GriphonError:
                pass

    def _spawn(self, recipe: UnitRecipe) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, recipe),
            name=f"shard-worker:{recipe.unit}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(recipe, process, parent_conn, journal=[])
        if not parent_conn.poll(self._build_timeout_s):
            process.terminate()
            process.join()
            raise WorkerCrashed(
                f"shard worker {recipe.unit!r} did not come up within "
                f"{self._build_timeout_s}s"
            )
        tag, info = parent_conn.recv()
        if tag != "ready":
            process.join()
            raise WorkerCrashed(
                f"shard worker {recipe.unit!r} failed to build: "
                f"{info[0]}: {info[1]}"
            )
        return worker

    # -- RPC plumbing ---------------------------------------------------------

    def _require(self, recipe: UnitRecipe) -> _Worker:
        self.ensure(recipe)
        return self._workers[recipe]

    def _send(self, worker: _Worker, op: str, payload: Any) -> None:
        try:
            worker.conn.send((op, payload))
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(
                f"shard worker {worker.recipe.unit!r} died before "
                f"{op!r} could be sent: {exc}"
            ) from None
        worker.pending.append((op, payload))

    def _receive(self, worker: _Worker) -> Any:
        if not worker.conn.poll(self._rpc_timeout_s):
            op = worker.pending[0][0] if worker.pending else "?"
            raise WorkerCrashed(
                f"shard worker {worker.recipe.unit!r} sent no reply to "
                f"{op!r} within {self._rpc_timeout_s}s"
            )
        try:
            tag, result = worker.conn.recv()
        except (EOFError, OSError):
            op = worker.pending[0][0] if worker.pending else "?"
            worker.pending.clear()
            raise WorkerCrashed(
                f"shard worker {worker.recipe.unit!r} died mid-RPC "
                f"(awaiting reply to {op!r})"
            ) from None
        op, payload = worker.pending.popleft()
        if _journaled(op, payload):
            worker.journal.append((op, payload))
        if tag == "error":
            raise _rebuild_error(*result)
        return result

    # -- public RPC surface ---------------------------------------------------

    def call(self, recipe: UnitRecipe, op: str, payload: Any = None) -> Any:
        """One RPC to one worker; blocks for the reply.

        Worker-reported errors are re-raised as their original library
        types.  With ``recover=True`` a crashed worker is respawned,
        its journal replayed, and the RPC retried once.
        """
        worker = self._require(recipe)
        try:
            self._send(worker, op, payload)
            return self._receive(worker)
        except WorkerCrashed:
            if not self._recover or self._closed:
                raise
            self.respawn(recipe)
            fresh = self._workers[recipe]
            self._send(fresh, op, payload)
            return self._receive(fresh)

    def call_many(
        self, calls: Sequence[Tuple[UnitRecipe, str, Any]]
    ) -> List[Any]:
        """Fan RPCs out to their workers, then collect replies in order.

        All sends happen before any receive, so calls to *different*
        workers execute concurrently; calls to the same worker pipeline
        FIFO through its pipe.  No automatic crash recovery here — a
        mid-fan-out respawn could not preserve cross-worker ordering,
        so :class:`~repro.errors.WorkerCrashed` propagates.
        """
        workers = []
        for recipe, op, payload in calls:
            worker = self._require(recipe)
            self._send(worker, op, payload)
            workers.append(worker)
        return [self._receive(worker) for worker in workers]

    # -- sweep executor -------------------------------------------------------

    def run_trials(self, trials, timeout_s: Optional[float] = None):
        """Execute ``shard-plan`` trials on warm workers, results in order.

        The executor contract :func:`repro.sweep.engine.run_sweep` uses
        via its ``executor=`` parameter: trials are grouped by
        :func:`recipe_for_trial`, each worker runs its queue one trial
        at a time (every trial starts from a ``reset`` — pristine
        occupancy, warm route cache), distinct workers run concurrently,
        and results come back in trial-index order.  A trial raising a
        library error becomes an error-carrying result, exactly like
        :func:`~repro.sweep.engine.run_trial`; with ``recover=True`` a
        crashed worker is rebuilt and its in-flight trial re-run.
        """
        from repro.sweep.engine import TrialResult

        slots: List[Optional[TrialResult]] = [None] * len(trials)
        queues: Dict[UnitRecipe, Deque] = {}
        for slot, trial in enumerate(trials):
            recipe = recipe_for_trial(trial.params)
            self.ensure(recipe)
            queues.setdefault(recipe, deque()).append((slot, trial))
        current: Dict[UnitRecipe, Tuple[int, Any]] = {}

        def dispatch(recipe: UnitRecipe) -> None:
            if queues[recipe]:
                slot, trial = queues[recipe].popleft()
                self._send(
                    self._workers[recipe],
                    "trial",
                    {"params": dict(trial.params), "fresh": True},
                )
                current[recipe] = (slot, trial)

        def settle(trial, **kwargs) -> TrialResult:
            return TrialResult(
                trial_id=trial.trial_id,
                index=trial.index,
                seed=trial.seed,
                params=dict(trial.params),
                **kwargs,
            )

        for recipe in queues:
            dispatch(recipe)
        while current:
            conns = {self._workers[r].conn: r for r in current}
            ready = connection_wait(list(conns), timeout=timeout_s)
            if not ready:
                raise SweepTimeoutError(
                    f"worker pool: no trial completed within {timeout_s}s "
                    f"({len(current)} in flight)"
                )
            for conn in ready:
                recipe = conns[conn]
                slot, trial = current[recipe]
                try:
                    values = self._receive(self._workers[recipe])
                except WorkerCrashed:
                    if not self._recover:
                        raise
                    self.respawn(recipe)
                    self._send(
                        self._workers[recipe],
                        "trial",
                        {"params": dict(trial.params), "fresh": True},
                    )
                    continue
                except GriphonError as exc:
                    slots[slot] = settle(
                        trial, error=f"{type(exc).__name__}: {exc}"
                    )
                else:
                    slots[slot] = settle(trial, values=values)
                del current[recipe]
                dispatch(recipe)
        return slots
