"""Process-parallel shard planning on the sweep engine.

The bridge between :mod:`repro.shard` and :mod:`repro.sweep`: one sweep
*trial* is one shard planning a deterministic multi-round workload
against its own standalone :class:`~repro.shard.unit.ShardUnit`.  The
axis is the unit name, so ``run_sweep(shard_plan_spec(...), jobs=N)``
plans N shards in N worker processes — and because a unit rebuilds
deterministically from ``(topology_seed, unit name, params)``, the
worker ships a tiny picklable recipe instead of a live network.

Everything a trial returns is simulation-determined (plan counts, a
structural fingerprint of every plan, route-cache counters), so the
sweep aggregate stays byte-identical between ``jobs=1`` and ``jobs=N``
— the same differential guarantee the rest of the sweep engine gives.
Wall-clock throughput lives outside the aggregate, in
``SweepResult.elapsed_s``, which is what ``benchmarks/shard_report.py``
turns into orders/sec per shard count.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.rwa import PlanRequest
from repro.sim.randomness import RandomStreams
from repro.sweep.engine import SweepResult, TrialResult
from repro.sweep.spec import SweepSpec, TrialSpec
from repro.topo.hierarchy import EXPRESS, region_name
from repro.shard.unit import ShardUnit, build_express_unit, build_region_unit
from repro.units import GBPS

#: The simulation-determined keys of a shard-plan trial's values: what
#: must match byte-for-byte between a per-trial rebuild and a warm
#: pooled worker.  Route-cache counters are deliberately outside this
#: set — a warm worker legitimately reports more hits than a cold
#: rebuild while planning the exact same outcomes.
PLAN_DETERMINED_VALUES = (
    "unit", "nodes", "planned", "blocked", "orders", "fingerprint",
)


def bench_workload(
    unit: ShardUnit,
    topology_seed: int,
    rounds: int,
    orders_per_round: int,
):
    """Yield per-round request lists, deterministic per (seed, unit).

    Pairs are drawn from the unit's own spawned stream family
    (``spawn("bench:<unit>")``), so a worker process reproduces exactly
    the workload the parent would have generated — no two units share a
    substream.
    """
    nodes = sorted(node.name for node in unit.graph.nodes)
    streams = RandomStreams(topology_seed).spawn(f"bench:{unit.name}")
    for _ in range(rounds):
        requests = []
        for _ in range(orders_per_round):
            a = streams.choice("pairs", nodes)
            b = streams.choice("pairs", nodes)
            while b == a:
                b = streams.choice("pairs", nodes)
            requests.append(PlanRequest(a, b, 10 * GBPS))
        yield requests


def run_plan_rounds(
    unit: ShardUnit,
    topology_seed: int,
    rounds: int,
    orders_per_round: int,
    on_commit: Optional[Callable[[str, Any], None]] = None,
) -> Dict[str, Any]:
    """Run one shard's benchmark workload against an already-built unit.

    The core of a shard-plan trial, shared verbatim by the per-trial
    rebuild path (:func:`shard_plan_trial`) and the persistent-worker
    ``trial`` RPC (:mod:`repro.shard.workers`) — same workload draw,
    same owner sequence, same fingerprint bytes.  ``on_commit(owner,
    plan)`` is invoked for every occupied plan so a worker can track
    what to unwind on ``reset``.
    """
    planned = blocked = sequence = 0
    digest = hashlib.sha256()
    for requests in bench_workload(
        unit, topology_seed, rounds, orders_per_round
    ):
        for item in unit.plan_batch(requests):
            request = item.request
            if item.ok:
                owner = f"bench-{sequence}"
                unit.occupy_plan(item.plan, owner)
                if on_commit is not None:
                    on_commit(owner, item.plan)
                planned += 1
                digest.update(
                    repr(
                        (
                            request.source,
                            request.destination,
                            tuple(item.plan.path),
                            tuple(s.channel for s in item.plan.segments),
                            tuple(item.plan.regen_sites),
                        )
                    ).encode("utf-8")
                )
            else:
                blocked += 1
                digest.update(
                    repr(
                        (
                            request.source,
                            request.destination,
                            type(item.error).__name__,
                        )
                    ).encode("utf-8")
                )
            sequence += 1
    cache = unit.route_cache_stats()
    return {
        "unit": unit.name,
        "nodes": len(unit.graph.nodes),
        "planned": planned,
        "blocked": blocked,
        "orders": planned + blocked,
        "fingerprint": digest.hexdigest(),
        "route_cache_hits": cache["hits"],
        "route_cache_misses": cache["misses"],
        "route_cache_evictions": cache["evictions"],
    }


def plan_projection(result: SweepResult) -> List[Dict[str, Any]]:
    """The simulation-determined slice of a shard-plan sweep result.

    The pooled-vs-rebuild determinism gate compares this projection:
    per trial, the :data:`PLAN_DETERMINED_VALUES` plus identity and
    error.  Cache counters stay visible in the full aggregate (they
    show the warm-worker benefit) but outside the gate.
    """
    return [
        {
            "trial_id": r.trial_id,
            "error": r.error,
            **{key: r.values.get(key) for key in PLAN_DETERMINED_VALUES},
        }
        for r in result.results
    ]


def shard_plan_trial(trial: TrialSpec) -> TrialResult:
    """Plan one shard's batched workload; the shard-throughput runner.

    Rebuilds the trial's unit standalone from ``topology_seed`` and the
    hierarchy parameters, then runs ``rounds`` scheduling rounds of
    ``orders_per_round`` batched plans, lighting each successful plan's
    channels between rounds so later rounds plan against real occupancy.
    The rebuild is the cost a persistent worker
    (:class:`repro.shard.workers.ShardWorkerPool`) pays once instead of
    per trial.
    """
    params = trial.params
    unit_name = str(params["unit"])
    topology_seed = int(params["topology_seed"])
    regions = int(params["regions"])
    pops_per_region = int(params["pops_per_region"])
    gateways_per_region = int(params.get("gateways_per_region", 2))
    rounds = int(params.get("rounds", 4))
    orders_per_round = int(params.get("orders_per_round", 16))
    grid_size = int(params.get("grid_size", 80))
    k_paths = int(params.get("k_paths", 4))
    if unit_name == EXPRESS:
        unit = build_express_unit(
            regions,
            gateways_per_region,
            pops_per_region,
            grid_size=grid_size,
            k_paths=k_paths,
        )
    else:
        unit = build_region_unit(
            topology_seed,
            unit_name,
            pops_per_region,
            grid_size=grid_size,
            k_paths=k_paths,
        )
    return TrialResult(
        values=run_plan_rounds(unit, topology_seed, rounds, orders_per_round)
    )


def shard_units(regions: int) -> Sequence[str]:
    """The unit names of an N-region hierarchy (express when N >= 2)."""
    names = [region_name(index) for index in range(regions)]
    if regions >= 2:
        names.append(EXPRESS)
    return names


def shard_plan_spec(
    topology_seed: int = 0,
    regions: int = 4,
    pops_per_region: int = 8,
    gateways_per_region: int = 2,
    rounds: int = 4,
    orders_per_round: int = 16,
    base_seed: int = 840,
    **fixed: Any,
) -> SweepSpec:
    """A sweep planning every shard of one hierarchy, one trial per unit.

    ``run_sweep(spec, jobs=1)`` is the single-process baseline;
    ``jobs=len(units)`` plans all shards process-parallel.  Both produce
    the identical aggregate (plan fingerprints included), which the
    shard differential test pins.
    """
    merged: Dict[str, Any] = {
        "topology_seed": topology_seed,
        "regions": regions,
        "pops_per_region": pops_per_region,
        "gateways_per_region": gateways_per_region,
        "rounds": rounds,
        "orders_per_round": orders_per_round,
    }
    merged.update(fixed)
    return SweepSpec(
        name="shard-plan",
        runner=shard_plan_trial,
        axes={"unit": tuple(shard_units(regions))},
        fixed=merged,
        base_seed=base_seed,
    )
