"""ShardIntake: the sharded network behind the ``OrderIntake`` contract.

PR-6 left ``ShardedNetwork`` with its own batch intake
(:meth:`~repro.shard.network.ShardedNetwork.place_orders`), so nothing
built against :class:`~repro.pipeline.OrderPipeline` — the async
frontend above all — could drive it.  :class:`ShardIntake` closes that
gap: the same bounded queue, ticket surface, round cadence, and typed
outcomes as the pipeline, executing rounds through the sharded (or
monolithic-twin) planner.  Because both backends implement
:class:`repro.api.OrderIntake`, the frontend is deployment-agnostic,
and the differential test drives the frontend against both twin modes
expecting identical outcome streams.

The intake is equally agnostic to the network's *planning* backend: a
``ShardedNetwork(backend="pool")`` drives its placement rounds through
the persistent worker processes of :class:`repro.shard.workers.
ShardWorkerPool` with byte-identical typed outcomes, so the PR 7
frontend gets genuinely parallel sharded planning with zero changes
here — ``tests/test_shard_pool_differential.py`` pins the equivalence
through this adapter.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.connection import ConnectionKind, ConnectionState
from repro.errors import ConfigurationError
from repro.pipeline.engine import OrderTicket, TicketState, _QueuedOrder
from repro.shard.network import ShardedNetwork, ShardOrder
from repro.sim.process import Process

#: ShardedNetwork order events re-broadcast to intake listeners.  A
#: "blocked" edge on an already-accepted ticket means the setup saga
#: rolled the order back → the protocol's "failed" event.
_NETWORK_EVENTS = {"up": "active", "released": "released"}


class ShardIntake:
    """Bounded, round-batched order intake over a :class:`ShardedNetwork`.

    Implements :class:`repro.api.OrderIntake` with the same semantics as
    :class:`~repro.pipeline.OrderPipeline`: ``submit`` returns a ticket
    immediately (QUEUE_FULL on the spot when the bounded queue is at
    capacity — backpressure, not buffering), a kernel process drains the
    queue in rounds of ``round_size`` through one
    :meth:`~repro.shard.network.ShardedNetwork.place_orders` call per
    round (so the round shares planning overlays exactly like a pipeline
    round shares its batch plan), and ``outcome`` maps tickets onto the
    :data:`repro.api.OrderStatus` union.

    Args:
        network: The sharded (or monolithic-twin) network to order on.
        capacity: Bounded queue size; beyond it submissions settle
            QUEUE_FULL immediately.
        round_size: Maximum orders placed per round.
        round_interval: Sim seconds between rounds while the queue is
            non-empty.
    """

    def __init__(
        self,
        network: ShardedNetwork,
        capacity: int = 256,
        round_size: int = 8,
        round_interval: float = 0.0,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if round_size < 1:
            raise ConfigurationError(
                f"round_size must be >= 1, got {round_size}"
            )
        if round_interval < 0:
            raise ConfigurationError(
                f"round_interval must be >= 0, got {round_interval}"
            )
        self.network = network
        self._sim = network.sim
        self._capacity = capacity
        self._round_size = round_size
        self._round_interval = float(round_interval)
        self._heap: List[_QueuedOrder] = []
        self._order_seq = itertools.count(1)
        self._arrival_seq = itertools.count(1)
        self._tickets: Dict[str, OrderTicket] = {}
        self._by_order: Dict[str, OrderTicket] = {}
        self._listeners: List[Callable[[OrderTicket, str], None]] = []
        self._proc: Optional[Process] = None
        self._rounds = 0
        network.order_listeners.append(self._on_network_event)

    # -- intake ----------------------------------------------------------------

    def submit(
        self,
        customer: str,
        premises_a: str,
        premises_b: str,
        rate_bps: float,
        kind: Optional[ConnectionKind] = None,
    ) -> OrderTicket:
        """Queue an order; returns its ticket immediately.

        ``kind`` is accepted for contract compatibility but ignored —
        the sharded planner realizes every order as wavelengths.
        """
        ticket = OrderTicket(
            order_id=f"order-{next(self._order_seq)}",
            customer=customer,
            premises_a=premises_a,
            premises_b=premises_b,
            rate_bps=rate_bps,
            submitted_at=self._sim.now,
        )
        self._tickets[ticket.order_id] = ticket
        if len(self._heap) >= self._capacity:
            ticket.state = TicketState.QUEUE_FULL
            ticket.reason = (
                f"order intake queue is full ({self._capacity} waiting)"
            )
            ticket.settled_at = self._sim.now
            self._emit(ticket, "settled")
            return ticket
        entry = _QueuedOrder(
            priority=(self._sim.now, 0.0, next(self._arrival_seq)),
            ticket=ticket,
            kind=kind,
        )
        heapq.heappush(self._heap, entry)
        self._ensure_draining()
        return ticket

    # -- introspection ---------------------------------------------------------

    def queue_depth(self) -> int:
        """Orders currently waiting for a round."""
        return len(self._heap)

    @property
    def capacity(self) -> int:
        """The bounded queue size."""
        return self._capacity

    @property
    def rounds(self) -> int:
        """Placement rounds run so far."""
        return self._rounds

    def tickets(self) -> List[OrderTicket]:
        """Every ticket ever issued, in submission order."""
        return list(self._tickets.values())

    def outcome(self, ticket: OrderTicket):
        """The ticket's typed status from :data:`repro.api.OrderStatus`."""
        from repro import api

        if ticket.state is TicketState.QUEUED:
            return None
        if ticket.state is TicketState.QUEUE_FULL:
            return api.QueueFull(
                order_id=ticket.order_id,
                capacity=self._capacity,
                reason=ticket.reason,
            )
        order = self.network.orders[ticket.connection_id]
        return api.classify_record(order)

    # -- lifecycle listeners ---------------------------------------------------

    def add_listener(
        self, listener: Callable[[OrderTicket, str], None]
    ) -> None:
        """Subscribe to ticket lifecycle events (OrderIntake contract)."""
        self._listeners.append(listener)

    def teardown(self, ticket: OrderTicket) -> None:
        """Tear down an accepted ticket's order across its shards.

        Raises:
            ConfigurationError: for a ticket that never placed an order.
        """
        if ticket.state is not TicketState.ACCEPTED or (
            ticket.connection_id is None
        ):
            raise ConfigurationError(
                f"order {ticket.order_id!r} holds no connection to tear "
                f"down (state {ticket.state.value})"
            )
        self.network.teardown_order(self.network.orders[ticket.connection_id])

    def _emit(self, ticket: OrderTicket, event: str) -> None:
        for listener in list(self._listeners):
            listener(ticket, event)

    def _on_network_event(self, order: ShardOrder, event: str) -> None:
        """Re-broadcast network order edges onto settled tickets."""
        if not self._listeners:
            return
        ticket = self._by_order.get(order.order_id)
        if ticket is None:
            return
        name = _NETWORK_EVENTS.get(event)
        if name is None and event == "blocked":
            # A blocked edge after acceptance is the setup saga rolling
            # the order back — the protocol's "failed" conclusion.
            name = "failed" if ticket.state is TicketState.ACCEPTED else None
        if name is not None:
            self._emit(ticket, name)

    # -- the round loop --------------------------------------------------------

    def _ensure_draining(self) -> None:
        if self._proc is None or self._proc.done:
            self._proc = Process(
                self._sim, self._drain(), label="shard-intake:rounds"
            )

    def _drain(self):
        while self._heap:
            self._run_round()
            if self._heap:
                yield self._round_interval

    def _run_round(self) -> None:
        """Place up to ``round_size`` queued orders as one network round."""
        self._rounds += 1
        take = min(self._round_size, len(self._heap))
        batch = [heapq.heappop(self._heap) for _ in range(take)]
        requests: List[Tuple[str, str, str, float]] = [
            (
                entry.ticket.customer,
                entry.ticket.premises_a,
                entry.ticket.premises_b,
                entry.ticket.rate_bps,
            )
            for entry in batch
        ]
        orders = self.network.place_orders(requests)
        for entry, order in zip(batch, orders):
            ticket = entry.ticket
            ticket.connection_id = order.order_id
            ticket.settled_at = self._sim.now
            self._by_order[order.order_id] = ticket
            if order.state is ConnectionState.BLOCKED:
                ticket.state = TicketState.BLOCKED
                ticket.reason = order.blocked_reason
            else:
                ticket.state = TicketState.ACCEPTED
            self._emit(ticket, "settled")
