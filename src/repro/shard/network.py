"""Sharded continental control: per-region controllers stitched at gateways.

A :class:`ShardedNetwork` serves a 3-tier :class:`~repro.topo.hierarchy.
Hierarchy` with one :class:`GriphonController` per planning unit — one
per region plus one for the express tier — all sharing a single
simulator.  A cross-region order is decomposed by the
:class:`~repro.shard.planner.ShardPlanner` into per-unit segments,
claimed synchronously unit by unit (with reverse unwind on any claim
failure), and set up segment by segment through each unit's provisioning
saga.  A segment whose saga rolls back mid-setup unwinds the whole
order: already-UP segments are torn down, every claim is released, and
the order settles BLOCKED with zero residue in *any* shard — the same
guarantee the monolithic controller gives a single-segment order.

**Ownership partitioning.**  Every resource belongs to exactly one
unit.  A gateway PoP appears in two inventories — its region's (metro
side) and the express tier's (long-haul side) — but with disjoint
hardware: separate transponder/regen pools, separate FXCs, separate
ROADM ports.  Region link sets and the express link set are disjoint by
construction, so per-unit planning rounds can never shadow-claim the
same fiber channel, and two shards can never double-claim a gateway or
express resource.  The flip side: the partitioned pools can exhaust
independently where a monolithic shared pool would not, so differential
workloads must stay below transponder exhaustion.

**The monolithic twin.**  ``mode="monolithic"`` builds one controller
over the full 3-tier graph with the same total equipment (gateways get
the doubled complement: region-side plus express-side hardware), and
routes every segment through the *same* decomposition with per-segment
node/link exclusions confining candidate routes to the owning unit's
subgraph.  Identical candidate routes + identical first-fit channel
scans + identical claim order mean identical structural outcomes,
which :func:`outcome_fingerprint` hashes for the differential test.

**The pool backend.**  ``backend="pool"`` moves *planning* into the
persistent worker processes of :class:`repro.shard.workers.
ShardWorkerPool` — one long-lived worker per unit, each holding a warm
route cache and a delta-synced mirror of its unit's fiber plant — while
the controllers stay authoritative for everything stateful: admission,
claims, sagas, teardown.  Each placement round opens with one
``round_begin`` RPC per worker shipping only the occupancy/liveness
deltas since the last round; each order's segments then fan out as
concurrent ``plan_batch`` RPCs (an order's segments live in distinct
units with disjoint link sets, so concurrent planning is
order-equivalent to sequential).  Because plans depend only on graph +
plant + reach — never on the equipment pools consumed at claim time —
pool outcomes are byte-identical to in-process outcomes, which the
pool differential test pins fingerprint-for-fingerprint.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.admission import AdmissionControl, CustomerProfile
from repro.core.connection import Connection, ConnectionKind, ConnectionState
from repro.core.controller import GriphonController
from repro.core.inventory import InventoryDatabase
from repro.core.rwa import PlanRequest, RwaPlan, _PlanningRound
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    GriphonError,
)
from repro.faults.audit import AuditReport, audit_network
from repro.faults.plan import FaultPlan
from repro.optical.lightpath import LightpathState
from repro.optical.wavelength import WavelengthGrid
from repro.shard.planner import SegmentSpec, ShardPlanner
from repro.shard.workers import (
    MONOLITH,
    ShardWorkerPool,
    UnitRecipe,
    plant_fingerprint,
)
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.randomness import RandomStreams
from repro.topo.hierarchy import EXPRESS, Hierarchy, build_hierarchy
from repro.units import GBPS


class _OrderSegment:
    """One claimed segment of an order: its spec and its lightpath."""

    __slots__ = ("spec", "lightpath", "include_fxc")

    def __init__(self, spec: SegmentSpec, lightpath, include_fxc: bool) -> None:
        self.spec = spec
        self.lightpath = lightpath
        self.include_fxc = include_fxc


class ShardOrder:
    """A cross-shard order: one customer request, many unit segments.

    Attributes:
        order_id: Unique id across the sharded network.
        state: Customer-visible state, same enum the monolithic
            controller uses (REQUESTED/SETTING_UP/UP/BLOCKED/...).
        children: Per-unit child :class:`Connection` records — each
            registered with its unit's controller so that shard's
            invariant audit sees a live owner for every claim.
        segments: The claimed lightpath segments, in path order.
        plan_record: Structural planning outcome (unit, path, channels,
            regen sites) captured at plan time — what the differential
            fingerprint hashes, stable even for later-blocked orders.
    """

    __slots__ = (
        "order_id", "customer", "premises_a", "premises_b", "rate_bps",
        "state", "blocked_reason", "children", "segments", "plan_record",
        "up_at", "released_at",
    )

    def __init__(
        self,
        order_id: str,
        customer: str,
        premises_a: str,
        premises_b: str,
        rate_bps: float,
    ) -> None:
        self.order_id = order_id
        self.customer = customer
        self.premises_a = premises_a
        self.premises_b = premises_b
        self.rate_bps = rate_bps
        self.state = ConnectionState.REQUESTED
        self.blocked_reason = ""
        self.children: Dict[str, Connection] = {}
        self.segments: List[_OrderSegment] = []
        self.plan_record: List[dict] = []
        self.up_at: Optional[float] = None
        self.released_at: Optional[float] = None

    def __repr__(self) -> str:
        return (
            f"ShardOrder({self.order_id} [{self.state.value}] "
            f"{self.premises_a} <-> {self.premises_b})"
        )


def outcome_fingerprint(orders: Sequence[ShardOrder]) -> str:
    """A structural digest of a batch of orders' outcomes.

    Hashes, per order: final state, blocked reason, and per segment the
    owning unit, node path, channel per regen-free hop, and regen sites.
    Deliberately excludes every sequence-assigned identifier (lightpath,
    OT, connection ids) and every timing — those differ between the
    sharded and monolithic deployments even when the outcomes agree.
    """
    payload = []
    for order in orders:
        payload.append(
            {
                "order": order.order_id,
                "state": order.state.value,
                "reason": order.blocked_reason,
                "segments": order.plan_record,
            }
        )
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()


class _PlantMirror:
    """What a worker already knows of its unit's fiber plant.

    Tracks the occupancy masks and failed-link set last shipped to the
    worker so each ``round_begin`` carries only the delta.  Cut/repair
    RPCs forwarded eagerly (:meth:`ShardedNetwork.cut_fiber`) are noted
    here too, so the next round's delta doesn't re-send them.
    """

    __slots__ = ("plant", "_masks", "_failed")

    def __init__(self, plant) -> None:
        self.plant = plant
        self._masks: Dict[Tuple[str, str], int] = {}
        self._failed: frozenset = frozenset()

    def delta(self) -> dict:
        current = self.plant.occupancy_snapshot()
        failed = frozenset(self.plant.failed_links())
        masks = {
            key: mask
            for key, mask in current.items()
            if self._masks.get(key, 0) != mask
        }
        for key in self._masks:
            if key not in current:
                masks[key] = 0
        cut = sorted(failed - self._failed)
        repair = sorted(self._failed - failed)
        self._masks = current
        self._failed = failed
        return {"masks": masks, "cut": cut, "repair": repair}

    def note_cut(self, key: Tuple[str, str]) -> None:
        self._failed |= {key}

    def note_repair(self, key: Tuple[str, str]) -> None:
        self._failed -= {key}


class ShardedNetwork:
    """Per-unit controllers over a hierarchy, or their monolithic twin.

    Args:
        hierarchy: The built 3-tier topology (must have premises).
        mode: ``"sharded"`` (one controller per region + express) or
            ``"monolithic"`` (one controller over the full graph).
        backend: ``"inprocess"`` plans through the controllers' own RWA
            engines; ``"pool"`` fans planning out to the persistent
            worker processes of a :class:`~repro.shard.workers.
            ShardWorkerPool` (byte-identical outcomes — see the module
            docstring).  Pool mode makes the network a context manager;
            use ``with`` or call :meth:`close`.
        seed: Seeds each controller's random-stream family.
        transponders_10g / regens_10g: Per-node complement per unit
            (monolithic gateways get double — both units' hardware).
        grid_size: DWDM channels per fiber.
        k_paths: Candidate routes per segment plan.
        fault_plans: Optional per-unit fault plans, keyed by unit name
            (region name or :data:`EXPRESS`).  The monolithic twin merges
            them into its single controller.
        pool: An existing :class:`~repro.shard.workers.ShardWorkerPool`
            to share (workers for this hierarchy's recipes are ensured);
            by default pool mode spawns and owns its own.
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        mode: str = "sharded",
        seed: int = 0,
        transponders_10g: int = 8,
        regens_10g: int = 4,
        grid_size: int = 80,
        k_paths: int = 4,
        fault_plans: Optional[Dict[str, FaultPlan]] = None,
        backend: str = "inprocess",
        pool: Optional[ShardWorkerPool] = None,
    ) -> None:
        if mode not in ("sharded", "monolithic"):
            raise ConfigurationError(
                f"mode must be 'sharded' or 'monolithic', got {mode!r}"
            )
        if backend not in ("inprocess", "pool"):
            raise ConfigurationError(
                f"backend must be 'inprocess' or 'pool', got {backend!r}"
            )
        self.hierarchy = hierarchy
        self.mode = mode
        self.backend = backend
        self.sim = Simulator()
        self.planner = ShardPlanner(hierarchy)
        self.admission = AdmissionControl()
        self.orders: Dict[str, ShardOrder] = {}
        #: Observers called with ``(order, event)`` on order lifecycle
        #: edges: ``"blocked"`` (refused at placement or rolled back by
        #: the setup saga), ``"up"``, and ``"released"``.  This is the
        #: sharded counterpart of ``GriphonController.observers`` and
        #: what :class:`repro.shard.intake.ShardIntake` re-broadcasts.
        self.order_listeners: List[Callable[[ShardOrder, str], None]] = []
        self._order_seq = itertools.count()
        self._streams = RandomStreams(seed)
        self._prefix = hierarchy.params.get("premises_prefix", "DC-")
        fault_plans = fault_plans or {}
        #: unit name -> the controller planning/claiming for that unit.
        self._unit_controller: Dict[str, GriphonController] = {}
        if mode == "sharded":
            for name in hierarchy.region_names:
                controller = self._build_controller(
                    name,
                    hierarchy.region_graph(name),
                    transponders_10g,
                    regens_10g,
                    grid_size,
                    k_paths,
                    fault_plans.get(name),
                )
                self._unit_controller[name] = controller
            if hierarchy.express_links:
                self._unit_controller[EXPRESS] = self._build_controller(
                    EXPRESS,
                    hierarchy.express_graph(),
                    transponders_10g,
                    regens_10g,
                    grid_size,
                    k_paths,
                    fault_plans.get(EXPRESS),
                )
        else:
            merged = FaultPlan()
            for plan in fault_plans.values():
                for spec in plan.specs:
                    merged.add(spec)
            controller = self._build_controller(
                "mono",
                hierarchy.graph,
                transponders_10g,
                regens_10g,
                grid_size,
                k_paths,
                merged if merged.specs else None,
                gateway_scale=2,
            )
            for name in hierarchy.unit_names():
                self._unit_controller[name] = controller
        #: unit name -> worker recipe (pool backend only).
        self._pool_key: Dict[str, UnitRecipe] = {}
        #: recipe -> parent-side plant mirror (pool backend only).
        self._mirrors: Dict[UnitRecipe, _PlantMirror] = {}
        self._pool: Optional[ShardWorkerPool] = None
        self._owns_pool = False
        if backend == "pool":
            if mode == "sharded":
                self._pool_key = {
                    unit: UnitRecipe.for_network_unit(
                        hierarchy, unit, grid_size=grid_size, k_paths=k_paths
                    )
                    for unit in self._unit_controller
                }
            else:
                mono = UnitRecipe.for_network_unit(
                    hierarchy, MONOLITH, grid_size=grid_size, k_paths=k_paths
                )
                self._pool_key = {
                    unit: mono for unit in self._unit_controller
                }
            for unit, recipe in self._pool_key.items():
                if recipe not in self._mirrors:
                    self._mirrors[recipe] = _PlantMirror(
                        self._unit_controller[unit].inventory.plant
                    )
            if pool is None:
                pool = ShardWorkerPool(recipes=self._mirrors)
                self._owns_pool = True
            else:
                for recipe in self._mirrors:
                    pool.ensure(recipe)
            self._pool = pool

    # -- pool lifecycle -------------------------------------------------------

    def __enter__(self) -> "ShardedNetwork":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Shut down an owned worker pool (no-op for other backends)."""
        if self._pool is not None and self._owns_pool:
            self._pool.close()
        self._pool = None

    def sync_workers(self) -> None:
        """Push plant deltas to every worker and reset their rounds.

        Called automatically at the top of every placement round; also
        useful before comparing :meth:`worker_fingerprints` against
        :meth:`plant_fingerprints`.
        """
        self._pool.call_many(
            [
                (recipe, "round_begin", mirror.delta())
                for recipe, mirror in self._mirrors.items()
            ]
        )

    def _build_controller(
        self,
        label: str,
        graph,
        transponders_10g: int,
        regens_10g: int,
        grid_size: int,
        k_paths: int,
        fault_plan: Optional[FaultPlan],
        gateway_scale: int = 1,
    ) -> GriphonController:
        """Equip one unit's inventory and stand up its controller.

        ``gateway_scale=2`` (the monolithic twin) installs the doubled
        complement at gateways: the region-side plus express-side
        hardware that two separate inventories hold in sharded mode.
        """
        inventory = InventoryDatabase(graph, WavelengthGrid(grid_size))
        gateways = set(self.hierarchy.gateways())
        for node in graph.nodes:
            if node.kind == "premises":
                continue
            scale = gateway_scale if node.name in gateways else 1
            inventory.install_roadm(node.name, add_drop_ports=16 * scale)
            inventory.install_transponders(
                node.name, 10 * GBPS, transponders_10g * scale
            )
            inventory.install_regens(node.name, 10 * GBPS, regens_10g * scale)
            inventory.install_fxc(node.name, port_count=32 * scale)
        for node in graph.nodes:
            if node.kind != "premises":
                continue
            pop = node.name[len(self._prefix):]
            inventory.install_nte(
                node.name, pop, interface_rate_bps=10 * GBPS,
                interface_count=8,
            )
        return GriphonController(
            self.sim,
            inventory,
            self._streams.spawn(f"controller:{label}"),
            k_paths=k_paths,
            auto_restore=False,
            fault_plan=fault_plan,
        )

    # -- introspection --------------------------------------------------------

    @property
    def controllers(self) -> Dict[str, GriphonController]:
        """Unit name -> controller (all the same object in monolithic)."""
        return dict(self._unit_controller)

    def controller_of(self, unit: str) -> GriphonController:
        """The controller serving planning unit ``unit``."""
        return self._unit_controller[unit]

    def register_customer(self, profile: CustomerProfile) -> None:
        """Register a CSP customer with the network-wide admission."""
        self.admission.register_customer(profile)

    def run(self, until: Optional[float] = None) -> int:
        """Advance the shared simulator."""
        return self.sim.run(until=until)

    def audit_shards(self) -> Dict[str, "AuditReport"]:
        """Run the invariant auditor on every shard.

        Returns ``{unit: AuditReport}`` — every report ``ok`` on a
        healthy network.  In monolithic mode the single controller is
        audited once, under the key ``"mono"``.
        """
        results: Dict[str, "AuditReport"] = {}
        seen = set()
        for unit, controller in self._unit_controller.items():
            if id(controller) in seen:
                continue
            seen.add(id(controller))
            key = unit if self.mode == "sharded" else "mono"
            results[key] = audit_network(controller)
        return results

    def route_cache_stats(self) -> Dict[str, dict]:
        """Per-unit route-cache counters (one entry in monolithic mode).

        With the pool backend, planning happens in the workers, so the
        counters come from them (one ``counters`` RPC per worker).
        """
        if self.backend == "pool":
            return {
                self._unit_key(recipe): counters
                for recipe, counters in zip(
                    self._mirrors,
                    self._pool.call_many(
                        [(r, "counters", None) for r in self._mirrors]
                    ),
                )
            }
        stats: Dict[str, dict] = {}
        seen = set()
        for unit, controller in self._unit_controller.items():
            if id(controller) in seen:
                continue
            seen.add(id(controller))
            key = unit if self.mode == "sharded" else "mono"
            stats[key] = controller.planning.route_cache_stats()
        return stats

    def _unit_key(self, recipe: UnitRecipe) -> str:
        """The reporting key of a pool recipe (its unit; mono as-is)."""
        return recipe.unit

    def plant_fingerprints(self) -> Dict[str, str]:
        """Structural digest of each unit's authoritative fiber plant.

        Backend-independent: the controllers own occupancy and failure
        state in both backends, so this is the cross-deployment
        comparison surface.
        """
        result: Dict[str, str] = {}
        seen = set()
        for unit, controller in self._unit_controller.items():
            if id(controller) in seen:
                continue
            seen.add(id(controller))
            key = unit if self.mode == "sharded" else "mono"
            result[key] = plant_fingerprint(controller.inventory.plant)
        return result

    def worker_fingerprints(self) -> Dict[str, dict]:
        """Each worker's ``fingerprint`` RPC result (pool backend only).

        After :meth:`sync_workers`, every worker's ``state`` digest
        equals the matching :meth:`plant_fingerprints` entry — the
        mirror-correctness invariant the differential test asserts.
        """
        if self._pool is None:
            raise ConfigurationError(
                "worker_fingerprints needs backend='pool'"
            )
        return {
            self._unit_key(recipe): fingerprint
            for recipe, fingerprint in zip(
                self._mirrors,
                self._pool.call_many(
                    [(r, "fingerprint", None) for r in self._mirrors]
                ),
            )
        }

    # -- chaos hooks ----------------------------------------------------------

    def _owning_unit(self, a: str, b: str) -> str:
        region_a = self.hierarchy.region_of(a)
        region_b = self.hierarchy.region_of(b)
        if region_a is not None and region_a == region_b:
            return region_a
        return EXPRESS

    def cut_fiber(self, a: str, b: str) -> None:
        """Cut one fiber on the authoritative plant (both backends).

        The owning controller fails affected lightpaths exactly as
        in-process; with the pool backend the ``cut`` RPC is forwarded
        eagerly so the worker plans around the break within the same
        round.
        """
        unit = self._owning_unit(a, b)
        self._unit_controller[unit].cut_link(a, b)
        if self._pool is not None:
            recipe = self._pool_key[unit]
            self._pool.call(recipe, "cut", {"a": a, "b": b})
            self._mirrors[recipe].note_cut((a, b) if a <= b else (b, a))

    def repair_fiber(self, a: str, b: str) -> None:
        """Repair one fiber (inverse of :meth:`cut_fiber`)."""
        unit = self._owning_unit(a, b)
        self._unit_controller[unit].repair_link(a, b)
        if self._pool is not None:
            recipe = self._pool_key[unit]
            self._pool.call(recipe, "repair", {"a": a, "b": b})
            self._mirrors[recipe].note_repair((a, b) if a <= b else (b, a))

    # -- order intake ---------------------------------------------------------

    def place_order(
        self,
        customer: str,
        premises_a: str,
        premises_b: str,
        rate_bps: float = 10 * GBPS,
    ) -> ShardOrder:
        """Place one order (a single-order planning round)."""
        return self.place_orders([(customer, premises_a, premises_b, rate_bps)])[0]

    def place_orders(
        self, requests: Sequence[Tuple[str, str, str, float]]
    ) -> List[ShardOrder]:
        """Place a batch of orders as one logical planning round.

        All requests are decomposed and planned against per-unit
        planning rounds whose shadow-claim overlays accumulate across
        the whole batch — two orders in the same round can never be
        promised the same gateway/express channel, in either deployment
        mode.  Claiming is immediate (inventory bookkeeping); the EMS
        setup workflows run on the shared simulator.

        With the pool backend the round opens with one delta-sync RPC
        per worker, and each worker's *persistent* round then plays the
        overlay role — orders still place sequentially (admission and
        claim ordering are part of the contract), but an order's
        segments plan concurrently across their workers.
        """
        if self.backend == "pool":
            self.sync_workers()
            rounds = None
        else:
            rounds = {
                unit: _PlanningRound() for unit in self._unit_controller
            }
        return [
            self._place(customer, premises_a, premises_b, rate_bps, rounds)
            for customer, premises_a, premises_b, rate_bps in requests
        ]

    def teardown_order(self, order: ShardOrder) -> ShardOrder:
        """Tear an UP order down across every shard it touches."""
        if order.state is not ConnectionState.UP:
            raise ConfigurationError(
                f"{order.order_id} is {order.state.value}; teardown needs UP"
            )
        order.state = ConnectionState.TEARING_DOWN
        for child in order.children.values():
            child.transition(ConnectionState.TEARING_DOWN)
        Process(
            self.sim,
            self._teardown_workflow(order),
            label=f"shard-teardown:{order.order_id}",
        )
        return order

    # -- order internals ------------------------------------------------------

    def _place(
        self,
        customer: str,
        premises_a: str,
        premises_b: str,
        rate_bps: float,
        rounds: Dict[str, _PlanningRound],
    ) -> ShardOrder:
        order = ShardOrder(
            f"xo-{next(self._order_seq)}",
            customer,
            premises_a,
            premises_b,
            rate_bps,
        )
        self.orders[order.order_id] = order
        try:
            self.admission.admit(customer, premises_a, premises_b, rate_bps)
        except AdmissionError as exc:
            return self._block(order, exc, admitted=False)
        try:
            specs = self.planner.decompose(
                self._pop_of(premises_a),
                self._pop_of(premises_b),
                monolithic=self.mode == "monolithic",
            )
            plans = self._plan_segments(order, specs, rate_bps, rounds)
        except GriphonError as exc:
            return self._block(order, exc, admitted=True)
        try:
            self._claim(order, specs, plans)
        except GriphonError as exc:
            return self._block(order, exc, admitted=True)
        for child in order.children.values():
            child.transition(ConnectionState.SETTING_UP)
        order.state = ConnectionState.SETTING_UP
        Process(
            self.sim,
            self._setup_workflow(order),
            label=f"shard-setup:{order.order_id}",
        )
        return order

    def _pop_of(self, premises: str) -> str:
        """The PoP a premises hangs off (pure naming, mode-independent)."""
        if not premises.startswith(self._prefix):
            raise ConfigurationError(f"unknown premises {premises!r}")
        return premises[len(self._prefix):]

    def _block(
        self, order: ShardOrder, exc: Exception, admitted: bool
    ) -> ShardOrder:
        if admitted:
            self.admission.release(order.customer, order.rate_bps)
        order.state = ConnectionState.BLOCKED
        order.blocked_reason = str(exc)
        self._notify_order(order, "blocked")
        return order

    def _notify_order(self, order: ShardOrder, event: str) -> None:
        for listener in list(self.order_listeners):
            listener(order, event)

    def _plan_segments(
        self,
        order: ShardOrder,
        specs: List[SegmentSpec],
        rate_bps: float,
        rounds: Dict[str, _PlanningRound],
    ) -> List[RwaPlan]:
        """Plan every segment against its unit's accumulated round.

        Each segment plans through ``plan_batch`` with the round's
        shadow-claim overlay, so earlier orders in the batch (and
        earlier segments of this order) already hold their channels.
        All of an order's segments plan as one fan-out before failure
        checking (the pool backend plans them concurrently, so there is
        no "earlier segment" to stop at).  A failed segment blocks the
        whole order; the channels its sibling segments shadow-claimed
        stay claimed for the rest of the round — conservative, but
        identical across modes *and* backends.

        Pool backend: the segments' ``plan_batch`` RPCs fan out in one
        :meth:`~repro.shard.workers.ShardWorkerPool.call_many` — an
        order has at most one segment per unit, and unit link sets are
        disjoint, so concurrent planning commits the same overlay state
        sequential planning would.
        """
        requests = [
            PlanRequest(
                spec.source,
                spec.destination,
                rate_bps,
                excluded_links=tuple(spec.excluded_links),
                excluded_nodes=tuple(spec.excluded_nodes),
            )
            for spec in specs
        ]
        if self.backend == "pool":
            items = [
                batch[0]
                for batch in self._pool.call_many(
                    [
                        (
                            self._pool_key[spec.unit],
                            "plan_batch",
                            {"requests": [request], "round": True},
                        )
                        for spec, request in zip(specs, requests)
                    ]
                )
            ]
        else:
            items = [
                self._unit_controller[spec.unit].rwa.plan_batch(
                    [request], round_ctx=rounds[spec.unit]
                )[0]
                for spec, request in zip(specs, requests)
            ]
        plans: List[RwaPlan] = []
        for spec, item in zip(specs, items):
            if not item.ok:
                raise item.error
            plans.append(item.plan)
            order.plan_record.append(
                {
                    "unit": spec.unit,
                    "path": list(item.plan.path),
                    "channels": [
                        segment.channel for segment in item.plan.segments
                    ],
                    "regens": list(item.plan.regen_sites),
                }
            )
        return plans

    def _child(self, order: ShardOrder, unit: str, a: str, b: str) -> Connection:
        """Get or create the order's child connection in ``unit``'s shard."""
        child = order.children.get(unit)
        if child is None:
            controller = self._unit_controller[unit]
            child = Connection(
                f"{order.order_id}/{unit}",
                order.customer,
                a,
                b,
                order.rate_bps,
                ConnectionKind.WAVELENGTH,
                requested_at=self.sim.now,
            )
            controller.connections[child.connection_id] = child
            order.children[unit] = child
        return child

    def _claim(
        self,
        order: ShardOrder,
        specs: List[SegmentSpec],
        plans: List[RwaPlan],
    ) -> None:
        """Claim every segment's resources, unwinding in reverse on failure.

        Claim order is deterministic (segments in path order, then NTE
        ends, then FXC steering), so both deployment modes consume
        first-fit resources identically.
        """
        hierarchy = self.hierarchy
        region_a = hierarchy.region_of(order.premises_a)
        region_b = hierarchy.region_of(order.premises_b)
        pop_a = self._pop_of(order.premises_a)
        pop_b = self._pop_of(order.premises_b)
        claimed: List[_OrderSegment] = []
        try:
            for spec, plan in zip(specs, plans):
                controller = self._unit_controller[spec.unit]
                child = self._child(order, spec.unit, spec.source, spec.destination)
                lightpath = controller.provisioner.claim(plan)
                child.lightpath_ids.append(lightpath.lightpath_id)
                controller._lightpath_conn[lightpath.lightpath_id] = (
                    child.connection_id
                )
                claimed.append(
                    _OrderSegment(
                        spec, lightpath, include_fxc=spec.unit != EXPRESS
                    )
                )
            order.segments = claimed
            # Endpoint region children always exist — even when their
            # region segment is degenerate (the premises' PoP *is* the
            # gateway) they own the premises NTE interface and the
            # access-side FXC steering, which live in region inventory.
            child_a = self._child(order, region_a, pop_a, pop_a)
            child_b = self._child(order, region_b, pop_b, pop_b)
            for child, premises in (
                (child_a, order.premises_a),
                (child_b, order.premises_b),
            ):
                controller = self._unit_controller[self._child_unit(order, child)]
                nte = controller.inventory.ntes[premises]
                index = nte.claim_interface(
                    child.connection_id, channelized=False
                )
                child.nte_interfaces.append(("wave", premises, index))
            self._claim_steering(order)
        except GriphonError:
            self._unwind_claims(order, claimed)
            raise

    def _child_unit(self, order: ShardOrder, child: Connection) -> str:
        for unit, candidate in order.children.items():
            if candidate is child:
                return unit
        raise ConfigurationError(f"orphan child {child.connection_id}")

    def _claim_steering(self, order: ShardOrder) -> None:
        """Program the FXC stitching at endpoints and traversed gateways.

        Each unit's cross-connects go through that unit's own FXCs: the
        access signal enters at the source PoP, hands off region-OT to
        express-OT at each gateway (two cross-connects — one per unit,
        on that unit's gateway FXC), and exits at the destination PoP.
        """
        handoff = f"handoff:{order.order_id}"
        access = f"access:{order.order_id}"
        region_a = self.hierarchy.region_of(order.premises_a)
        region_b = self.hierarchy.region_of(order.premises_b)
        pop_a = self._pop_of(order.premises_a)
        pop_b = self._pop_of(order.premises_b)
        segments_of: Dict[str, _OrderSegment] = {
            seg.spec.unit: seg for seg in order.segments
        }
        for unit, child in order.children.items():
            controller = self._unit_controller[unit]
            segment = segments_of.get(unit)
            if segment is None:
                # Degenerate endpoint region: the PoP is the gateway;
                # steer access straight into the express handoff.
                pop = pop_a if unit == region_a else pop_b
                controller._steer(pop, child.connection_id, access, handoff, child)
                continue
            lightpath = segment.lightpath
            source_ot, dest_ot = lightpath.ot_ids[0], lightpath.ot_ids[1]
            source_label = access if lightpath.source == pop_a and unit == region_a else handoff
            dest_label = access if lightpath.destination == pop_b and unit == region_b else handoff
            controller._steer(
                lightpath.source, child.connection_id,
                source_label, source_ot, child,
            )
            controller._steer(
                lightpath.destination, child.connection_id,
                dest_ot, dest_label, child,
            )

    def _unwind_claims(
        self, order: ShardOrder, claimed: List[_OrderSegment]
    ) -> None:
        """Release everything a partially claimed order holds, in reverse."""
        for unit, child in order.children.items():
            controller = self._unit_controller[unit]
            controller._release_steering(child)
            controller._release_nte_claims(
                child.nte_interfaces, child.connection_id
            )
            child.nte_interfaces = []
        for segment in reversed(claimed):
            controller = self._unit_controller[segment.spec.unit]
            controller._lightpath_conn.pop(
                segment.lightpath.lightpath_id, None
            )
            controller.provisioner.release(segment.lightpath)
        for unit, child in list(order.children.items()):
            controller = self._unit_controller[unit]
            del controller.connections[child.connection_id]
        order.children = {}
        order.segments = []

    # -- simulated workflows --------------------------------------------------

    def _setup_workflow(self, order: ShardOrder):
        """Set up every segment in path order; unwind all on any abort.

        Each segment runs its unit's provisioning saga.  A saga that
        rolls back (EMS failure with retries exhausted) leaves its
        lightpath RELEASED; this workflow then tears down the already-UP
        segments of *other* shards, releases every endpoint claim, and
        settles the order BLOCKED — the cross-shard extension of the
        single-controller saga guarantee.
        """
        completed: List[_OrderSegment] = []
        failed: Optional[_OrderSegment] = None
        for segment in order.segments:
            controller = self._unit_controller[segment.spec.unit]
            yield from controller.provisioner.setup_workflow(
                segment.lightpath, include_fxc=segment.include_fxc
            )
            if segment.lightpath.state is not LightpathState.UP:
                failed = segment
                break
            completed.append(segment)
        if failed is None:
            for child in order.children.values():
                child.transition(ConnectionState.UP)
                child.up_at = self.sim.now
            order.state = ConnectionState.UP
            order.up_at = self.sim.now
            self._notify_order(order, "up")
            return
        # Cross-shard unwind.
        error = failed.lightpath.setup_error
        for segment in reversed(completed):
            controller = self._unit_controller[segment.spec.unit]
            yield from controller.provisioner.teardown_workflow(
                segment.lightpath, include_fxc=segment.include_fxc
            )
        failed_controller = self._unit_controller[failed.spec.unit]
        if failed.lightpath.state is LightpathState.FAILED:
            # Died to a fiber cut during setup rather than a saga
            # rollback: the claim bookkeeping is still in place.
            failed_controller.provisioner.release(failed.lightpath)
        for unit, child in order.children.items():
            controller = self._unit_controller[unit]
            for lightpath_id in child.lightpath_ids:
                controller._lightpath_conn.pop(lightpath_id, None)
            child.lightpath_ids = []
            controller._release_nte_claims(
                child.nte_interfaces, child.connection_id
            )
            child.nte_interfaces = []
            controller._release_steering(child)
            child.setup_error = error
            child.blocked_reason = f"setup failed: {error}"
            child.transition(ConnectionState.BLOCKED)
        self.admission.release(order.customer, order.rate_bps)
        order.state = ConnectionState.BLOCKED
        order.blocked_reason = f"setup failed: {error}"
        self._notify_order(order, "blocked")

    def _teardown_workflow(self, order: ShardOrder):
        for segment in reversed(order.segments):
            controller = self._unit_controller[segment.spec.unit]
            if segment.lightpath.state in (
                LightpathState.UP, LightpathState.FAILED
            ):
                yield from controller.provisioner.teardown_workflow(
                    segment.lightpath, include_fxc=segment.include_fxc
                )
            controller._lightpath_conn.pop(
                segment.lightpath.lightpath_id, None
            )
        for unit, child in order.children.items():
            controller = self._unit_controller[unit]
            controller._release_nte_claims(
                child.nte_interfaces, child.connection_id
            )
            child.nte_interfaces = []
            controller._release_steering(child)
            child.lightpath_ids = []
            child.transition(ConnectionState.RELEASED)
            child.released_at = self.sim.now
        self.admission.release(order.customer, order.rate_bps)
        order.state = ConnectionState.RELEASED
        order.released_at = self.sim.now
        self._notify_order(order, "released")


def build_sharded_network(
    seed: int = 0,
    regions: int = 4,
    pops_per_region: int = 8,
    gateways_per_region: int = 2,
    mode: str = "sharded",
    transponders_10g: int = 8,
    regens_10g: int = 4,
    grid_size: int = 80,
    k_paths: int = 4,
    fault_plans: Optional[Dict[str, FaultPlan]] = None,
    hierarchy: Optional[Hierarchy] = None,
    backend: str = "inprocess",
    pool: Optional[ShardWorkerPool] = None,
) -> ShardedNetwork:
    """Build a ready-to-order sharded (or monolithic-twin) network.

    The hierarchy is built with premises attached (one per PoP) so
    orders have NTE endpoints; pass ``hierarchy`` to reuse one already
    built — e.g. to run both modes of the differential test on the
    exact same topology object.  ``backend="pool"`` plans through
    persistent worker processes (close the network, or use ``with``).
    """
    if hierarchy is None:
        hierarchy = build_hierarchy(
            seed,
            regions=regions,
            pops_per_region=pops_per_region,
            gateways_per_region=gateways_per_region,
            with_premises=True,
        )
    return ShardedNetwork(
        hierarchy,
        mode=mode,
        seed=seed,
        transponders_10g=transponders_10g,
        regens_10g=regens_10g,
        grid_size=grid_size,
        k_paths=k_paths,
        fault_plans=fault_plans,
        backend=backend,
        pool=pool,
    )
