"""The shard planning unit: one graph + inventory + RWA + route cache.

A :class:`ShardUnit` is the self-contained planning state of one
controller shard — exactly the slice of :class:`GriphonController`
state that RWA needs: the topology, the fiber plant with its wavelength
occupancy, the equipment pools, the :class:`RwaEngine`, and its
:class:`RouteCache`.  The controller itself now builds one of these and
aliases ``controller.rwa`` to the unit's engine, so the monolithic and
the sharded deployments plan through the same object.

Built standalone (no tracer, no simulator), a unit is **picklable**:
everything inside is plain data, which is what lets the shard benchmark
map units onto the :mod:`repro.sweep` ProcessPool machinery — a worker
either receives a unit or, cheaper, rebuilds it deterministically from
``(seed, region params)`` via the builders below.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.inventory import InventoryDatabase
from repro.core.rwa import BatchPlanItem, PlanRequest, RwaEngine, RwaPlan
from repro.optical.impairments import ReachModel
from repro.optical.wavelength import WavelengthGrid
from repro.sim.randomness import RandomStreams
from repro.topo.graph import NetworkGraph
from repro.topo.hierarchy import (
    EXPRESS,
    build_express_graph,
    build_region_graph,
)
from repro.units import GBPS


class ShardUnit:
    """One shard's planning state: graph, inventory, RWA, route cache.

    Args:
        name: The unit's label (a region name, ``"express"``, or — for
            the monolithic controller — ``"controller"``).
        inventory: The inventory the unit owns.  Every resource in it
            belongs to this unit and no other; cross-unit stitching
            happens at gateway PoPs, which appear in both a region unit
            (metro side) and the express unit (long-haul side) but with
            disjoint equipment.
        reach / k_paths / assignment / streams / route_cache /
        route_cache_size / tracer: Forwarded to :class:`RwaEngine`.
    """

    def __init__(
        self,
        name: str,
        inventory: InventoryDatabase,
        reach: Optional[ReachModel] = None,
        k_paths: int = 4,
        assignment: str = "first-fit",
        streams: Optional[RandomStreams] = None,
        route_cache=None,
        route_cache_size: int = 1024,
        tracer=None,
    ) -> None:
        self.name = name
        self.inventory = inventory
        self.rwa = RwaEngine(
            inventory,
            reach=reach,
            k_paths=k_paths,
            assignment=assignment,
            streams=streams,
            route_cache=route_cache,
            route_cache_size=route_cache_size,
            tracer=tracer,
        )

    @property
    def graph(self) -> NetworkGraph:
        """The unit's topology."""
        return self.inventory.graph

    @property
    def route_cache(self):
        """The unit's route cache (``None`` when disabled)."""
        return self.rwa.route_cache

    def owns_node(self, node: str) -> bool:
        """True when ``node`` is in this unit's graph."""
        return self.inventory.graph.has_node(node)

    def plan(self, source: str, destination: str, rate_bps: float) -> RwaPlan:
        """Plan one request against this unit's inventory."""
        return self.rwa.plan(source, destination, rate_bps)

    def plan_batch(
        self,
        requests: Sequence[PlanRequest],
        round_ctx=None,
    ) -> List[BatchPlanItem]:
        """Batch-plan against this unit (see :meth:`RwaEngine.plan_batch`)."""
        return self.rwa.plan_batch(requests, round_ctx=round_ctx)

    def occupy_plan(self, plan: RwaPlan, owner: str) -> None:
        """Light a plan's channels on this unit's fiber plant.

        The benchmark-weight commit: wavelength occupancy only, no
        transponder/regen/port claims and no EMS workflows.  Subsequent
        planning rounds see the occupied channels, which is all
        plan-throughput measurements need.
        """
        plant = self.inventory.plant
        for segment in plan.segments:
            for u, v in segment.links:
                plant.dwdm_link(u, v).occupy(segment.channel, owner)

    def release_plan(self, plan: RwaPlan, owner: str) -> None:
        """Darken a previously occupied plan's channels (inverse of
        :meth:`occupy_plan`), verifying ownership per channel."""
        plant = self.inventory.plant
        for segment in reversed(plan.segments):
            for u, v in reversed(segment.links):
                plant.dwdm_link(u, v).release(segment.channel, owner)

    def route_cache_stats(self) -> dict:
        """The route cache's counters (zeros when caching is disabled)."""
        if self.rwa.route_cache is None:
            return {
                "size": 0,
                "capacity": 0,
                "hits": 0,
                "misses": 0,
                "invalidations": 0,
                "evictions": 0,
                "hit_rate": 0.0,
            }
        return self.rwa.route_cache.stats()

    def __repr__(self) -> str:
        return (
            f"ShardUnit({self.name!r}, nodes={len(self.graph.nodes)}, "
            f"links={len(self.graph.links)})"
        )


# -- equipment + unit builders ------------------------------------------------


def _install_planning_equipment(
    inventory: InventoryDatabase,
    transponders_10g: int,
    regens_10g: int,
) -> None:
    """Install the wavelength-layer complement planning depends on."""
    for node in inventory.graph.nodes:
        if node.kind != "roadm":
            continue
        inventory.install_roadm(node.name, add_drop_ports=16)
        inventory.install_transponders(
            node.name, 10 * GBPS, transponders_10g
        )
        inventory.install_regens(node.name, 10 * GBPS, regens_10g)


def build_region_unit(
    seed: int,
    region: str,
    pops_per_region: int,
    region_plane_km: float = 1200.0,
    grid_size: int = 80,
    transponders_10g: int = 6,
    regens_10g: int = 4,
    k_paths: int = 4,
    route_cache_size: int = 1024,
    alpha: float = 0.4,
    beta: float = 0.35,
    with_premises: bool = False,
    premises_prefix: str = "DC-",
) -> ShardUnit:
    """Build one region's planning unit, standalone and picklable.

    Deterministic in ``(seed, region, params)`` — a sweep worker calling
    this reproduces exactly the region slice the parent derived from
    :func:`repro.topo.hierarchy.build_hierarchy` with the same seed.
    ``with_premises`` must match the hierarchy's so a worker mirroring a
    premises-bearing deployment sees the identical graph (premises are
    leaves, so candidate PoP routes are unaffected either way).
    """
    graph = build_region_graph(
        seed,
        region,
        pops_per_region,
        region_plane_km=region_plane_km,
        alpha=alpha,
        beta=beta,
        with_premises=with_premises,
        premises_prefix=premises_prefix,
    )
    inventory = InventoryDatabase(graph, WavelengthGrid(grid_size))
    _install_planning_equipment(inventory, transponders_10g, regens_10g)
    return ShardUnit(
        region,
        inventory,
        k_paths=k_paths,
        route_cache_size=route_cache_size,
    )


def build_express_unit(
    regions: int,
    gateways_per_region: int,
    pops_per_region: int,
    express_length_km: float = 600.0,
    grid_size: int = 80,
    transponders_10g: int = 6,
    regens_10g: int = 4,
    k_paths: int = 4,
    route_cache_size: int = 1024,
) -> ShardUnit:
    """Build the express tier's planning unit, standalone and picklable.

    The express unit's transponders/regens at a gateway are *separate
    hardware* from the region unit's at the same PoP: each unit owns
    its own inventory, so a gateway's metro-facing and express-facing
    equipment can never be double-claimed across units.
    """
    graph = build_express_graph(
        regions,
        gateways_per_region,
        pops_per_region,
        express_length_km=express_length_km,
    )
    inventory = InventoryDatabase(graph, WavelengthGrid(grid_size))
    _install_planning_equipment(inventory, transponders_10g, regens_10g)
    return ShardUnit(
        EXPRESS,
        inventory,
        k_paths=k_paths,
        route_cache_size=route_cache_size,
    )
