"""Units, data rates, and the standard rate hierarchies used throughout.

All data rates in the library are expressed in **bits per second** (plain
``float``), all times in **seconds**, and all data volumes in **bits**.
This module provides the named constants and conversion helpers so callers
never write raw powers of ten, plus the standard SONET ``STS-n`` and OTN
``ODUk`` rate tables the carrier layers are built on.
"""

from __future__ import annotations

from dataclasses import dataclass

# --------------------------------------------------------------------------
# Base multipliers (bits per second).
# --------------------------------------------------------------------------

KBPS = 1e3
MBPS = 1e6
GBPS = 1e9
TBPS = 1e12

# Convenience byte-volume multipliers (bits).
KILOBYTE = 8e3
MEGABYTE = 8e6
GIGABYTE = 8e9
TERABYTE = 8e12
PETABYTE = 8e15

# Time multipliers (seconds).
MILLISECOND = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY


def gbps(value: float) -> float:
    """Return ``value`` gigabits per second expressed in bits per second."""
    return value * GBPS


def mbps(value: float) -> float:
    """Return ``value`` megabits per second expressed in bits per second."""
    return value * MBPS


def terabytes(value: float) -> float:
    """Return ``value`` terabytes expressed in bits."""
    return value * TERABYTE


def transfer_time(volume_bits: float, rate_bps: float) -> float:
    """Return the seconds needed to move ``volume_bits`` at ``rate_bps``.

    Raises:
        ValueError: if the rate is not positive or the volume is negative.
    """
    if rate_bps <= 0:
        raise ValueError(f"transfer rate must be positive, got {rate_bps}")
    if volume_bits < 0:
        raise ValueError(f"volume must be non-negative, got {volume_bits}")
    return volume_bits / rate_bps


def format_rate(rate_bps: float) -> str:
    """Render a rate with the most natural SI prefix, e.g. ``'10.0 Gbps'``."""
    if rate_bps < 0:
        raise ValueError(f"rate must be non-negative, got {rate_bps}")
    for unit, name in ((TBPS, "Tbps"), (GBPS, "Gbps"), (MBPS, "Mbps"), (KBPS, "kbps")):
        if rate_bps >= unit:
            return f"{rate_bps / unit:.4g} {name}"
    return f"{rate_bps:.4g} bps"


def format_duration(seconds: float) -> str:
    """Render a duration human-readably, e.g. ``'2.0 min'`` or ``'3.5 h'``."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds >= WEEK:
        return f"{seconds / WEEK:.4g} wk"
    if seconds >= DAY:
        return f"{seconds / DAY:.4g} d"
    if seconds >= HOUR:
        return f"{seconds / HOUR:.4g} h"
    if seconds >= MINUTE:
        return f"{seconds / MINUTE:.4g} min"
    if seconds >= 1:
        return f"{seconds:.4g} s"
    return f"{seconds * 1e3:.4g} ms"


# --------------------------------------------------------------------------
# SONET rate hierarchy (payload-oriented nominal client rates).
# --------------------------------------------------------------------------

#: STS-1 is the SONET base signal (51.84 Mbps line rate; the paper rounds
#: to 52 Mbps).  ``STS_RATES[n]`` is the rate of a concatenated STS-n.
STS1_RATE = 51.84 * MBPS

#: Standard optical-carrier levels and their STS multiples.
OC_LEVELS = {
    "OC-1": 1,
    "OC-3": 3,
    "OC-12": 12,
    "OC-48": 48,
    "OC-192": 192,
    "OC-768": 768,
}


def sts_rate(n: int) -> float:
    """Return the rate in bps of an ``STS-n`` signal.

    Raises:
        ValueError: if ``n`` is not a positive integer.
    """
    if n < 1:
        raise ValueError(f"STS level must be >= 1, got {n}")
    return n * STS1_RATE


def oc_rate(name: str) -> float:
    """Return the rate in bps of an optical-carrier level such as ``'OC-48'``.

    Raises:
        KeyError: for an unknown OC level name.
    """
    return sts_rate(OC_LEVELS[name])


#: DS-level legacy TDM rates handled by the W-DCS layer.
DS0_RATE = 64 * KBPS
DS1_RATE = 1.544 * MBPS
DS3_RATE = 44.736 * MBPS


# --------------------------------------------------------------------------
# OTN (ITU-T G.709) ODU hierarchy.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class OduLevel:
    """One level of the ODU multiplexing hierarchy.

    Attributes:
        name: Canonical name, e.g. ``'ODU2'``.
        rate_bps: Approximate payload rate in bits per second.
        tributary_slots: Number of 1.25G tributary slots the container
            occupies when multiplexed into a higher-order ODU.
    """

    name: str
    rate_bps: float
    tributary_slots: int


#: The ODU levels GRIPhoN's OTN layer switches.  ODU0 is the paper's
#: 1.25 Gbps cross-connect granularity (carrying 1 GbE clients).
ODU_LEVELS = {
    "ODU0": OduLevel("ODU0", 1.25 * GBPS, 1),
    "ODU1": OduLevel("ODU1", 2.5 * GBPS, 2),
    "ODU2": OduLevel("ODU2", 10.04 * GBPS, 8),
    "ODU3": OduLevel("ODU3", 40.32 * GBPS, 32),
    "ODU4": OduLevel("ODU4", 104.79 * GBPS, 80),
}


def odu_for_rate(client_rate_bps: float) -> OduLevel:
    """Return the smallest ODU level that carries ``client_rate_bps``.

    Raises:
        ValueError: if the rate is not positive or exceeds ODU4.
    """
    if client_rate_bps <= 0:
        raise ValueError(f"client rate must be positive, got {client_rate_bps}")
    for level in sorted(ODU_LEVELS.values(), key=lambda lv: lv.rate_bps):
        if level.rate_bps >= client_rate_bps:
            return level
    raise ValueError(
        f"client rate {format_rate(client_rate_bps)} exceeds the ODU4 ceiling"
    )
