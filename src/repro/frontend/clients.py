"""Simulated client fleets fanning into the frontend.

:class:`ClientFleet` is the load generator for the frontend benchmarks:
an **open-loop** arrival process (clients submit on their own schedule
regardless of how the service is coping — the honest way to measure
overload behavior) over a heavy-tailed
:class:`~repro.workload.tenants.TenantPopulation`.

The whole arrival timeline is pre-generated from seeded substreams and
batch-scheduled with :meth:`~repro.sim.kernel.Simulator.schedule_many`
(one O(n) heapify), and per-order follow-up uses future callbacks
rather than one coroutine per client — at a million submissions, task
objects would dominate the profile.  The coroutine surface
(:class:`~repro.frontend.aio.Task`) is exercised by the interactive
tests instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import api
from repro.errors import ConfigurationError
from repro.frontend.service import BodFrontend, FrontendTicket
from repro.sim.randomness import RandomStreams
from repro.units import GBPS
from repro.workload.tenants import TenantPopulation


class FleetStats:
    """What became of a fleet's submissions, by outcome class.

    Attributes:
        submitted: Orders the fleet actually submitted.
        outcomes: ``{outcome class name: count}`` over resolved tickets.
        order_to_active: Per-order frontend-submit → ACTIVE latencies.
    """

    __slots__ = ("submitted", "outcomes", "order_to_active")

    def __init__(self) -> None:
        self.submitted = 0
        self.outcomes: Dict[str, int] = {}
        self.order_to_active: List[float] = []

    def resolved(self) -> int:
        """Tickets whose outcome arrived."""
        return sum(self.outcomes.values())

    def count(self, name: str) -> int:
        """Resolved tickets of one outcome class (e.g. ``"Active"``)."""
        return self.outcomes.get(name, 0)


class ClientFleet:
    """An open-loop Poisson fleet submitting through one frontend.

    Args:
        frontend: The service edge to submit through.
        population: Tenant population sampled per arrival (profiles are
            lazily registered against ``admission``).
        admission: The ledger tenants must be registered with.
        premises: Candidate endpoints; each arrival picks an ordered
            pair uniformly.
        streams: Seeded stream family — one fleet, one family; spawn
            per fleet for independence.
        arrival_rate: Mean submissions per sim-second (Poisson).
        duration: Sim seconds of arrivals to pre-generate.
        rate_choices_gbps: Order sizes drawn uniformly per arrival.
        burst_interval: When set, arrival times are quantized down to
            multiples of this interval, so every arrival in a window
            lands on the same instant — the thundering-herd shape that
            actually pressures the bounded queue (smooth arrivals are
            drained one at a time and never backlog a zero-sim-time
            planner).
    """

    def __init__(
        self,
        frontend: BodFrontend,
        population: TenantPopulation,
        admission,
        premises: Sequence[str],
        streams: RandomStreams,
        arrival_rate: float = 10.0,
        duration: float = 100.0,
        rate_choices_gbps: Sequence[float] = (10.0,),
        burst_interval: Optional[float] = None,
    ) -> None:
        if arrival_rate <= 0:
            raise ConfigurationError(
                f"arrival_rate must be > 0, got {arrival_rate}"
            )
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        if len(premises) < 2:
            raise ConfigurationError("need at least two premises to order")
        if burst_interval is not None and burst_interval <= 0:
            raise ConfigurationError(
                f"burst_interval must be > 0, got {burst_interval}"
            )
        self._frontend = frontend
        self._population = population
        self._admission = admission
        self._premises = list(premises)
        self._streams = streams
        self._arrival_rate = arrival_rate
        self._duration = duration
        self._rate_choices = list(rate_choices_gbps)
        self._burst_interval = burst_interval
        self.stats = FleetStats()
        self.tickets: List[FrontendTicket] = []

    def start(self) -> int:
        """Pre-generate and schedule the whole arrival timeline.

        Returns the number of arrivals scheduled.  Arrival times,
        tenant draws, endpoint pairs, and rates all come from dedicated
        substreams, so the timeline is a pure function of the seed.
        """
        sim = self._frontend._sim
        clock = self._streams.stream("fleet.arrivals")
        tenants = self._streams.stream("fleet.tenants")
        pairs = self._streams.stream("fleet.premises")
        sizes = self._streams.stream("fleet.rates")
        mean_gap = 1.0 / self._arrival_rate
        now = sim.now
        entries: List[Tuple[float, object, tuple]] = []
        time = now
        while True:
            time += clock.expovariate(1.0 / mean_gap)
            if time - now > self._duration:
                break
            when = time
            if self._burst_interval is not None:
                when = now + (
                    (time - now) // self._burst_interval
                ) * self._burst_interval
            tenant = self._population.sample(tenants)
            index_a = pairs.randrange(len(self._premises))
            index_b = pairs.randrange(len(self._premises) - 1)
            if index_b >= index_a:
                index_b += 1
            rate = (
                self._rate_choices[sizes.randrange(len(self._rate_choices))]
                * GBPS
            )
            entries.append(
                (
                    when,
                    self._submit_one,
                    (
                        tenant,
                        self._premises[index_a],
                        self._premises[index_b],
                        rate,
                    ),
                )
            )
        sim.schedule_many(entries)
        return len(entries)

    def _submit_one(
        self, tenant: str, premises_a: str, premises_b: str, rate_bps: float
    ) -> None:
        """One arrival: lazy-register the tenant, submit, track outcome."""
        self._population.ensure_registered(self._admission, tenant)
        ticket = self._frontend.submit(tenant, premises_a, premises_b, rate_bps)
        self.stats.submitted += 1
        self.tickets.append(ticket)
        ticket.future.add_done_callback(
            lambda outcome, _t=ticket: self._record(_t, outcome)
        )

    def _record(self, ticket: FrontendTicket, outcome: object) -> None:
        name = type(outcome).__name__
        self.stats.outcomes[name] = self.stats.outcomes.get(name, 0) + 1
        if isinstance(outcome, api.Active):
            self.stats.order_to_active.append(
                self._frontend._sim.now - ticket.submitted_at
            )


def teardown_active(
    frontend: BodFrontend, tickets: Sequence[FrontendTicket]
) -> int:
    """Tear down every ticket currently holding an ACTIVE connection.

    A convenience for soak loops that cycle capacity: returns how many
    teardowns were ordered.
    """
    count = 0
    for ticket in tickets:
        outcome: Optional[object] = ticket.outcome
        if isinstance(outcome, api.Active) and ticket.order_ticket is not None:
            frontend._intake.teardown(ticket.order_ticket)
            count += 1
    return count
