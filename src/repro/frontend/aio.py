"""A deterministic async runtime over the discrete-event kernel.

``asyncio`` cannot drive simulated clients: its event loop reads the
wall clock, and its ready-queue ordering is an implementation detail —
both would break the repo-wide rule that the same seed produces
byte-identical results.  This module provides the minimal awaitable
surface the service frontend needs, built directly on
:class:`~repro.sim.kernel.Simulator`:

* :class:`SimFuture` — a one-shot result cell whose callbacks fire as
  zero-delay kernel events, so resumption order is exactly the kernel's
  FIFO tiebreak among equal timestamps;
* :class:`Task` — drives a Python coroutine, resuming it each time the
  future it awaits resolves;
* :func:`sleep` — a future resolved after a sim-time delay;
* :func:`gather` — a future resolved when every child future is.

A coroutine written against this module (``await frontend.submit(...)``;
``await sleep(sim, 1.0)``) runs interleaved with thousands of siblings
in a single OS thread, at event-heap speed, with no wall-clock
dependence anywhere.
"""

from __future__ import annotations

from typing import Any, Callable, Coroutine, Generator, List, Optional, Sequence

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class SimFuture:
    """A one-shot, sim-scheduled result cell (the awaitable primitive).

    ``resolve(value)`` stores the value and schedules every registered
    callback as a zero-delay kernel event — never calling them inline —
    so completion ordering is governed by the kernel's deterministic
    FIFO tiebreak, not by who happened to resolve first in Python call
    depth.
    """

    __slots__ = ("_sim", "_done", "_value", "_callbacks")

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._done = False
        self._value: Any = None
        self._callbacks: List[Callable[[Any], None]] = []

    @property
    def done(self) -> bool:
        """True once :meth:`resolve` ran."""
        return self._done

    def result(self) -> Any:
        """The resolved value.

        Raises:
            SimulationError: while the future is still pending.
        """
        if not self._done:
            raise SimulationError("SimFuture is not resolved yet")
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Complete the future; callbacks fire as zero-delay events.

        Raises:
            SimulationError: on a second resolve (futures are one-shot).
        """
        if self._done:
            raise SimulationError("SimFuture already resolved")
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._sim.schedule(0.0, callback, value, label="future:resolve")

    def add_done_callback(self, callback: Callable[[Any], None]) -> None:
        """Call ``callback(value)`` when resolved (scheduled, not inline).

        Registering on an already-resolved future schedules the callback
        immediately at zero delay, preserving the scheduled-never-inline
        invariant.
        """
        if self._done:
            self._sim.schedule(
                0.0, callback, self._value, label="future:resolve"
            )
        else:
            self._callbacks.append(callback)

    def __await__(self) -> Generator["SimFuture", Any, Any]:
        if not self._done:
            yield self
        return self._value


class Task:
    """Drives a coroutine over the kernel, one awaited future at a time.

    The coroutine must only await :class:`SimFuture` values (anything
    exposing ``add_done_callback``).  The first step is scheduled as a
    zero-delay event, so two tasks created at the same instant start in
    creation order.

    Attributes:
        done: True once the coroutine returned (or raised).
        result: The coroutine's return value (None until done).
        error: The exception that escaped the coroutine, if any.
    """

    __slots__ = ("_sim", "_coro", "done", "result", "error", "_future")

    def __init__(
        self,
        sim: Simulator,
        coro: Coroutine[Any, Any, Any],
        label: str = "task",
    ) -> None:
        self._sim = sim
        self._coro = coro
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._future = SimFuture(sim)
        sim.schedule(0.0, self._step, None, label=f"{label}:start")

    def _step(self, value: Any) -> None:
        """Advance the coroutine until it awaits again or returns."""
        try:
            awaited = self._coro.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self._future.resolve(stop.value)
            return
        except BaseException as exc:  # surface, don't swallow
            self.done = True
            self.error = exc
            raise
        awaited.add_done_callback(self._step)

    def __await__(self) -> Generator["SimFuture", Any, Any]:
        return self._future.__await__()


def sleep(sim: Simulator, delay: float) -> SimFuture:
    """A future resolved ``delay`` sim-seconds from now (value ``None``)."""
    future = SimFuture(sim)
    sim.schedule(delay, future.resolve, None, label="aio:sleep")
    return future


def gather(sim: Simulator, futures: Sequence[SimFuture]) -> SimFuture:
    """A future resolving to ``[f.result() for f in futures]`` when all are done.

    An empty sequence resolves at the next zero-delay event.
    """
    combined = SimFuture(sim)
    remaining = len(futures)
    ordered: List[Any] = [None] * remaining
    if remaining == 0:
        sim.schedule(0.0, combined.resolve, [], label="aio:gather")
        return combined
    state = {"left": remaining}

    def _one_done(index: int) -> Callable[[Any], None]:
        def _cb(value: Any) -> None:
            ordered[index] = value
            state["left"] -= 1
            if state["left"] == 0:
                combined.resolve(ordered)

        return _cb

    for index, future in enumerate(futures):
        future.add_done_callback(_one_done(index))
    return combined
