"""Per-tenant token buckets on the simulation clock.

The frontend's first edge gate: each tenant owns a bucket refilled
lazily from the sim clock (no periodic refill events — a million idle
tenants cost nothing).  A submission takes one token; an empty bucket
means the tenant is above its sustained request rate and the request is
refused with :data:`repro.api.REJECT_RATE_LIMIT` before any queue or
quota state is touched.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError


class TokenBucket:
    """One tenant's request-rate budget.

    Args:
        rate: Sustained tokens per sim-second (> 0).
        burst: Bucket capacity — the largest instantaneous burst (>= 1).
        now: Sim time the bucket is created (starts full).
    """

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"bucket rate must be > 0, got {rate}")
        if burst < 1:
            raise ConfigurationError(f"bucket burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated_at = now

    def _refill(self, now: float) -> None:
        elapsed = now - self.updated_at
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.updated_at = now

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; False means throttle."""
        self._refill(now)
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False

    def available(self, now: float) -> float:
        """Tokens available right now (after lazy refill)."""
        self._refill(now)
        return self.tokens


class BucketSet:
    """Lazily materialized per-tenant buckets with shared defaults.

    Buckets are created on a tenant's first submission, so memory
    scales with *active* tenants, not population size — the property
    that makes the 1M-customer benchmark feasible.
    """

    __slots__ = ("rate", "burst", "_buckets")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self._buckets: Dict[str, TokenBucket] = {}

    def bucket(self, tenant: str, now: float) -> TokenBucket:
        """The tenant's bucket, created full on first touch."""
        existing = self._buckets.get(tenant)
        if existing is None:
            existing = TokenBucket(self.rate, self.burst, now)
            self._buckets[tenant] = existing
        return existing

    def try_take(self, tenant: str, now: float) -> bool:
        """Take one token from the tenant's bucket."""
        return self.bucket(tenant, now).try_take(now)

    def __len__(self) -> int:
        return len(self._buckets)
