"""The async BoD service frontend: edge gates, backpressure, streaming.

:class:`BodFrontend` stands between many concurrent simulated clients
and one order backend (anything implementing
:class:`repro.api.OrderIntake` — the monolithic pipeline or the sharded
network).  Every submission passes three edge gates **before the intake
ever sees the order**, in this sequence:

1. **Rate limiting** — the tenant's token bucket
   (:mod:`repro.frontend.ratelimit`); an empty bucket refuses with
   :data:`~repro.api.REJECT_RATE_LIMIT`.  This gate runs first so a
   noisy tenant burns its own budget, not the shared queue — the
   fairness property the no-starvation tests pin down.
2. **Quota probe** — :meth:`repro.core.admission.AdmissionControl.check`,
   the *non-mutating* probe: nothing is recorded against the ledger, so
   a refused (or later-deferred) request can never double-count quota.
   Refuses with :data:`~repro.api.REJECT_QUOTA`.
3. **Load shedding** — a two-state hysteresis machine over the bounded
   submission queue: OPEN until depth reaches ``shed_high``, then
   SHEDDING (every new submission refused with
   :data:`~repro.api.REJECT_SHED`) until the pump drains depth back to
   ``shed_low``.  The queue itself is a hard bound; nothing ever queues
   unboundedly.

Admitted orders wait in the submission queue; a kernel pump process
forwards them to the intake only while the intake's own bounded queue
has room, so frontend traffic never triggers intake QUEUE_FULL
backpressure.  Each submission returns a :class:`FrontendTicket` whose
future resolves — via the intake's listener stream, no polling — with
the order's terminal :data:`repro.api.OrderOutcome`.

Every decision is counted: ``frontend.submitted`` equals
``frontend.admitted + frontend.shed + frontend.throttled`` at all times
(the conservation law the property tests check), and admitted orders
that reach service record the ``frontend.order_to_active_s`` histogram.

Tenants named in ``premium_tenants`` ride the **premium** priority
class: their orders are pumped before any standard order and are shed
last (hysteresis shedding refuses only standard traffic; the hard
capacity bound refuses everyone).  The conservation law holds per
class too, over the ``frontend.*.premium`` / ``frontend.*.standard``
counters.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional

from repro import api
from repro.core.admission import AdmissionControl
from repro.core.connection import ConnectionKind
from repro.errors import ConfigurationError
from repro.frontend.aio import SimFuture
from repro.frontend.ratelimit import BucketSet
from repro.obs.registry import MetricsRegistry
from repro.pipeline.engine import OrderTicket, TicketState
from repro.sim.kernel import Simulator
from repro.sim.process import Process

#: Backpressure state: accepting submissions.
STATE_OPEN = "open"
#: Backpressure state: shedding every new submission until drained.
STATE_SHEDDING = "shedding"

#: Priority classes, pump order.  Premium tenants are forwarded first
#: and shed last: hysteresis shedding refuses only standard traffic;
#: the hard capacity bound still refuses everyone.
PRIORITY_CLASSES = ("premium", "standard")


class FrontendTicket:
    """One request's handle: edge decision plus the awaitable outcome.

    Awaitable — ``await ticket`` (inside a :class:`repro.frontend.aio.
    Task` coroutine) suspends until the order reaches a terminal
    :data:`repro.api.OrderOutcome` and returns it.  ``outcome`` offers
    the same value pull-style (None while pending).

    Attributes:
        request_id: Frontend-scoped id (``req-N``).
        tenant: The submitting tenant.
        premises_a: One end of the requested connection.
        premises_b: The other end.
        rate_bps: Committed rate.
        submitted_at: Sim time of submission.
        future: Resolves with the terminal outcome.
        order_ticket: The backend ticket, once the pump forwarded the
            order (None for edge-rejected or still-queued requests).
    """

    __slots__ = (
        "request_id",
        "tenant",
        "premises_a",
        "premises_b",
        "rate_bps",
        "kind",
        "submitted_at",
        "future",
        "order_ticket",
        "priority",
    )

    def __init__(
        self,
        request_id: str,
        tenant: str,
        premises_a: str,
        premises_b: str,
        rate_bps: float,
        kind: Optional[ConnectionKind],
        submitted_at: float,
        future: SimFuture,
        priority: str = "standard",
    ) -> None:
        self.request_id = request_id
        self.tenant = tenant
        self.premises_a = premises_a
        self.premises_b = premises_b
        self.rate_bps = rate_bps
        self.kind = kind
        self.submitted_at = submitted_at
        self.future = future
        self.priority = priority
        self.order_ticket: Optional[OrderTicket] = None

    @property
    def outcome(self) -> Optional[api.OrderOutcome]:
        """The terminal outcome, or None while the order is in flight."""
        return self.future.result() if self.future.done else None

    @property
    def rejected(self) -> bool:
        """True when the request was refused at the edge."""
        return self.future.done and isinstance(
            self.future.result(), api.Rejected
        )

    def __await__(self):
        return self.future.__await__()

    def __repr__(self) -> str:
        status = "pending"
        if self.future.done:
            status = type(self.future.result()).__name__
        return f"FrontendTicket({self.request_id}, {self.tenant}, {status})"


class BodFrontend:
    """The always-on service edge in front of one order backend.

    Args:
        intake: Any :class:`repro.api.OrderIntake` backend.
        admission: The quota ledger the backend admits against — probed
            non-mutatingly at the edge.
        sim: The shared simulator.
        metrics: Registry for ``frontend.*`` counters/histograms/gauges
            (created fresh when None).
        tracer: Optional tracer for state-transition events.
        queue_capacity: Bound on the submission queue (hard limit).
        shed_high: Queue depth entering SHEDDING (default 3/4 capacity).
        shed_low: Queue depth returning to OPEN (default 1/4 capacity).
        bucket_rate: Default per-tenant sustained submissions/sim-second.
        bucket_burst: Default per-tenant burst allowance.
        pump_interval: Sim seconds between pump passes while the intake
            is full.
        premium_tenants: Tenants whose submissions ride the premium
            priority class (pumped first, shed last).
    """

    def __init__(
        self,
        intake: api.OrderIntake,
        admission: AdmissionControl,
        sim: Simulator,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        queue_capacity: int = 512,
        shed_high: Optional[int] = None,
        shed_low: Optional[int] = None,
        bucket_rate: float = 1.0,
        bucket_burst: float = 8.0,
        pump_interval: float = 0.05,
        premium_tenants: Iterable[str] = (),
    ) -> None:
        if queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if shed_high is None:
            shed_high = max(1, (queue_capacity * 3) // 4)
        if shed_low is None:
            shed_low = queue_capacity // 4
        if not 0 <= shed_low < shed_high <= queue_capacity:
            raise ConfigurationError(
                f"need 0 <= shed_low < shed_high <= capacity, got "
                f"low={shed_low} high={shed_high} capacity={queue_capacity}"
            )
        if pump_interval <= 0:
            raise ConfigurationError(
                f"pump_interval must be > 0, got {pump_interval}"
            )
        self._intake = intake
        self._admission = admission
        self._sim = sim
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = tracer
        self._capacity = queue_capacity
        self._shed_high = shed_high
        self._shed_low = shed_low
        self._pump_interval = float(pump_interval)
        self._buckets = BucketSet(bucket_rate, bucket_burst)
        self._premium = frozenset(premium_tenants)
        #: Two-level submission queue: the pump always drains premium
        #: first; both levels share the single capacity bound.
        self._queues: Dict[str, Deque[FrontendTicket]] = {
            level: deque() for level in PRIORITY_CLASSES
        }
        self._by_order: Dict[str, FrontendTicket] = {}
        self._listeners: List[Callable[[FrontendTicket, str], None]] = []
        self._state = STATE_OPEN
        self._seq = itertools.count(1)
        self._proc: Optional[Process] = None
        intake.add_listener(self._on_intake_event)
        self._metrics.register_gauge(
            "frontend.queue_depth", self.queue_depth
        )
        self._metrics.register_gauge(
            "frontend.queue_depth.premium",
            lambda: len(self._queues["premium"]),
        )
        self._metrics.register_gauge(
            "frontend.shedding", lambda: int(self._state == STATE_SHEDDING)
        )
        self._metrics.register_gauge(
            "frontend.tenants", lambda: len(self._buckets)
        )

    # -- introspection ---------------------------------------------------------

    @property
    def state(self) -> str:
        """The backpressure state: ``"open"`` or ``"shedding"``."""
        return self._state

    def queue_depth(self) -> int:
        """Admitted orders waiting to be forwarded to the intake."""
        return sum(len(q) for q in self._queues.values())

    def priority_of(self, tenant: str) -> str:
        """The priority class a tenant's submissions ride in."""
        return "premium" if tenant in self._premium else "standard"

    @property
    def capacity(self) -> int:
        """The submission queue's hard bound."""
        return self._capacity

    def add_listener(
        self, listener: Callable[[FrontendTicket, str], None]
    ) -> None:
        """Subscribe to the status stream.

        The listener receives ``(ticket, event)`` with events
        ``"rejected"`` (edge refusal), ``"admitted"`` (queued),
        ``"settled"`` (backend intake decision), then ``"active"`` /
        ``"degraded"`` / ``"failed"`` and ``"released"`` as the backend
        streams them.
        """
        self._listeners.append(listener)

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        tenant: str,
        premises_a: str,
        premises_b: str,
        rate_bps: float,
        kind: Optional[ConnectionKind] = None,
    ) -> FrontendTicket:
        """Run the edge gates and either queue or refuse the request.

        Always returns a ticket; an edge refusal resolves the ticket's
        future with a typed :class:`repro.api.Rejected` (never an
        exception, never an unbounded queue).

        Raises:
            AdmissionError: only for an unknown tenant — that is a
                caller bug, not a load outcome.
        """
        now = self._sim.now
        priority = self.priority_of(tenant)
        ticket = FrontendTicket(
            request_id=f"req-{next(self._seq)}",
            tenant=tenant,
            premises_a=premises_a,
            premises_b=premises_b,
            rate_bps=rate_bps,
            kind=kind,
            submitted_at=now,
            future=SimFuture(self._sim),
            priority=priority,
        )
        self._metrics.inc("frontend.submitted")
        self._metrics.inc(f"frontend.submitted.{priority}")
        # Gate 1: the tenant's own request-rate budget.
        if not self._buckets.try_take(tenant, now):
            return self._reject(
                ticket,
                api.REJECT_RATE_LIMIT,
                f"tenant {tenant!r} exceeded its request rate",
                "frontend.throttled.rate_limit",
            )
        # Gate 2: non-mutating quota probe — the ledger is untouched,
        # so probing (and refusing) can never double-count quota.
        reason = self._admission.check(tenant, premises_a, premises_b, rate_bps)
        if reason is not None:
            return self._reject(
                ticket, api.REJECT_QUOTA, reason, "frontend.throttled.quota"
            )
        # Gate 3: backpressure.  The hysteresis keeps shedding until the
        # pump drains the backlog to shed_low; the capacity check is the
        # hard bound underneath it.  Premium traffic is shed last: it
        # rides through hysteresis shedding and is refused only at the
        # hard capacity bound.
        depth = self.queue_depth()
        shedding = self._state == STATE_SHEDDING and priority != "premium"
        if shedding or depth >= self._capacity:
            return self._reject(
                ticket,
                api.REJECT_SHED,
                f"service is shedding load ({depth} queued)",
                None,
            )
        self._metrics.inc("frontend.admitted")
        self._metrics.inc(f"frontend.admitted.{priority}")
        self._queues[priority].append(ticket)
        self._update_shed_state()
        self._ensure_pumping()
        self._emit(ticket, "admitted")
        return ticket

    def _reject(
        self,
        ticket: FrontendTicket,
        code: str,
        reason: str,
        detail_counter: Optional[str],
    ) -> FrontendTicket:
        """Resolve a ticket with a typed edge refusal and count it."""
        if code == api.REJECT_SHED:
            self._metrics.inc("frontend.shed")
            self._metrics.inc(f"frontend.shed.{ticket.priority}")
        else:
            self._metrics.inc("frontend.throttled")
            self._metrics.inc(f"frontend.throttled.{ticket.priority}")
        if detail_counter is not None:
            self._metrics.inc(detail_counter)
        ticket.future.resolve(
            api.Rejected(
                request_id=ticket.request_id,
                code=code,
                reason=reason,
                tenant=ticket.tenant,
            )
        )
        self._emit(ticket, "rejected")
        return ticket

    # -- backpressure state machine --------------------------------------------

    def _update_shed_state(self) -> None:
        """Hysteresis: OPEN -> SHEDDING at shed_high, back at shed_low."""
        depth = self.queue_depth()
        if self._state == STATE_OPEN and depth >= self._shed_high:
            self._state = STATE_SHEDDING
            self._metrics.inc("frontend.shed_transitions")
            if self._tracer is not None:
                self._tracer.event("frontend.shedding", queue_depth=depth)
        elif self._state == STATE_SHEDDING and depth <= self._shed_low:
            self._state = STATE_OPEN
            if self._tracer is not None:
                self._tracer.event("frontend.open", queue_depth=depth)

    # -- the pump --------------------------------------------------------------

    def _ensure_pumping(self) -> None:
        if self._proc is None or self._proc.done:
            self._proc = Process(
                self._sim, self._pump(), label="frontend:pump"
            )

    def _pump(self):
        """Kernel process: forward queued orders while the intake has
        room, always draining the premium level first."""
        while self.queue_depth():
            room = self._intake.capacity - self._intake.queue_depth()
            while room > 0 and self.queue_depth():
                level = next(
                    q for q in self._queues.values() if q
                )
                ticket = level.popleft()
                order = self._intake.submit(
                    ticket.tenant,
                    ticket.premises_a,
                    ticket.premises_b,
                    ticket.rate_bps,
                    ticket.kind,
                )
                ticket.order_ticket = order
                self._by_order[order.order_id] = ticket
                self._metrics.inc("frontend.forwarded")
                if order.settled and order.state is TicketState.QUEUE_FULL:
                    # Only possible when another producer fills the
                    # intake behind our depth check; surface it typed.
                    self._finish(ticket)
                room -= 1
            self._update_shed_state()
            if self.queue_depth():
                yield self._pump_interval

    # -- outcome streaming -----------------------------------------------------

    def _on_intake_event(self, order: OrderTicket, event: str) -> None:
        """Backend listener: resolve futures, re-broadcast the stream."""
        ticket = self._by_order.get(order.order_id)
        if ticket is None:
            return
        if event == "settled":
            self._emit(ticket, "settled")
            if order.state is not TicketState.ACCEPTED:
                # BLOCKED / DEFERRED / QUEUE_FULL are terminal now;
                # accepted orders resolve on their setup conclusion.
                self._finish(ticket)
        elif event in ("active", "degraded", "failed"):
            self._emit(ticket, event)
            self._finish(ticket)
        elif event == "released":
            self._emit(ticket, "released")

    def _finish(self, ticket: FrontendTicket) -> None:
        """Resolve a ticket's future with its typed terminal outcome."""
        if ticket.future.done:
            return
        outcome = self._intake.outcome(ticket.order_ticket)
        if isinstance(outcome, api.Active):
            self._metrics.inc("frontend.active")
            self._metrics.observe(
                "frontend.order_to_active_s",
                self._sim.now - ticket.submitted_at,
            )
        ticket.future.resolve(outcome)

    def _emit(self, ticket: FrontendTicket, event: str) -> None:
        for listener in list(self._listeners):
            listener(ticket, event)
