"""The async BoD service frontend: millions of tenants, one edge.

``repro.frontend`` is the always-on service layer between simulated
clients and the order backends:

* :mod:`repro.frontend.aio` — the deterministic async runtime over the
  sim kernel (:class:`SimFuture` / :class:`Task` / :func:`sleep` /
  :func:`gather`);
* :mod:`repro.frontend.ratelimit` — lazily materialized per-tenant
  token buckets on the sim clock;
* :mod:`repro.frontend.service` — :class:`BodFrontend`: the three edge
  gates (rate limit, non-mutating quota probe, hysteresis load
  shedding), the bounded submission queue with its intake pump, and
  streaming order-status resolution over any
  :class:`repro.api.OrderIntake` backend;
* :mod:`repro.frontend.clients` — open-loop Poisson client fleets over
  heavy-tailed tenant populations, for the load benchmarks.
"""

from repro.frontend.aio import SimFuture, Task, gather, sleep
from repro.frontend.clients import ClientFleet, FleetStats, teardown_active
from repro.frontend.ratelimit import BucketSet, TokenBucket
from repro.frontend.service import (
    PRIORITY_CLASSES,
    STATE_OPEN,
    STATE_SHEDDING,
    BodFrontend,
    FrontendTicket,
)

__all__ = [
    "SimFuture",
    "Task",
    "gather",
    "sleep",
    "BucketSet",
    "TokenBucket",
    "BodFrontend",
    "FrontendTicket",
    "PRIORITY_CLASSES",
    "STATE_OPEN",
    "STATE_SHEDDING",
    "ClientFleet",
    "FleetStats",
    "teardown_active",
]
