"""Legacy setup shim: lets pip do an editable install without `wheel`."""

from setuptools import setup

setup()
